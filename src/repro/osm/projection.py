"""Local planar projection between WGS-84 lat/lon and metres.

CityMesh geometry operates in a local planar frame.  At city scale
(~10 km) an equirectangular projection about a reference latitude is
accurate to well under a metre, which is far below Wi-Fi range
uncertainty, so we use it instead of a full geodetic library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..geometry import Point

EARTH_RADIUS_M = 6_371_000.0


@dataclass(frozen=True)
class LocalProjection:
    """Equirectangular projection centred on ``(ref_lat, ref_lon)``.

    ``project`` maps lat/lon (degrees) to metres east/north of the
    reference; ``unproject`` inverts it.
    """

    ref_lat: float
    ref_lon: float

    def __post_init__(self) -> None:
        if not -90 <= self.ref_lat <= 90:
            raise ValueError(f"reference latitude out of range: {self.ref_lat}")
        if not -180 <= self.ref_lon <= 180:
            raise ValueError(f"reference longitude out of range: {self.ref_lon}")

    @property
    def _metres_per_deg_lat(self) -> float:
        return math.pi * EARTH_RADIUS_M / 180.0

    @property
    def _metres_per_deg_lon(self) -> float:
        return self._metres_per_deg_lat * math.cos(math.radians(self.ref_lat))

    def project(self, lat: float, lon: float) -> Point:
        """Map WGS-84 degrees to local metres (x east, y north)."""
        return Point(
            (lon - self.ref_lon) * self._metres_per_deg_lon,
            (lat - self.ref_lat) * self._metres_per_deg_lat,
        )

    def unproject(self, p: Point) -> tuple[float, float]:
        """Map local metres back to ``(lat, lon)`` degrees."""
        return (
            self.ref_lat + p.y / self._metres_per_deg_lat,
            self.ref_lon + p.x / self._metres_per_deg_lon,
        )
