"""A minimal OpenStreetMap document model.

Only the elements CityMesh needs: nodes (lat/lon points), ways
(ordered node references with tags), and the subset of tags that mark
building footprints.  This is the substrate the paper's simulator
"compiles building footprint data from OSM" step relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class OsmNode:
    """An OSM node: an identified WGS-84 coordinate."""

    id: int
    lat: float
    lon: float


@dataclass(frozen=True)
class OsmWay:
    """An OSM way: an ordered list of node ids plus key/value tags."""

    id: int
    node_refs: tuple[int, ...]
    tags: dict[str, str] = field(default_factory=dict)

    def is_closed(self) -> bool:
        """Whether the way forms a ring (first ref == last ref)."""
        return len(self.node_refs) >= 4 and self.node_refs[0] == self.node_refs[-1]

    def is_building(self) -> bool:
        """Whether the way is tagged as a building footprint."""
        value = self.tags.get("building")
        return value is not None and value != "no"


@dataclass(frozen=True)
class OsmRelationMember:
    """One member of a relation: (element type, ref, role)."""

    type: str
    ref: int
    role: str


@dataclass(frozen=True)
class OsmRelation:
    """An OSM relation (we consume ``type=multipolygon`` buildings)."""

    id: int
    members: tuple[OsmRelationMember, ...]
    tags: dict[str, str] = field(default_factory=dict)

    def is_multipolygon_building(self) -> bool:
        """Whether this is a building multipolygon relation."""
        value = self.tags.get("building")
        return (
            self.tags.get("type") == "multipolygon"
            and value is not None
            and value != "no"
        )

    def outer_way_refs(self) -> list[int]:
        """Refs of members with the ``outer`` role."""
        return [m.ref for m in self.members if m.type == "way" and m.role == "outer"]

    def inner_way_refs(self) -> list[int]:
        """Refs of members with the ``inner`` role."""
        return [m.ref for m in self.members if m.type == "way" and m.role == "inner"]


@dataclass
class OsmDocument:
    """A parsed OSM extract: nodes by id, ways, and relations."""

    nodes: dict[int, OsmNode] = field(default_factory=dict)
    ways: list[OsmWay] = field(default_factory=list)
    relations: list[OsmRelation] = field(default_factory=list)

    def add_node(self, node: OsmNode) -> None:
        """Register a node, replacing any previous node with the same id."""
        self.nodes[node.id] = node

    def add_way(self, way: OsmWay) -> None:
        """Append a way to the document."""
        self.ways.append(way)

    def add_relation(self, relation: OsmRelation) -> None:
        """Append a relation to the document."""
        self.relations.append(relation)

    def way_by_id(self, way_id: int) -> OsmWay | None:
        """Look a way up by id (linear scan; documents are small)."""
        for way in self.ways:
            if way.id == way_id:
                return way
        return None

    def multipolygon_buildings(self) -> list[OsmRelation]:
        """All building multipolygon relations, in document order."""
        return [r for r in self.relations if r.is_multipolygon_building()]

    def building_ways(self) -> list[OsmWay]:
        """All closed ways tagged as buildings, in document order."""
        return [w for w in self.ways if w.is_building() and w.is_closed()]

    def bounds(self) -> tuple[float, float, float, float]:
        """``(min_lat, min_lon, max_lat, max_lon)`` over all nodes.

        Raises:
            ValueError: for an empty document.
        """
        if not self.nodes:
            raise ValueError("bounds of an empty OSM document are undefined")
        lats = [n.lat for n in self.nodes.values()]
        lons = [n.lon for n in self.nodes.values()]
        return (min(lats), min(lons), max(lats), max(lons))
