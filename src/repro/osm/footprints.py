"""Compiling building footprints out of an OSM document.

This is the paper's "compiles building footprint data from OSM" step:
closed building-tagged ways are resolved against the node table,
projected into the local planar frame, and returned as polygons keyed
by their OSM way id.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Polygon, PolygonWithHoles
from .model import OsmDocument
from .projection import LocalProjection

MIN_FOOTPRINT_AREA_M2 = 4.0
RELATION_ID_OFFSET = 1_000_000_000  # keeps relation ids clear of way ids


@dataclass(frozen=True)
class Footprint:
    """A building footprint extracted from OSM: id, polygon, tags.

    ``polygon`` is a :class:`Polygon` for plain building ways or a
    :class:`PolygonWithHoles` for multipolygon relations (courtyards).
    """

    osm_id: int
    polygon: Polygon | PolygonWithHoles
    tags: dict[str, str]


def buildings_from_document(
    doc: OsmDocument,
    projection: LocalProjection | None = None,
) -> list[Footprint]:
    """Extract projected building footprints from a parsed document.

    Ways with unresolvable node references or degenerate geometry
    (fewer than 3 distinct vertices, or area below
    ``MIN_FOOTPRINT_AREA_M2``) are skipped, matching how OSM consumers
    treat broken data in the wild.  Building multipolygon relations
    yield courtyard footprints (one outer ring with hole rings); their
    ids are offset by ``RELATION_ID_OFFSET`` to keep the id space
    disjoint from way ids.

    Args:
        doc: the parsed OSM document.
        projection: planar projection to use; defaults to one centred
            on the document's bounding-box centre.
    """
    building_ways = doc.building_ways()
    relations = doc.multipolygon_buildings()
    if not building_ways and not relations:
        return []
    if projection is None:
        min_lat, min_lon, max_lat, max_lon = doc.bounds()
        projection = LocalProjection(
            (min_lat + max_lat) / 2.0, (min_lon + max_lon) / 2.0
        )

    footprints: list[Footprint] = []
    for way in building_ways:
        ring = []
        resolvable = True
        for ref in way.node_refs[:-1]:  # drop the closing duplicate
            node = doc.nodes.get(ref)
            if node is None:
                resolvable = False
                break
            ring.append(projection.project(node.lat, node.lon))
        if not resolvable or len(ring) < 3:
            continue
        try:
            polygon = Polygon(ring)
        except ValueError:
            continue
        if polygon.area() < MIN_FOOTPRINT_AREA_M2:
            continue
        footprints.append(Footprint(osm_id=way.id, polygon=polygon, tags=dict(way.tags)))

    for relation in relations:
        shape = _resolve_multipolygon(doc, relation, projection)
        if shape is None:
            continue
        footprints.append(
            Footprint(
                osm_id=RELATION_ID_OFFSET + relation.id,
                polygon=shape,
                tags=dict(relation.tags),
            )
        )
    return footprints


def _ring_from_way(doc: OsmDocument, way_ref: int, projection: LocalProjection) -> Polygon | None:
    way = doc.way_by_id(way_ref)
    if way is None or not way.is_closed():
        return None
    ring = []
    for ref in way.node_refs[:-1]:
        node = doc.nodes.get(ref)
        if node is None:
            return None
        ring.append(projection.project(node.lat, node.lon))
    if len(ring) < 3:
        return None
    try:
        return Polygon(ring)
    except ValueError:
        return None


def _resolve_multipolygon(
    doc: OsmDocument, relation, projection: LocalProjection
) -> PolygonWithHoles | None:
    """Resolve a building multipolygon relation into a courtyard shape.

    Only single-outer relations are supported (multi-outer relations
    are rare for buildings); relations whose rings do not resolve are
    skipped like broken ways.
    """
    outers = relation.outer_way_refs()
    if len(outers) != 1:
        return None
    outer = _ring_from_way(doc, outers[0], projection)
    if outer is None or outer.area() < MIN_FOOTPRINT_AREA_M2:
        return None
    holes = []
    for ref in relation.inner_way_refs():
        hole = _ring_from_way(doc, ref, projection)
        if hole is not None:
            holes.append(hole)
    return PolygonWithHoles(outer, holes)
