"""OSM substrate: parse, project, and emit building-footprint data."""

from .footprints import RELATION_ID_OFFSET, Footprint, buildings_from_document
from .model import OsmDocument, OsmNode, OsmRelation, OsmRelationMember, OsmWay
from .parser import OsmParseError, parse_osm_file, parse_osm_xml
from .projection import EARTH_RADIUS_M, LocalProjection
from .writer import polygons_to_osm_xml, write_osm_file

__all__ = [
    "EARTH_RADIUS_M",
    "Footprint",
    "RELATION_ID_OFFSET",
    "LocalProjection",
    "OsmDocument",
    "OsmNode",
    "OsmParseError",
    "OsmRelation",
    "OsmRelationMember",
    "OsmWay",
    "buildings_from_document",
    "parse_osm_file",
    "parse_osm_xml",
    "polygons_to_osm_xml",
    "write_osm_file",
]
