"""Parsing OSM XML extracts into :class:`~repro.osm.model.OsmDocument`.

Handles the standard ``<osm>`` document shape produced by the OSM API,
Overpass, and our own :mod:`repro.osm.writer`:

.. code-block:: xml

    <osm version="0.6">
      <node id="1" lat="42.36" lon="-71.09"/>
      <way id="10">
        <nd ref="1"/> ...
        <tag k="building" v="yes"/>
      </way>
    </osm>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from .model import OsmDocument, OsmNode, OsmRelation, OsmRelationMember, OsmWay


class OsmParseError(ValueError):
    """Raised when an OSM document is malformed."""


def parse_osm_xml(text: str) -> OsmDocument:
    """Parse OSM XML text into a document.

    Unknown elements (relations, metadata) are skipped.  Ways that
    reference unknown nodes are kept — resolution happens later in
    :func:`buildings_from_document`, matching OSM's own lazy semantics.

    Raises:
        OsmParseError: on XML syntax errors or missing required
            attributes.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise OsmParseError(f"invalid OSM XML: {exc}") from exc
    if root.tag != "osm":
        raise OsmParseError(f"expected <osm> root element, got <{root.tag}>")

    doc = OsmDocument()
    for elem in root:
        if elem.tag == "node":
            doc.add_node(_parse_node(elem))
        elif elem.tag == "way":
            doc.add_way(_parse_way(elem))
        elif elem.tag == "relation":
            doc.add_relation(_parse_relation(elem))
    return doc


def parse_osm_file(path: str | Path) -> OsmDocument:
    """Parse an ``.osm`` XML file from disk."""
    return parse_osm_xml(Path(path).read_text(encoding="utf-8"))


def _require_attr(elem: ET.Element, name: str) -> str:
    value = elem.get(name)
    if value is None:
        raise OsmParseError(f"<{elem.tag}> is missing required attribute {name!r}")
    return value


def _parse_node(elem: ET.Element) -> OsmNode:
    try:
        return OsmNode(
            id=int(_require_attr(elem, "id")),
            lat=float(_require_attr(elem, "lat")),
            lon=float(_require_attr(elem, "lon")),
        )
    except ValueError as exc:
        if isinstance(exc, OsmParseError):
            raise
        raise OsmParseError(f"malformed <node> attributes: {exc}") from exc


def _parse_way(elem: ET.Element) -> OsmWay:
    refs: list[int] = []
    tags: dict[str, str] = {}
    for child in elem:
        if child.tag == "nd":
            try:
                refs.append(int(_require_attr(child, "ref")))
            except ValueError as exc:
                if isinstance(exc, OsmParseError):
                    raise
                raise OsmParseError(f"malformed <nd> ref: {exc}") from exc
        elif child.tag == "tag":
            tags[_require_attr(child, "k")] = _require_attr(child, "v")
    try:
        way_id = int(_require_attr(elem, "id"))
    except ValueError as exc:
        if isinstance(exc, OsmParseError):
            raise
        raise OsmParseError(f"malformed <way> id: {exc}") from exc
    return OsmWay(id=way_id, node_refs=tuple(refs), tags=tags)


def _parse_relation(elem: ET.Element) -> OsmRelation:
    members: list[OsmRelationMember] = []
    tags: dict[str, str] = {}
    for child in elem:
        if child.tag == "member":
            try:
                ref = int(_require_attr(child, "ref"))
            except ValueError as exc:
                if isinstance(exc, OsmParseError):
                    raise
                raise OsmParseError(f"malformed <member> ref: {exc}") from exc
            members.append(
                OsmRelationMember(
                    type=child.get("type", ""),
                    ref=ref,
                    role=child.get("role", ""),
                )
            )
        elif child.tag == "tag":
            tags[_require_attr(child, "k")] = _require_attr(child, "v")
    try:
        relation_id = int(_require_attr(elem, "id"))
    except ValueError as exc:
        if isinstance(exc, OsmParseError):
            raise
        raise OsmParseError(f"malformed <relation> id: {exc}") from exc
    return OsmRelation(id=relation_id, members=tuple(members), tags=tags)
