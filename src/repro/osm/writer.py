"""Serialising city models back to OSM XML.

Used to round-trip synthetic cities through the OSM substrate (so the
parser is exercised on realistic documents) and to export generated
cities for inspection in external OSM tooling.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Iterable

from ..geometry import Polygon
from .projection import LocalProjection


def polygons_to_osm_xml(
    polygons: Iterable[Polygon],
    projection: LocalProjection,
    tags: dict[str, str] | None = None,
) -> str:
    """Serialise polygons as building-tagged closed OSM ways.

    Node and way ids are assigned sequentially from 1.  ``tags``
    (default ``{"building": "yes"}``) are applied to every way.
    """
    way_tags = tags if tags is not None else {"building": "yes"}
    root = ET.Element("osm", version="0.6", generator="repro-citymesh")
    next_node_id = 1
    next_way_id = 1
    way_elems: list[ET.Element] = []

    for polygon in polygons:
        refs: list[int] = []
        for vertex in polygon.vertices:
            lat, lon = projection.unproject(vertex)
            ET.SubElement(
                root,
                "node",
                id=str(next_node_id),
                lat=f"{lat:.9f}",
                lon=f"{lon:.9f}",
            )
            refs.append(next_node_id)
            next_node_id += 1
        way = ET.Element("way", id=str(next_way_id))
        next_way_id += 1
        for ref in refs + [refs[0]]:  # close the ring
            ET.SubElement(way, "nd", ref=str(ref))
        for k, v in way_tags.items():
            ET.SubElement(way, "tag", k=k, v=v)
        way_elems.append(way)

    # Ways after all nodes, matching conventional OSM document order.
    for way in way_elems:
        root.append(way)
    return ET.tostring(root, encoding="unicode")


def write_osm_file(
    path: str | Path,
    polygons: Iterable[Polygon],
    projection: LocalProjection,
    tags: dict[str, str] | None = None,
) -> None:
    """Write polygons to an ``.osm`` XML file."""
    Path(path).write_text(
        polygons_to_osm_xml(polygons, projection, tags), encoding="utf-8"
    )
