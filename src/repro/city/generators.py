"""Synthetic city generators.

These stand in for the OSM extracts of real cities used by the paper
(Boston, Washington D.C., …).  Each generator is deterministic in its
seed and reproduces one urban morphology the paper's evaluation hinges
on: dense downtown grids, campuses, low-density residential areas, and
cities fractured by rivers / parks / highways (the features §4 blames
for failed deliverability).
"""

from __future__ import annotations

import math
import random

from ..geometry import GridIndex, Point, Polygon
from .blocks import clear_of_obstacles, l_shaped_building, rotated_rectangle, subdivide_block
from .model import Building, City, Obstacle


def _assemble(
    name: str,
    polygons: list[Polygon],
    obstacles: list[Obstacle],
    kind: str,
) -> City:
    obstacle_polys = [o.polygon for o in obstacles]
    buildings = []
    next_id = 1
    for poly in polygons:
        if obstacle_polys and not clear_of_obstacles(poly, obstacle_polys):
            continue
        buildings.append(Building(id=next_id, polygon=poly, kind=kind))
        next_id += 1
    return City(name=name, buildings=buildings, obstacles=obstacles)


def grid_downtown(
    seed: int = 0,
    blocks_x: int = 8,
    blocks_y: int = 8,
    block_size: float = 90.0,
    street_width: float = 14.0,
    lots_per_block: int = 2,
    occupancy: float = 0.95,
    name: str = "downtown",
    obstacles: list[Obstacle] | None = None,
) -> City:
    """A dense Manhattan-grid downtown: the paper's best-connected case.

    Blocks of ``block_size`` metres separated by ``street_width`` metre
    streets; each block is subdivided into ``lots_per_block``^2 lots.
    """
    rng = random.Random(seed)
    pitch = block_size + street_width
    polygons: list[Polygon] = []
    for bx in range(blocks_x):
        for by in range(blocks_y):
            x0 = bx * pitch
            y0 = by * pitch
            polygons.extend(
                subdivide_block(
                    x0,
                    y0,
                    x0 + block_size,
                    y0 + block_size,
                    rng,
                    lots_x=lots_per_block,
                    lots_y=lots_per_block,
                    setback=2.0,
                    occupancy=occupancy,
                    jitter=0.08,
                )
            )
    return _assemble(name, polygons, obstacles or [], kind="commercial")


def residential(
    seed: int = 0,
    blocks_x: int = 7,
    blocks_y: int = 7,
    block_size: float = 120.0,
    street_width: float = 14.0,
    name: str = "residential",
    obstacles: list[Obstacle] | None = None,
) -> City:
    """A low-density residential area: detached houses with yards.

    Houses are ~15x15 m (roughly one AP each at the paper's reference
    density) on ~30 m lots, so inter-building gaps are much larger than
    downtown and per-building AP counts are small.
    """
    rng = random.Random(seed)
    pitch = block_size + street_width
    polygons: list[Polygon] = []
    for bx in range(blocks_x):
        for by in range(blocks_y):
            x0 = bx * pitch
            y0 = by * pitch
            polygons.extend(
                subdivide_block(
                    x0,
                    y0,
                    x0 + block_size,
                    y0 + block_size,
                    rng,
                    lots_x=4,
                    lots_y=4,
                    setback=5.5,
                    occupancy=0.9,
                    jitter=0.12,
                )
            )
    return _assemble(name, polygons, obstacles or [], kind="house")


def campus(
    seed: int = 0,
    extent: float = 750.0,
    building_count: int | None = None,
    name: str = "campus",
) -> City:
    """A university campus: large irregular buildings around open quads.

    Buildings are a mix of big rectangles, L-shapes, and polygonal
    halls, placed with a minimum separation; two quads are kept as
    park obstacles.
    """
    rng = random.Random(seed)
    quads = [
        Obstacle(Polygon.rectangle(extent * 0.30, extent * 0.30, extent * 0.46, extent * 0.46), "park"),
        Obstacle(Polygon.rectangle(extent * 0.58, extent * 0.55, extent * 0.74, extent * 0.70), "park"),
    ]
    quad_polys = [q.polygon for q in quads]
    # Halls sit on a loose grid (campuses are planned spaces) with
    # jittered positions, irregular shapes, and occasional lawn cells.
    pitch = 72.0
    cells = max(1, int(extent // pitch))
    placed: list[Polygon] = []
    for gx in range(cells):
        for gy in range(cells):
            if building_count is not None and len(placed) >= building_count:
                break
            if rng.random() < 0.10:
                continue  # lawn / parking cell
            cx = (gx + 0.5) * pitch + rng.uniform(-8, 8)
            cy = (gy + 0.5) * pitch + rng.uniform(-8, 8)
            w = rng.uniform(48, 66)
            h = rng.uniform(42, 60)
            shape = rng.random()
            if shape < 0.5:
                poly = rotated_rectangle(Point(cx, cy), w, h, rng.uniform(0, math.pi / 12))
            elif shape < 0.8:
                poly = l_shaped_building(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2)
            else:
                poly = Polygon.regular(Point(cx, cy), min(w, h) / 2, sides=6)
            if not clear_of_obstacles(poly, quad_polys):
                continue
            if any(poly.distance_to_polygon(prev) < 6.0 for prev in placed[-(cells + 2):]):
                continue
            placed.append(poly)
    return _assemble(name, placed, quads, kind="academic")


def river_city(
    seed: int = 0,
    blocks_x: int = 8,
    blocks_y: int = 8,
    river_width: float = 150.0,
    bridges: int = 0,
    name: str = "rivertown",
) -> City:
    """A downtown split by a horizontal river.

    With ``bridges == 0`` and a river wider than twice the Wi-Fi range,
    the city fractures into two islands (the paper's Washington D.C.
    effect).  Each bridge adds one long narrow structure spanning the
    water whose APs restore connectivity between the banks — the §4
    proposal of "a small number of well-placed APs" bridging islands.
    """
    base = grid_downtown(seed=seed, blocks_x=blocks_x, blocks_y=blocks_y, name=name)
    min_x, min_y, max_x, max_y = base.bounds()
    mid_y = (min_y + max_y) / 2.0
    river = Obstacle(
        Polygon.rectangle(
            min_x - 50, mid_y - river_width / 2, max_x + 50, mid_y + river_width / 2
        ),
        "water",
    )
    polygons = [b.polygon for b in base.buildings]
    rng = random.Random(seed + 1)
    bridge_polys: list[Polygon] = []
    if bridges > 0:
        span = (max_x - min_x) / (bridges + 1)
        for i in range(1, bridges + 1):
            bx = min_x + i * span + rng.uniform(-10, 10)
            # One continuous bridge structure spanning the river plus a
            # 25 m approach on each bank; wide enough (12 m) that at the
            # reference density its expected AP count covers the span
            # with sub-range spacing.
            bridge_polys.append(
                Polygon.rectangle(
                    bx - 8,
                    mid_y - river_width / 2 - 25,
                    bx + 8,
                    mid_y + river_width / 2 + 25,
                )
            )
    city = _assemble(name, polygons, [river], kind="commercial")
    # Bridge structures are appended after obstacle filtering on purpose:
    # they intentionally sit over the water.
    next_id = max((b.id for b in city.buildings), default=0) + 1
    extended = list(city.buildings)
    for poly in bridge_polys:
        extended.append(Building(id=next_id, polygon=poly, kind="bridge"))
        next_id += 1
    return City(name=name, buildings=extended, obstacles=[river])


def park_city(
    seed: int = 0,
    blocks_x: int = 9,
    blocks_y: int = 9,
    park_fraction: float = 0.30,
    name: str = "parkside",
) -> City:
    """A downtown with a large central park the routes must go around."""
    base = grid_downtown(seed=seed, blocks_x=blocks_x, blocks_y=blocks_y, name=name)
    min_x, min_y, max_x, max_y = base.bounds()
    w = (max_x - min_x) * park_fraction
    h = (max_y - min_y) * park_fraction
    cx = (min_x + max_x) / 2
    cy = (min_y + max_y) / 2
    park = Obstacle(
        Polygon.rectangle(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2), "park"
    )
    return _assemble(name, [b.polygon for b in base.buildings], [park], "commercial")


def fractured_city(
    seed: int = 0,
    blocks_x: int = 10,
    blocks_y: int = 10,
    highway_width: float = 70.0,
    river_width: float = 140.0,
    name: str = "capitolia",
) -> City:
    """A city fractured into islands by a river plus two highways.

    Models the paper's observation that "large features such as
    highways, parks, and bodies of water … fracture some cities, like
    Washington D.C., into multiple islands of connectivity."
    """
    base = grid_downtown(seed=seed, blocks_x=blocks_x, blocks_y=blocks_y, name=name)
    min_x, min_y, max_x, max_y = base.bounds()
    cx = (min_x + max_x) / 2
    cy = (min_y + max_y) / 2
    obstacles = [
        Obstacle(
            Polygon.rectangle(min_x - 50, cy - river_width / 2, max_x + 50, cy + river_width / 2),
            "water",
        ),
        Obstacle(
            Polygon.rectangle(cx - highway_width / 2, min_y - 50, cx + highway_width / 2, max_y + 50),
            "highway",
        ),
        Obstacle(
            Polygon.rectangle(
                min_x + (max_x - min_x) * 0.78 - highway_width / 2,
                min_y - 50,
                min_x + (max_x - min_x) * 0.78 + highway_width / 2,
                max_y + 50,
            ),
            "highway",
        ),
    ]
    return _assemble(name, [b.polygon for b in base.buildings], obstacles, "commercial")


def metro_city(
    seed: int = 0,
    blocks: int = 18,
    parks: int = 5,
    name: str = "metropolis",
) -> City:
    """A city-scale downtown with scattered parks.

    Used for the §4 header-size experiment: routes here are several
    kilometres long and must bend around multiple parks, which is the
    regime behind the paper's ~175-bit median compressed headers.
    """
    rng = random.Random(seed + 7)
    base = grid_downtown(seed=seed, blocks_x=blocks, blocks_y=blocks, name=name)
    min_x, min_y, max_x, max_y = base.bounds()
    span_x = max_x - min_x
    span_y = max_y - min_y
    obstacles: list[Obstacle] = []
    for _ in range(parks):
        w = rng.uniform(0.10, 0.18) * span_x
        h = rng.uniform(0.10, 0.18) * span_y
        cx = rng.uniform(min_x + w, max_x - w)
        cy = rng.uniform(min_y + h, max_y - h)
        obstacles.append(
            Obstacle(Polygon.rectangle(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2), "park")
        )
    return _assemble(name, [b.polygon for b in base.buildings], obstacles, "commercial")


def metro_grid(
    seed: int = 0,
    cols: int = 100,
    rows: int = 100,
    building_size: float = 30.0,
    street_width: float = 15.0,
    name: str = "metro-grid",
) -> City:
    """A metro-scale jittered lattice: one building per lot, no frills.

    The 100k–1M-building regime generator behind the hierarchical
    routing benchmarks: ``cols * rows`` near-square footprints on a
    uniform pitch with jittered sizes and positions, built in O(n)
    with no obstacle filtering so even million-building cities
    assemble in seconds.  ``cols=rows=100`` gives the 10k-building
    shape the buildgraph bench uses; ``cols=rows=317`` is the ~100k
    metro preset.
    """
    if cols < 1 or rows < 1:
        raise ValueError("metro grid needs at least one column and row")
    rng = random.Random(seed)
    pitch = building_size + street_width
    buildings: list[Building] = []
    for j in range(rows):
        for i in range(cols):
            w = building_size + rng.uniform(-4.0, 4.0)
            h = building_size + rng.uniform(-4.0, 4.0)
            x0 = i * pitch + rng.uniform(-2.0, 2.0)
            y0 = j * pitch + rng.uniform(-2.0, 2.0)
            buildings.append(
                Building(
                    id=j * cols + i + 1,
                    polygon=Polygon.rectangle(x0, y0, x0 + w, y0 + h),
                    kind="mixed",
                )
            )
    return City(name=name, buildings=buildings)


def old_town(
    seed: int = 0,
    radius: float = 450.0,
    building_count: int = 420,
    name: str = "oldtown",
) -> City:
    """An irregular pre-grid old town: dense rotated footprints, denser
    towards the centre, no street grid."""
    rng = random.Random(seed)
    placed: list[Polygon] = []
    index: GridIndex[int] = GridIndex(cell_size=50.0)
    attempts = 0
    while len(placed) < building_count and attempts < building_count * 80:
        attempts += 1
        # Bias towards the centre: sqrt-free radial sampling overweights
        # small radii, mimicking a medieval core.
        r = radius * rng.random() ** 0.7
        theta = rng.uniform(0, 2 * math.pi)
        center = Point(radius + r * math.cos(theta), radius + r * math.sin(theta))
        w = rng.uniform(12, 30)
        h = rng.uniform(10, 26)
        poly = rotated_rectangle(center, w, h, rng.uniform(0, math.pi))
        near = index.query_radius(center, radius=45.0)
        if any(poly.distance_to_polygon(placed[i]) < 4.0 for i in near):
            continue
        index.insert(len(placed), center)
        placed.append(poly)
    return _assemble(name, placed, [], kind="mixed")
