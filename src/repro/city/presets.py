"""Named city presets for the Figure 6 multi-city evaluation.

The paper surveys several real cities (Boston, Washington D.C., …);
we substitute eight synthetic cities spanning the same morphology
space.  Names are fictional; the mapping to the paper's archetypes is
given in each entry's docstring line.
"""

from __future__ import annotations

from typing import Callable

from .generators import (
    campus,
    fractured_city,
    grid_downtown,
    metro_grid,
    old_town,
    park_city,
    residential,
    river_city,
)
from .model import City

CityFactory = Callable[[int], City]

CITY_PRESETS: dict[str, CityFactory] = {
    # Dense downtown grid — the paper's best case (Boston downtown).
    "gridport": lambda seed: grid_downtown(seed=seed, name="gridport"),
    # University campus with quads (MIT campus area).
    "collegium": lambda seed: campus(seed=seed, name="collegium"),
    # Low-density residential area.
    "suburbia": lambda seed: residential(seed=seed, name="suburbia"),
    # River-split city with two bridges — connectable across the water.
    "pontsville": lambda seed: river_city(seed=seed, bridges=2, name="pontsville"),
    # River-split city with no bridges — fractures into two islands.
    "riverton": lambda seed: river_city(seed=seed, bridges=0, name="riverton"),
    # Large central park the routes must skirt.
    "parkside": lambda seed: park_city(seed=seed, name="parkside"),
    # River + highways fracture the city into islands (Washington D.C.).
    "capitolia": lambda seed: fractured_city(seed=seed, name="capitolia"),
    # Irregular medieval core with no street grid.
    "oldtown": lambda seed: old_town(seed=seed, name="oldtown"),
}

#: Metro-scale presets for the hierarchical routing regime.  Kept out
#: of :data:`CITY_PRESETS` on purpose: the fig6 / replication sweeps
#: enumerate that dict, and a 20k–100k-building world has no place in
#: a per-city delivery experiment.  ``repro metro`` and bench_metro
#: resolve these through :func:`make_city` like any other name.
METRO_PRESETS: dict[str, CityFactory] = {
    # ~20k buildings: the CI smoke size.
    "metro-20k": lambda seed: metro_grid(seed=seed, cols=142, rows=142, name="metro-20k"),
    # ~100k buildings: the BENCH_metro baseline size.
    "metro-100k": lambda seed: metro_grid(seed=seed, cols=317, rows=317, name="metro-100k"),
}


def make_city(name: str, seed: int = 0) -> City:
    """Instantiate a preset city by name.

    Raises:
        KeyError: for an unknown preset name.
    """
    factory = CITY_PRESETS.get(name) or METRO_PRESETS.get(name)
    if factory is None:
        known = ", ".join(sorted(CITY_PRESETS) + sorted(METRO_PRESETS))
        raise KeyError(f"unknown city preset {name!r}; known presets: {known}") from None
    return factory(seed)


def preset_names() -> list[str]:
    """All preset names in evaluation order."""
    return list(CITY_PRESETS)
