"""City models and synthetic city generators."""

from .blocks import (
    DEFAULT_BLOCK_SIZE,
    assign_blocks,
    block_key,
    clear_of_obstacles,
    l_shaped_building,
    rotated_rectangle,
    subdivide_block,
)
from .generators import (
    campus,
    fractured_city,
    grid_downtown,
    metro_city,
    metro_grid,
    old_town,
    park_city,
    residential,
    river_city,
)
from .model import Building, BuildingId, City, Obstacle, city_from_footprints
from .presets import CITY_PRESETS, METRO_PRESETS, make_city, preset_names

__all__ = [
    "CITY_PRESETS",
    "DEFAULT_BLOCK_SIZE",
    "METRO_PRESETS",
    "Building",
    "BuildingId",
    "City",
    "Obstacle",
    "assign_blocks",
    "block_key",
    "campus",
    "city_from_footprints",
    "clear_of_obstacles",
    "fractured_city",
    "grid_downtown",
    "l_shaped_building",
    "make_city",
    "metro_city",
    "metro_grid",
    "old_town",
    "park_city",
    "preset_names",
    "residential",
    "river_city",
    "rotated_rectangle",
    "subdivide_block",
]
