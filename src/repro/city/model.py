"""The city model: buildings, obstacles, and map-level queries.

A :class:`City` is what the OSM "compile footprints" step produces and
what every downstream stage (AP placement, building graph, routing,
rendering) consumes.  Obstacles are the connectivity-fracturing
features the paper calls out — rivers, parks, highways — regions that
contain no buildings and therefore no APs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..geometry import GridIndex, Point, Polygon

BuildingId = int


@dataclass(frozen=True)
class Building:
    """One building footprint participating in CityMesh."""

    id: BuildingId
    polygon: Polygon
    kind: str = "building"

    def centroid(self) -> Point:
        """The footprint's area centroid (used as the routing anchor)."""
        return self.polygon.centroid()

    def area(self) -> float:
        """Footprint area in square metres."""
        return self.polygon.area()


@dataclass(frozen=True)
class Obstacle:
    """A no-building region: ``kind`` is 'water', 'park', or 'highway'."""

    polygon: Polygon
    kind: str


@dataclass
class City:
    """A named city map: buildings plus obstacles in a planar frame."""

    name: str
    buildings: list[Building]
    obstacles: list[Obstacle] = field(default_factory=list)
    _by_id: dict[BuildingId, Building] = field(init=False, repr=False)
    _centroid_index: GridIndex[BuildingId] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_id = {}
        for b in self.buildings:
            if b.id in self._by_id:
                raise ValueError(f"duplicate building id {b.id} in city {self.name!r}")
            self._by_id[b.id] = b
        self._centroid_index = GridIndex(cell_size=100.0)
        for b in self.buildings:
            self._centroid_index.insert(b.id, b.centroid())

    def __len__(self) -> int:
        return len(self.buildings)

    def __iter__(self) -> Iterator[Building]:
        return iter(self.buildings)

    def building(self, building_id: BuildingId) -> Building:
        """Look up a building by id.

        Raises:
            KeyError: if the id is unknown.
        """
        return self._by_id[building_id]

    def has_building(self, building_id: BuildingId) -> bool:
        """Whether the id names a building in this city."""
        return building_id in self._by_id

    def bounds(self) -> tuple[float, float, float, float]:
        """Bounding box over all buildings and obstacles.

        Raises:
            ValueError: for an empty city.
        """
        boxes = [b.polygon.bbox for b in self.buildings]
        boxes.extend(o.polygon.bbox for o in self.obstacles)
        if not boxes:
            raise ValueError(f"city {self.name!r} is empty")
        return (
            min(b[0] for b in boxes),
            min(b[1] for b in boxes),
            max(b[2] for b in boxes),
            max(b[3] for b in boxes),
        )

    def total_building_area(self) -> float:
        """Sum of all footprint areas (drives AP counts at fixed density)."""
        return sum(b.area() for b in self.buildings)

    def buildings_near(self, p: Point, radius: float) -> list[Building]:
        """Buildings whose centroid is within ``radius`` of ``p``."""
        ids = self._centroid_index.query_radius(p, radius)
        return [self._by_id[i] for i in ids]

    def building_containing(self, p: Point) -> Building | None:
        """The building whose footprint contains ``p``, if any.

        Checks nearby candidates only (centroids within 200 m), which is
        ample for city-block-sized footprints.
        """
        for b in self.buildings_near(p, 200.0):
            if b.polygon.contains(p):
                return b
        return None

    def nearest_building(self, p: Point) -> Building | None:
        """The building with centroid nearest ``p`` (None for empty city)."""
        bid = self._centroid_index.nearest(p)
        return None if bid is None else self._by_id[bid]


def city_from_footprints(
    name: str, footprints: Iterable, obstacles: Iterable[Obstacle] = ()
) -> City:
    """Build a city from OSM footprints (see :mod:`repro.osm.footprints`).

    Building ids are the OSM way ids.
    """
    buildings = [
        Building(id=f.osm_id, polygon=f.polygon, kind=f.tags.get("building", "yes"))
        for f in footprints
    ]
    return City(name=name, buildings=buildings, obstacles=list(obstacles))
