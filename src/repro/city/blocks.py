"""Block- and lot-level helpers shared by the city generators.

Besides footprint construction, this module owns the *block raster*:
a coarse square grid over centroid space (:func:`block_key`,
:func:`assign_blocks`).  City generators lay buildings out in blocks,
and the hierarchical routing layer
(:mod:`repro.buildgraph.hierarchy`) grows its regions over exactly
this block structure, so region boundaries follow the urban fabric
instead of cutting through dense lots.
"""

from __future__ import annotations

import math
import random
from typing import Iterable

from ..geometry import Point, Polygon

#: Default block-raster cell side for region growing: about one city
#: block (90 m block + 14 m street in the downtown generators).
DEFAULT_BLOCK_SIZE = 104.0

BlockKey = tuple[int, int]


def block_key(x: float, y: float, block_size: float = DEFAULT_BLOCK_SIZE) -> BlockKey:
    """The block-raster cell containing a planar point.

    Raises:
        ValueError: for a non-positive block size.
    """
    if block_size <= 0:
        raise ValueError(f"block size must be positive, got {block_size}")
    return (math.floor(x / block_size), math.floor(y / block_size))


def assign_blocks(
    centroids: Iterable[tuple[int, Point]],
    block_size: float = DEFAULT_BLOCK_SIZE,
) -> dict[BlockKey, list[int]]:
    """Bucket ``(id, centroid)`` pairs into block-raster cells.

    Members of each cell are sorted by id so the result is independent
    of input iteration order — the hierarchy's partition determinism
    rests on this.
    """
    blocks: dict[BlockKey, list[int]] = {}
    for bid, c in centroids:
        blocks.setdefault(block_key(c.x, c.y, block_size), []).append(bid)
    for members in blocks.values():
        members.sort()
    return blocks


def subdivide_block(
    min_x: float,
    min_y: float,
    max_x: float,
    max_y: float,
    rng: random.Random,
    lots_x: int = 2,
    lots_y: int = 2,
    setback: float = 3.0,
    occupancy: float = 1.0,
    jitter: float = 0.15,
) -> list[Polygon]:
    """Split a rectangular block into a grid of building footprints.

    Each lot receives one rectangular building inset by ``setback`` on
    every side, with the inner edges jittered by up to ``jitter`` of
    the lot size so footprints are not perfectly regular.  A lot is
    skipped with probability ``1 - occupancy`` (vacant lot).
    """
    if lots_x < 1 or lots_y < 1:
        raise ValueError("lot counts must be at least 1")
    if not 0 <= occupancy <= 1:
        raise ValueError(f"occupancy must be in [0, 1], got {occupancy}")
    lot_w = (max_x - min_x) / lots_x
    lot_h = (max_y - min_y) / lots_y
    buildings: list[Polygon] = []
    for ix in range(lots_x):
        for iy in range(lots_y):
            if rng.random() > occupancy:
                continue
            lx = min_x + ix * lot_w
            ly = min_y + iy * lot_h
            jx = jitter * lot_w
            jy = jitter * lot_h
            b_min_x = lx + setback + rng.uniform(0, jx)
            b_min_y = ly + setback + rng.uniform(0, jy)
            b_max_x = lx + lot_w - setback - rng.uniform(0, jx)
            b_max_y = ly + lot_h - setback - rng.uniform(0, jy)
            if b_max_x - b_min_x < 4.0 or b_max_y - b_min_y < 4.0:
                continue
            buildings.append(Polygon.rectangle(b_min_x, b_min_y, b_max_x, b_max_y))
    return buildings


def rotated_rectangle(
    center: Point, width: float, height: float, angle: float
) -> Polygon:
    """A rectangle of the given dimensions rotated by ``angle`` radians."""
    if width <= 0 or height <= 0:
        raise ValueError("rectangle dimensions must be positive")
    c, s = math.cos(angle), math.sin(angle)
    hw, hh = width / 2.0, height / 2.0
    corners = [(-hw, -hh), (hw, -hh), (hw, hh), (-hw, hh)]
    return Polygon(
        [Point(center.x + x * c - y * s, center.y + x * s + y * c) for x, y in corners]
    )


def l_shaped_building(
    min_x: float, min_y: float, max_x: float, max_y: float, notch_fraction: float = 0.5
) -> Polygon:
    """An L-shaped footprint: the bounding rect minus a corner notch."""
    if not 0 < notch_fraction < 1:
        raise ValueError("notch_fraction must be in (0, 1)")
    nx = min_x + (max_x - min_x) * notch_fraction
    ny = min_y + (max_y - min_y) * notch_fraction
    return Polygon(
        [
            Point(min_x, min_y),
            Point(max_x, min_y),
            Point(max_x, ny),
            Point(nx, ny),
            Point(nx, max_y),
            Point(min_x, max_y),
        ]
    )


def clear_of_obstacles(polygon: Polygon, obstacle_polygons: list[Polygon]) -> bool:
    """Whether a candidate footprint avoids every obstacle region."""
    return all(polygon.distance_to_polygon(obs) > 0.0 for obs in obstacle_polygons)
