"""Island analysis and bridge-AP planning.

The paper observes that rivers, parks, and highways fracture some
cities "into multiple islands of connectivity" and proposes that "the
addition of a small number of well-placed APs would serve to bridge
connectivity between these islands" (§4).  This module implements both
halves: detecting the islands and greedily planning the bridge APs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..geometry import Point
from .graph import APGraph
from .placement import AccessPoint


@dataclass(frozen=True)
class Island:
    """One connected component of the AP mesh."""

    ap_ids: frozenset[int]
    building_ids: frozenset[int]

    @property
    def size(self) -> int:
        return len(self.ap_ids)


def _alive_components(graph: APGraph, alive: set[int]) -> list[set[int]]:
    """Connected components of the mesh restricted to ``alive`` APs.

    Plain BFS over the prebuilt adjacency, skipping dead endpoints —
    O(alive + incident edges), no :class:`APGraph` reconstruction.
    """
    adjacency = graph.adjacency_lists()
    unvisited = set(alive)
    comps: list[set[int]] = []
    while unvisited:
        start = unvisited.pop()
        comp = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for v in adjacency[u]:
                if v in unvisited:
                    unvisited.discard(v)
                    comp.add(v)
                    frontier.append(v)
        comps.append(comp)
    comps.sort(key=len, reverse=True)
    return comps


def find_islands(
    graph: APGraph, min_size: int = 1, alive: Iterable[int] | None = None
) -> list[Island]:
    """Connected components of the mesh as islands, largest first.

    Args:
        graph: the full AP mesh.
        min_size: smallest component reported as an island.
        alive: restrict the mesh to this subset of AP ids (dead APs and
            their links vanish) without rebuilding the graph — the
            incremental path for time-stepped die-off analysis.  Island
            ``ap_ids`` keep the *original* graph's ids, unlike a
            :func:`~repro.mesh.power.surviving_mesh` rebuild which
            re-indexes.  ``None`` (default) means every AP is alive.

    Raises:
        IndexError: if ``alive`` names an AP id outside the graph.
    """
    if alive is None:
        comps = graph.components()
    else:
        alive_set = set(alive)
        if alive_set and max(alive_set) >= len(graph.aps):
            raise IndexError(
                f"alive set names AP {max(alive_set)} but the graph has "
                f"only {len(graph.aps)} APs"
            )
        comps = _alive_components(graph, alive_set)
    islands = []
    for comp in comps:
        if len(comp) < min_size:
            continue
        buildings = frozenset(graph.aps[i].building_id for i in comp)
        islands.append(Island(ap_ids=frozenset(comp), building_ids=buildings))
    return islands


@dataclass(frozen=True)
class BridgePlan:
    """A proposed chain of new APs connecting two islands."""

    from_ap: int
    to_ap: int
    new_positions: tuple[Point, ...]

    @property
    def ap_count(self) -> int:
        return len(self.new_positions)


def closest_gap(graph: APGraph, a: Island, b: Island) -> tuple[int, int, float]:
    """The closest AP pair across two islands: ``(ap_a, ap_b, distance)``.

    Uses the spatial index (expanding-radius nearest queries over the
    smaller island) rather than the full cross product.
    """
    small, large = (a, b) if a.size <= b.size else (b, a)
    large_ids = large.ap_ids
    best: tuple[int, int, float] | None = None
    for ap_id in small.ap_ids:
        p = graph.position(ap_id)
        # Expanding ring search over the whole index, filtered to the
        # target island.
        radius = graph.transmission_range
        while True:
            candidates = [c for c in graph.aps_within(p, radius) if c in large_ids]
            if candidates:
                nearest = min(candidates, key=lambda c: graph.position(c).distance_to(p))
                d = graph.position(nearest).distance_to(p)
                if best is None or d < best[2]:
                    best = (ap_id, nearest, d) if small is a else (nearest, ap_id, d)
                break
            radius *= 2
            if best is not None and radius > best[2] * 2:
                break
            if radius > 1e7:
                break
    if best is None:
        raise ValueError("islands share no finite gap (one of them is empty?)")
    return best


def plan_bridge(graph: APGraph, a: Island, b: Island, spacing_factor: float = 0.8) -> BridgePlan:
    """Plan a straight chain of new APs across the gap between islands.

    New APs are spaced at ``spacing_factor * transmission_range`` so
    consecutive chain members (and the existing endpoints) are safely
    within range of each other.
    """
    if not 0 < spacing_factor <= 1:
        raise ValueError("spacing_factor must be in (0, 1]")
    ap_a, ap_b, gap = closest_gap(graph, a, b)
    p_a = graph.position(ap_a)
    p_b = graph.position(ap_b)
    spacing = spacing_factor * graph.transmission_range
    if gap <= graph.transmission_range:
        return BridgePlan(from_ap=ap_a, to_ap=ap_b, new_positions=())
    segments = int(gap // spacing) + 1
    positions = tuple(
        p_a.lerp(p_b, i / segments) for i in range(1, segments)
    )
    return BridgePlan(from_ap=ap_a, to_ap=ap_b, new_positions=positions)


def bridge_all_islands(
    graph: APGraph,
    min_island_size: int = 5,
    spacing_factor: float = 0.8,
) -> tuple[list[BridgePlan], list[AccessPoint]]:
    """Greedily connect every significant island to the largest one.

    Returns the per-island plans and the concrete new APs (assigned to
    the nearest existing building of their chain endpoint, with fresh
    contiguous ids) that an operator would deploy.

    Islands smaller than ``min_island_size`` APs are ignored — they are
    typically isolated single buildings not worth bridging.
    """
    islands = find_islands(graph, min_size=min_island_size)
    if len(islands) <= 1:
        return [], []
    main = islands[0]
    plans: list[BridgePlan] = []
    new_aps: list[AccessPoint] = []
    next_id = len(graph.aps)
    for island in islands[1:]:
        plan = plan_bridge(graph, main, island, spacing_factor=spacing_factor)
        plans.append(plan)
        anchor_building = graph.aps[plan.from_ap].building_id
        for pos in plan.new_positions:
            new_aps.append(AccessPoint(id=next_id, position=pos, building_id=anchor_building))
            next_id += 1
    return plans, new_aps


def apply_bridges(graph: APGraph, new_aps: list[AccessPoint]) -> APGraph:
    """A new AP graph with the bridge APs added."""
    return APGraph(aps=list(graph.aps) + list(new_aps), transmission_range=graph.transmission_range)
