"""Island analysis and bridge-AP planning.

The paper observes that rivers, parks, and highways fracture some
cities "into multiple islands of connectivity" and proposes that "the
addition of a small number of well-placed APs would serve to bridge
connectivity between these islands" (§4).  This module implements both
halves: detecting the islands and greedily planning the bridge APs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..geometry import Point
from .graph import APGraph
from .placement import AccessPoint


@dataclass(frozen=True)
class Island:
    """One connected component of the AP mesh."""

    ap_ids: frozenset[int]
    building_ids: frozenset[int]

    @property
    def size(self) -> int:
        return len(self.ap_ids)


def _alive_components(graph: APGraph, alive: set[int]) -> list[set[int]]:
    """Connected components of the mesh restricted to ``alive`` APs.

    Frontier-at-a-time BFS over the graph's cached CSR adjacency: each
    level expands every frontier member's neighbour lanes in one
    vectorized gather instead of one Python loop iteration per edge —
    O(alive + incident edges) with per-*level* rather than per-edge
    interpreter overhead.  Components start from the smallest unvisited
    AP id, so discovery order (and therefore the tie order of
    equal-size components after the size sort) is deterministic.
    """
    n = len(graph.aps)
    indptr, indices = graph.csr()
    visited = np.ones(n, dtype=bool)
    if alive:
        visited[np.fromiter(alive, dtype=np.int64, count=len(alive))] = False
    comps: list[set[int]] = []
    for start in np.nonzero(~visited)[0].tolist():
        if visited[start]:
            continue
        visited[start] = True
        frontier = np.array([start], dtype=np.int64)
        members = [frontier]
        while frontier.size:
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            lanes = (
                np.repeat(starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
                + np.arange(total, dtype=np.int64)
            )
            neighbours = indices[lanes]
            neighbours = np.unique(neighbours[~visited[neighbours]])
            visited[neighbours] = True
            members.append(neighbours)
            frontier = neighbours
        comps.append(set(np.concatenate(members).tolist()))
    comps.sort(key=len, reverse=True)
    return comps


def find_islands(
    graph: APGraph, min_size: int = 1, alive: Iterable[int] | None = None
) -> list[Island]:
    """Connected components of the mesh as islands, largest first.

    Args:
        graph: the full AP mesh.
        min_size: smallest component reported as an island.
        alive: restrict the mesh to this subset of AP ids (dead APs and
            their links vanish) without rebuilding the graph — the
            incremental path for time-stepped die-off analysis.  Island
            ``ap_ids`` keep the *original* graph's ids, unlike a
            :func:`~repro.mesh.power.surviving_mesh` rebuild which
            re-indexes.  ``None`` (default) means every AP is alive.

    Raises:
        IndexError: if ``alive`` names an AP id outside the graph.
    """
    if alive is None:
        comps = graph.components()
    else:
        alive_set = set(alive)
        if alive_set and max(alive_set) >= len(graph.aps):
            raise IndexError(
                f"alive set names AP {max(alive_set)} but the graph has "
                f"only {len(graph.aps)} APs"
            )
        comps = _alive_components(graph, alive_set)
    islands = []
    for comp in comps:
        if len(comp) < min_size:
            continue
        buildings = frozenset(graph.aps[i].building_id for i in comp)
        islands.append(Island(ap_ids=frozenset(comp), building_ids=buildings))
    return islands


@dataclass(frozen=True)
class BridgePlan:
    """A proposed chain of new APs connecting two islands."""

    from_ap: int
    to_ap: int
    new_positions: tuple[Point, ...]

    @property
    def ap_count(self) -> int:
        return len(self.new_positions)


def _bbox_lb2(qx: np.ndarray, qy: np.ndarray, tx: np.ndarray, ty: np.ndarray) -> np.ndarray:
    """Squared lower bound from each query point to the targets' bbox."""
    dx = np.maximum(np.maximum(tx.min() - qx, qx - tx.max()), 0.0)
    dy = np.maximum(np.maximum(ty.min() - qy, qy - ty.max()), 0.0)
    return dx * dx + dy * dy


def closest_gap(graph: APGraph, a: Island, b: Island) -> tuple[int, int, float]:
    """The closest AP pair across two islands: ``(ap_a, ap_b, distance)``.

    Columnar brute force with bounding-box pruning: one cheap seed row
    (the ``a`` AP nearest ``b``'s bbox against all of ``b``) gives an
    upper bound, every AP whose bbox lower bound exceeds it drops out,
    and the survivors — typically only the APs fringing the gap — are
    scanned in small reused broadcast buffers.  That keeps temporaries
    a few MB instead of materialising the full |a|x|b| product, which
    beats the old per-AP expanding-radius index walk by ~50x on
    city-scale islands.  Ties resolve to the lowest ``(ap_a, ap_b)``
    id pair, so the result is deterministic.
    """
    if not a.ap_ids or not b.ap_ids:
        raise ValueError("islands share no finite gap (one of them is empty?)")
    px, py = graph.position_arrays()
    ids_a = np.fromiter(sorted(a.ap_ids), dtype=np.int64, count=a.size)
    ids_b = np.fromiter(sorted(b.ap_ids), dtype=np.int64, count=b.size)
    ax, ay = px[ids_a], py[ids_a]
    bx, by = px[ids_b], py[ids_b]

    # Seed upper bound: nearest-to-bbox a-AP against every b-AP.
    lb_a = _bbox_lb2(ax, ay, bx, by)
    seed = int(np.argmin(lb_a))
    dx = ax[seed] - bx
    dy = ay[seed] - by
    d2_row = dx * dx + dy * dy
    j = int(np.argmin(d2_row))
    best_d2 = float(d2_row[j])
    best_pair = (int(ids_a[seed]), int(ids_b[j]))

    # Prune both sides: an AP whose bbox lower bound beats the seed
    # bound can never win (lb <= true min distance).  Keep == for ties.
    keep_a = lb_a <= best_d2
    keep_b = _bbox_lb2(bx, by, ax, ay) <= best_d2
    ids_a2, ax2, ay2 = ids_a[keep_a], ax[keep_a], ay[keep_a]
    ids_b2, bx2, by2 = ids_b[keep_b], bx[keep_b], by[keep_b]

    # Blocked scan of the survivors, reusing two small buffers so no
    # fresh multi-MB temporary is allocated per block (first-touch page
    # faults dominate large allocations on small hosts).
    nb = int(ids_b2.size)
    rows = max(1, 200_000 // max(1, nb))
    dxbuf = np.empty((rows, nb), dtype=np.float64)
    dybuf = np.empty((rows, nb), dtype=np.float64)
    for lo in range(0, int(ids_a2.size), rows):
        r = min(rows, int(ids_a2.size) - lo)
        dx = np.subtract(ax2[lo : lo + r, None], bx2[None, :], out=dxbuf[:r])
        dy = np.subtract(ay2[lo : lo + r, None], by2[None, :], out=dybuf[:r])
        np.multiply(dx, dx, out=dx)
        np.multiply(dy, dy, out=dy)
        d2 = np.add(dx, dy, out=dx)
        m = float(d2.min())
        if m > best_d2:
            continue
        # Exact lexicographic tie-break over the (few) minimal entries.
        rr, cc = np.nonzero(d2 == m)
        rmin = int(rr.min())
        cmin = int(cc[rr == rmin].min())
        pair = (int(ids_a2[lo + rmin]), int(ids_b2[cmin]))
        if m < best_d2 or pair < best_pair:
            best_d2 = m
            best_pair = pair
    ap_a, ap_b = best_pair
    d = graph.position(ap_a).distance_to(graph.position(ap_b))
    return ap_a, ap_b, d


def plan_bridge(graph: APGraph, a: Island, b: Island, spacing_factor: float = 0.8) -> BridgePlan:
    """Plan a straight chain of new APs across the gap between islands.

    New APs are spaced at ``spacing_factor * transmission_range`` so
    consecutive chain members (and the existing endpoints) are safely
    within range of each other.
    """
    if not 0 < spacing_factor <= 1:
        raise ValueError("spacing_factor must be in (0, 1]")
    ap_a, ap_b, gap = closest_gap(graph, a, b)
    p_a = graph.position(ap_a)
    p_b = graph.position(ap_b)
    spacing = spacing_factor * graph.transmission_range
    if gap <= graph.transmission_range:
        return BridgePlan(from_ap=ap_a, to_ap=ap_b, new_positions=())
    segments = int(gap // spacing) + 1
    positions = tuple(
        p_a.lerp(p_b, i / segments) for i in range(1, segments)
    )
    return BridgePlan(from_ap=ap_a, to_ap=ap_b, new_positions=positions)


def bridge_all_islands(
    graph: APGraph,
    min_island_size: int = 5,
    spacing_factor: float = 0.8,
) -> tuple[list[BridgePlan], list[AccessPoint]]:
    """Greedily connect every significant island to the largest one.

    Returns the per-island plans and the concrete new APs (assigned to
    the nearest existing building of their chain endpoint, with fresh
    contiguous ids) that an operator would deploy.

    Islands smaller than ``min_island_size`` APs are ignored — they are
    typically isolated single buildings not worth bridging.
    """
    islands = find_islands(graph, min_size=min_island_size)
    if len(islands) <= 1:
        return [], []
    main = islands[0]
    plans: list[BridgePlan] = []
    new_aps: list[AccessPoint] = []
    next_id = len(graph.aps)
    for island in islands[1:]:
        plan = plan_bridge(graph, main, island, spacing_factor=spacing_factor)
        plans.append(plan)
        anchor_building = graph.aps[plan.from_ap].building_id
        for pos in plan.new_positions:
            new_aps.append(AccessPoint(id=next_id, position=pos, building_id=anchor_building))
            next_id += 1
    return plans, new_aps


def apply_bridges(graph: APGraph, new_aps: list[AccessPoint]) -> APGraph:
    """A new AP graph with the bridge APs added.

    Extends incrementally (:meth:`APGraph.with_added_aps`) — identical
    adjacency to a fresh build, without re-pairing the whole mesh.
    """
    return graph.with_added_aps(list(new_aps))
