"""Critical-infrastructure analysis of the AP mesh.

Articulation points (cut vertices) are the APs whose loss disconnects
part of the mesh — exactly the nodes a capable adversary would target
(§1's compromised-node threat), and the places where the §4 bridging
budget is best spent preemptively.  Bridge edges are the single links
whose loss splits a component.
"""

from __future__ import annotations

from .graph import APGraph


def articulation_points(graph: APGraph) -> set[int]:
    """All cut vertices of the mesh (iterative Tarjan low-link).

    An AP is an articulation point iff removing it increases the number
    of connected components.
    """
    n = len(graph.aps)
    visited = [False] * n
    discovery = [0] * n
    low = [0] * n
    parent = [-1] * n
    points: set[int] = set()
    timer = 0

    for root in range(n):
        if visited[root]:
            continue
        # Iterative DFS: stack holds (node, neighbour iterator).
        stack = [(root, iter(graph.neighbors(root)))]
        visited[root] = True
        discovery[root] = low[root] = timer
        timer += 1
        root_children = 0
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            for neighbor in neighbors:
                if not visited[neighbor]:
                    visited[neighbor] = True
                    discovery[neighbor] = low[neighbor] = timer
                    timer += 1
                    parent[neighbor] = node
                    if node == root:
                        root_children += 1
                    stack.append((neighbor, iter(graph.neighbors(neighbor))))
                    advanced = True
                    break
                if neighbor != parent[node]:
                    low[node] = min(low[node], discovery[neighbor])
            if advanced:
                continue
            stack.pop()
            if stack:
                parent_node = stack[-1][0]
                low[parent_node] = min(low[parent_node], low[node])
                if parent_node != root and low[node] >= discovery[parent_node]:
                    points.add(parent_node)
        if root_children > 1:
            points.add(root)
    return points


def bridge_links(graph: APGraph) -> set[tuple[int, int]]:
    """All bridge edges (u, v) with u < v whose removal splits the mesh."""
    n = len(graph.aps)
    visited = [False] * n
    discovery = [0] * n
    low = [0] * n
    parent = [-1] * n
    bridges: set[tuple[int, int]] = set()
    timer = 0

    for root in range(n):
        if visited[root]:
            continue
        stack = [(root, iter(graph.neighbors(root)))]
        visited[root] = True
        discovery[root] = low[root] = timer
        timer += 1
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            for neighbor in neighbors:
                if not visited[neighbor]:
                    visited[neighbor] = True
                    discovery[neighbor] = low[neighbor] = timer
                    timer += 1
                    parent[neighbor] = node
                    stack.append((neighbor, iter(graph.neighbors(neighbor))))
                    advanced = True
                    break
                if neighbor != parent[node]:
                    low[node] = min(low[node], discovery[neighbor])
            if advanced:
                continue
            stack.pop()
            if stack:
                parent_node = stack[-1][0]
                low[parent_node] = min(low[parent_node], low[node])
                if low[node] > discovery[parent_node]:
                    bridges.add((min(parent_node, node), max(parent_node, node)))
    return bridges


def criticality_report(graph: APGraph) -> dict[str, float]:
    """Summary statistics of how fragile the mesh is.

    Returns a dict with ``articulation_count``, ``articulation_fraction``,
    ``bridge_count``, and ``largest_component_fraction``.
    """
    points = articulation_points(graph)
    bridges = bridge_links(graph)
    comps = graph.components()
    return {
        "articulation_count": float(len(points)),
        "articulation_fraction": len(points) / len(graph.aps) if graph.aps else 0.0,
        "bridge_count": float(len(bridges)),
        "largest_component_fraction": (
            len(comps[0]) / len(graph.aps) if graph.aps else 0.0
        ),
    }
