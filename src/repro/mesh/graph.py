"""The AP connectivity graph: a unit-disk graph over placed APs.

Two APs are connected when their distance is at most the transmission
range (50 m in the paper's evaluation, symmetric cutoff).  The graph is
the simulation ground truth — the building graph used for routing is
built *without* looking at it, which is exactly the paper's point.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..geometry import GridIndex, Point
from .placement import AccessPoint

DEFAULT_TRANSMISSION_RANGE = 50.0  # metres, the paper's evaluation setting


@dataclass
class APGraph:
    """Unit-disk graph over access points.

    Attributes:
        aps: all access points, indexed by their contiguous ids.
        transmission_range: symmetric range cutoff in metres.
    """

    aps: list[AccessPoint]
    transmission_range: float = DEFAULT_TRANSMISSION_RANGE
    #: Generation counter: 0 for a fresh build, parent + 1 for graphs
    #: produced by :meth:`with_added_aps`.  Each instance is still
    #: immutable; the version distinguishes extension generations for
    #: cache keys.
    version: int = field(default=0, init=False)
    _adjacency: list[list[int]] = field(init=False, repr=False)
    _index: GridIndex[int] = field(init=False, repr=False)
    _by_building: dict[int, list[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.transmission_range <= 0:
            raise ValueError("transmission range must be positive")
        for i, ap in enumerate(self.aps):
            if ap.id != i:
                raise ValueError("AP ids must be contiguous from 0 (use place_aps)")
        max_range = self.transmission_range
        for ap in self.aps:
            if ap.range_m is not None:
                if ap.range_m <= 0:
                    raise ValueError(f"AP {ap.id} has non-positive range")
                max_range = max(max_range, ap.range_m)
        self._index = GridIndex(cell_size=max(max_range, 1.0))
        for ap in self.aps:
            self._index.insert(ap.id, ap.position)
        # Heterogeneous ranges: a usable (bidirectional) link requires
        # each end to hear the other, i.e. distance <= min of the two
        # effective ranges.  With uniform ranges this reduces to the
        # paper's symmetric cutoff.
        eff = [
            ap.range_m if ap.range_m is not None else self.transmission_range
            for ap in self.aps
        ]
        self._adjacency = [[] for _ in self.aps]
        for ap in self.aps:
            for other_id in self._index.query_radius(ap.position, eff[ap.id]):
                if other_id == ap.id:
                    continue
                link_range = min(eff[ap.id], eff[other_id])
                if ap.position.distance_to(self.aps[other_id].position) <= link_range:
                    self._adjacency[ap.id].append(other_id)
        self._by_building = {}
        for ap in self.aps:
            self._by_building.setdefault(ap.building_id, []).append(ap.id)

    def effective_range(self, ap_id: int) -> float:
        """The transmission range in force for one AP."""
        r = self.aps[ap_id].range_m
        return r if r is not None else self.transmission_range

    def with_added_aps(self, new_aps: list[AccessPoint]) -> "APGraph":
        """A new graph extending this one — without the full rebuild.

        The returned graph is exactly what ``APGraph(self.aps +
        new_aps)`` would build, including *neighbour-list order* (the
        columnar broadcast kernel aligns RNG draws with adjacency
        order, so byte-identical lists are part of the contract, not a
        nicety).  A fresh build orders each list by the neighbour's
        grid cell ascending, then by insertion order within the cell's
        bucket; new APs land at bucket tails, so extension reduces to
        ordered inserts into the O(degree) affected lists instead of
        an O(n·degree) rebuild.

        Falls back to a genuine full rebuild only when a new AP's
        override range exceeds the existing grid cell size (a fresh
        build would choose different cells, changing global order).

        Raises:
            ValueError: if new ids do not continue contiguously, or a
                new AP has a non-positive override range.
        """
        if not new_aps:
            return self
        n0 = len(self.aps)
        for i, ap in enumerate(new_aps):
            if ap.id != n0 + i:
                raise ValueError(
                    "new AP ids must continue contiguously from "
                    f"{n0}, got {ap.id}"
                )
        cell_size = self._index.cell_size
        needs_rebuild = False
        for ap in new_aps:
            if ap.range_m is not None:
                if ap.range_m <= 0:
                    raise ValueError(f"AP {ap.id} has non-positive range")
                if ap.range_m > cell_size:
                    needs_rebuild = True
        combined = list(self.aps) + list(new_aps)
        if needs_rebuild:
            return APGraph(combined, transmission_range=self.transmission_range)

        clone: APGraph = object.__new__(APGraph)
        clone.aps = combined
        clone.transmission_range = self.transmission_range
        clone.version = self.version + 1
        index = self._index.copy()
        adjacency = [list(a) for a in self._adjacency]
        adjacency.extend([] for _ in new_aps)
        by_building = {k: list(v) for k, v in self._by_building.items()}
        for ap in new_aps:
            index.insert(ap.id, ap.position)

        def eff(ap: AccessPoint) -> float:
            return ap.range_m if ap.range_m is not None else self.transmission_range

        def cell_of(p: Point) -> tuple[int, int]:
            return (math.floor(p.x / cell_size), math.floor(p.y / cell_size))

        positions = {ap.id: ap.position for ap in combined}
        for ap in new_aps:
            e_v = eff(ap)
            v_cell = cell_of(ap.position)
            # The new AP's own list comes straight from a radius query
            # over the extended index — that IS fresh-build order.
            own: list[int] = []
            for other_id in index.query_radius(ap.position, e_v):
                if other_id == ap.id:
                    continue
                other = combined[other_id]
                link_range = min(e_v, eff(other))
                if ap.position.distance_to(other.position) > link_range:
                    continue
                own.append(other_id)
                if other_id < n0:
                    # New-new pairs are covered by each other's radius
                    # queries; only pre-existing lists need a patch.
                    # Ordered insert into the lower-id endpoint's list:
                    # after every neighbour in a cell <= the new AP's
                    # (equal-cell existing entries precede bucket-tail
                    # newcomers; earlier new APs were inserted first,
                    # matching their bucket order).
                    lst = adjacency[other_id]
                    pos = len(lst)
                    for idx, w in enumerate(lst):
                        if cell_of(positions[w]) > v_cell:
                            pos = idx
                            break
                    lst.insert(pos, ap.id)
            adjacency[ap.id] = own
            by_building.setdefault(ap.building_id, []).append(ap.id)
        clone._adjacency = adjacency
        clone._index = index
        clone._by_building = by_building
        return clone

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.aps)

    def neighbors(self, ap_id: int) -> list[int]:
        """Ids of APs within transmission range of ``ap_id``."""
        return self._adjacency[ap_id]

    def degree(self, ap_id: int) -> int:
        """Number of one-hop neighbours."""
        return len(self._adjacency[ap_id])

    def position(self, ap_id: int) -> Point:
        """Planar position of an AP."""
        return self.aps[ap_id].position

    def adjacency_lists(self) -> list[list[int]]:
        """The full integer adjacency structure, indexed by AP id.

        This is the graph's own storage (do not mutate).  The fast-path
        broadcast kernel pulls it once so its hot loop runs over plain
        ``list[list[int]]`` with no method dispatch per transmission.
        """
        return self._adjacency

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The adjacency as int32 CSR ``(indptr, indices)``, built once.

        ``indices[indptr[i]:indptr[i+1]]`` are AP ``i``'s neighbours in
        exactly the order of :meth:`neighbors` — columnar consumers
        (the broadcast kernel, island BFS) rely on that order for
        RNG-draw alignment.  The graph is immutable after construction,
        so the arrays never go stale.
        """
        cached = getattr(self, "_csr", None)
        if cached is None:
            counts = np.fromiter(
                (len(a) for a in self._adjacency),
                dtype=np.int64,
                count=len(self._adjacency),
            )
            indptr = np.zeros(len(self._adjacency) + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            indices = np.fromiter(
                (v for a in self._adjacency for v in a),
                dtype=np.int32,
                count=int(indptr[-1]),
            )
            cached = (indptr, indices)
            self._csr = cached
        return cached

    def position_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """AP positions as flat ``(x, y)`` float64 arrays, built once."""
        cached = getattr(self, "_position_arrays", None)
        if cached is None:
            n = len(self.aps)
            px = np.fromiter(
                (ap.position.x for ap in self.aps), dtype=np.float64, count=n
            )
            py = np.fromiter(
                (ap.position.y for ap in self.aps), dtype=np.float64, count=n
            )
            cached = (px, py)
            self._position_arrays = cached
        return cached

    def building_id_list(self) -> list[int]:
        """``building_id`` per AP as a flat list indexed by AP id."""
        cached = getattr(self, "_building_id_list", None)
        if cached is None:
            cached = [ap.building_id for ap in self.aps]
            self._building_id_list = cached
        return cached

    def aps_in_building(self, building_id: int) -> list[int]:
        """Ids of APs placed inside the given building (possibly empty)."""
        return self._by_building.get(building_id, [])

    def aps_within(self, center: Point, radius: float) -> list[int]:
        """Ids of APs within ``radius`` of an arbitrary point."""
        return self._index.query_radius(center, radius)

    def edge_count(self) -> int:
        """Number of undirected links in the mesh."""
        return sum(len(a) for a in self._adjacency) // 2

    # ------------------------------------------------------------------
    # Path queries (ground-truth oracles used for evaluation only)
    # ------------------------------------------------------------------
    def hop_distance(self, src: int, dst: int) -> int | None:
        """Minimum hop count between two APs via BFS, or None."""
        if src == dst:
            return 0
        dist = {src: 0}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            d = dist[u]
            for v in self._adjacency[u]:
                if v not in dist:
                    if v == dst:
                        return d + 1
                    dist[v] = d + 1
                    queue.append(v)
        return None

    def shortest_path(self, src: int, dst: int) -> list[int] | None:
        """A minimum-hop AP path from ``src`` to ``dst``, or None."""
        if src == dst:
            return [src]
        parent: dict[int, int] = {src: src}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if v not in parent:
                    parent[v] = u
                    if v == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(parent[path[-1]])
                        return list(reversed(path))
                    queue.append(v)
        return None

    def min_hops_to_building(self, src: int, building_id: int) -> int | None:
        """Minimum hops from ``src`` to *any* AP in the target building.

        This is the denominator of the paper's transmission-overhead
        metric: the absolute best case number of transmissions.
        """
        targets = set(self._by_building.get(building_id, []))
        if not targets:
            return None
        if src in targets:
            return 0
        dist = {src: 0}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            d = dist[u]
            for v in self._adjacency[u]:
                if v not in dist:
                    if v in targets:
                        return d + 1
                    dist[v] = d + 1
                    queue.append(v)
        return None

    def component_of(self, ap_id: int) -> set[int]:
        """All AP ids reachable from ``ap_id`` (its connected component)."""
        seen = {ap_id}
        queue = deque([ap_id])
        while queue:
            u = queue.popleft()
            for v in self._adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen

    def components(self) -> list[set[int]]:
        """All connected components, largest first."""
        seen: set[int] = set()
        comps: list[set[int]] = []
        for ap in self.aps:
            if ap.id in seen:
                continue
            comp = self.component_of(ap.id)
            seen |= comp
            comps.append(comp)
        comps.sort(key=len, reverse=True)
        return comps

    def component_ids(self) -> list[int]:
        """Component label per AP (lazily computed once and cached).

        Two APs are mutually reachable iff their labels are equal.
        """
        cached = getattr(self, "_component_ids", None)
        if cached is not None:
            return cached
        labels = [-1] * len(self.aps)
        next_label = 0
        for ap in self.aps:
            if labels[ap.id] != -1:
                continue
            for member in self.component_of(ap.id):
                labels[member] = next_label
            next_label += 1
        self._component_ids = labels
        return labels

    def buildings_reachable(self, src_building: int, dst_building: int) -> bool:
        """Whether any AP in ``src_building`` can reach any AP in
        ``dst_building`` through the mesh (the paper's *reachability*)."""
        src_aps = self._by_building.get(src_building, [])
        dst_aps = self._by_building.get(dst_building, [])
        if not src_aps or not dst_aps:
            return False
        labels = self.component_ids()
        dst_labels = {labels[ap] for ap in dst_aps}
        return any(labels[ap] in dst_labels for ap in src_aps)
