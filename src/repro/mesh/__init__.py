"""AP placement, the unit-disk AP mesh, and island/bridge analysis."""

from .critical import articulation_points, bridge_links, criticality_report
from .graph import DEFAULT_TRANSMISSION_RANGE, APGraph
from .islands import (
    BridgePlan,
    Island,
    apply_bridges,
    bridge_all_islands,
    closest_gap,
    find_islands,
    plan_bridge,
)
from .power import (
    LongevityPoint,
    PowerProfile,
    PowerSource,
    assign_power_profiles,
    longevity_curve,
    surviving_mesh,
)
from .placement import (
    DEFAULT_AP_DENSITY,
    DEFAULT_DELIBERATE_SPACING,
    AccessPoint,
    place_aps,
)

__all__ = [
    "APGraph",
    "AccessPoint",
    "BridgePlan",
    "DEFAULT_AP_DENSITY",
    "DEFAULT_DELIBERATE_SPACING",
    "DEFAULT_TRANSMISSION_RANGE",
    "Island",
    "LongevityPoint",
    "PowerProfile",
    "PowerSource",
    "apply_bridges",
    "assign_power_profiles",
    "articulation_points",
    "bridge_links",
    "bridge_all_islands",
    "closest_gap",
    "criticality_report",
    "find_islands",
    "longevity_curve",
    "place_aps",
    "plan_bridge",
    "surviving_mesh",
]
