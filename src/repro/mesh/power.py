"""Power modelling: which APs survive as the outage drags on.

§2 addresses the obvious objection — "during attacks or disasters, the
supply of electricity might be unreliable" — by noting that grid power
is usually restored quickly and that "off-grid generators and battery
backups are ubiquitous".  This module makes that discussion testable:
each AP gets a power profile (grid-down at t=0, an optional battery or
generator), and the mesh can be evaluated at any time after the outage
starts as batteries deplete.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from .graph import APGraph
from .placement import AccessPoint


class PowerSource(Enum):
    """What keeps an AP running once the grid is down."""

    NONE = "none"          # dies the moment the grid does
    BATTERY = "battery"    # UPS: runs until the battery drains
    GENERATOR = "generator"  # fuel keeps coming: effectively unlimited


@dataclass(frozen=True)
class PowerProfile:
    """One AP's survival characteristics after the grid fails."""

    source: PowerSource
    battery_hours: float = 0.0

    def alive_at(self, hours_after_outage: float) -> bool:
        """Whether the AP is still powered at the given time.

        Boundary convention (uniform across every source, no epsilon):
        an AP is alive iff ``t == 0.0`` or ``t < runtime``, where
        ``runtime`` is infinite for GENERATOR, ``battery_hours`` for
        BATTERY, and ``0.0`` for NONE.  Batteries thus power the
        half-open interval ``[0, battery_hours)`` — at exactly
        ``t == battery_hours`` the battery is drained and the AP is
        down — and a NONE AP is alive only at the instant the grid
        fails (``t == 0.0``), which keeps "evaluate the mesh at the
        moment of the outage" meaningful for every profile.

        Raises:
            ValueError: for negative times.
        """
        if hours_after_outage < 0:
            raise ValueError("time must be non-negative")
        if self.source is PowerSource.GENERATOR:
            return True
        if hours_after_outage == 0.0:
            return True
        if self.source is PowerSource.BATTERY:
            return hours_after_outage < self.battery_hours
        return False


def assign_power_profiles(
    aps: list[AccessPoint],
    rng: random.Random,
    battery_fraction: float = 0.5,
    generator_fraction: float = 0.05,
    battery_hours_range: tuple[float, float] = (2.0, 24.0),
) -> dict[int, PowerProfile]:
    """Assign a power profile to every AP.

    Defaults are deliberately moderate: half the APs sit behind some
    battery/UPS (routers draw little power; §2 calls backups
    "ubiquitous, particularly in regions where power outages are more
    frequent"), a few percent are on generator-backed buildings
    (hospitals, datacenters), and the rest die with the grid.

    Raises:
        ValueError: for fractions outside [0, 1] or summing past 1.
    """
    if not 0 <= battery_fraction <= 1 or not 0 <= generator_fraction <= 1:
        raise ValueError("fractions must be in [0, 1]")
    if battery_fraction + generator_fraction > 1:
        raise ValueError("battery and generator fractions exceed 1")
    lo, hi = battery_hours_range
    if lo <= 0 or hi < lo:
        raise ValueError("battery hours range must be positive and ordered")
    profiles: dict[int, PowerProfile] = {}
    for ap in aps:
        roll = rng.random()
        if roll < generator_fraction:
            profiles[ap.id] = PowerProfile(PowerSource.GENERATOR)
        elif roll < generator_fraction + battery_fraction:
            profiles[ap.id] = PowerProfile(
                PowerSource.BATTERY, battery_hours=rng.uniform(lo, hi)
            )
        else:
            profiles[ap.id] = PowerProfile(PowerSource.NONE)
    return profiles


def surviving_mesh(
    graph: APGraph,
    profiles: dict[int, PowerProfile],
    hours_after_outage: float,
) -> APGraph:
    """The mesh restricted to APs still powered at the given time.

    Surviving APs are re-indexed to contiguous ids (an :class:`APGraph`
    invariant), so use the returned graph's own ids, not the original's.

    Raises:
        KeyError: if any AP lacks a profile.
    """
    survivors = [
        ap
        for ap in graph.aps
        if profiles[ap.id].alive_at(hours_after_outage)
    ]
    reindexed = [
        AccessPoint(
            id=i,
            position=ap.position,
            building_id=ap.building_id,
            range_m=ap.range_m,
        )
        for i, ap in enumerate(survivors)
    ]
    return APGraph(reindexed, transmission_range=graph.transmission_range)


@dataclass(frozen=True)
class LongevityPoint:
    """Mesh health at one time after the outage."""

    hours: float
    alive_aps: int
    total_aps: int
    reachability: float

    @property
    def alive_fraction(self) -> float:
        return self.alive_aps / self.total_aps if self.total_aps else 0.0


def longevity_curve(
    graph: APGraph,
    profiles: dict[int, PowerProfile],
    hours: tuple[float, ...] = (0.0, 4.0, 12.0, 24.0, 48.0),
    pairs: int = 120,
    rng: random.Random | None = None,
) -> list[LongevityPoint]:
    """Building-pair reachability as batteries drain.

    Reachability is measured over the same building pairs at every time
    step, so the curve isolates the effect of AP die-off.
    """
    if rng is None:
        rng = random.Random(0)
    building_ids = sorted({ap.building_id for ap in graph.aps})
    if len(building_ids) < 2:
        raise ValueError("need at least two AP-bearing buildings")
    pair_list = [tuple(rng.sample(building_ids, 2)) for _ in range(pairs)]
    points = []
    for t in hours:
        alive = surviving_mesh(graph, profiles, t)
        ok = sum(1 for s, d in pair_list if alive.buildings_reachable(s, d))
        points.append(
            LongevityPoint(
                hours=t,
                alive_aps=len(alive),
                total_aps=len(graph.aps),
                reachability=ok / len(pair_list),
            )
        )
    return points
