"""AP placement: populate building footprints with access points.

The paper's simulator "randomly places APs in a 2D plane, inside
building footprints at a configurable AP density" (§4).  The reference
density used in the evaluation is 1 AP per 200 m² of building area,
which the paper describes as relatively sparse.

Bridge-kind structures are treated specially: §4 proposes "the
addition of a small number of well-placed APs" to span connectivity
gaps, so buildings whose kind appears in ``deliberate_spacing`` get
APs placed deterministically along their long axis instead of randomly
— modelling an operator who installs them on purpose.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..city import Building, City
from ..geometry import Point

DEFAULT_AP_DENSITY = 1.0 / 200.0  # APs per square metre of building area

# Structures that exist specifically to carry connectivity (kind ->
# AP spacing in metres along the structure's long axis).
DEFAULT_DELIBERATE_SPACING: dict[str, float] = {"bridge": 35.0}


@dataclass(frozen=True, slots=True)
class AccessPoint:
    """One Wi-Fi access point participating in the mesh.

    ``range_m`` of None means the mesh-wide default transmission range;
    a value overrides it for this AP (e.g. a rooftop AP on a tall
    building with cleared line of sight — §4 hypothesises such APs
    "would likely increase the transmission range and extend the
    connectivity of the network").
    """

    id: int
    position: Point
    building_id: int
    range_m: float | None = None


def _deliberate_positions(building: Building, spacing: float) -> list[Point]:
    """Evenly spaced positions along the footprint's long bbox axis."""
    min_x, min_y, max_x, max_y = building.polygon.bbox
    width = max_x - min_x
    height = max_y - min_y
    if width >= height:
        a = Point(min_x, (min_y + max_y) / 2.0)
        b = Point(max_x, (min_y + max_y) / 2.0)
    else:
        a = Point((min_x + max_x) / 2.0, min_y)
        b = Point((min_x + max_x) / 2.0, max_y)
    length = a.distance_to(b)
    count = max(2, int(length // spacing) + 1)
    return [a.lerp(b, i / (count - 1)) for i in range(count)]


def place_aps(
    city: City,
    density: float = DEFAULT_AP_DENSITY,
    rng: random.Random | None = None,
    deliberate_spacing: dict[str, float] | None = None,
    rooftop_fraction: float = 0.0,
    rooftop_range: float = 120.0,
) -> list[AccessPoint]:
    """Place APs inside every building.

    Ordinary buildings receive ``floor(area * density)`` APs uniformly
    at random plus one more with probability equal to the fractional
    remainder, so the expected count matches the density exactly even
    for buildings smaller than ``1 / density`` (e.g. detached houses).

    Buildings whose ``kind`` appears in ``deliberate_spacing`` (by
    default bridge structures) instead get APs at fixed intervals along
    their long axis — the §4 "well-placed APs" provision.

    A ``rooftop_fraction`` of ordinary APs are promoted to rooftop APs
    with ``rooftop_range`` metres of range — the §4 "taller buildings
    … would likely increase the transmission range" hypothesis.

    Args:
        city: the city map.
        density: expected APs per square metre of footprint.
        rng: randomness source; defaults to a fresh ``Random(0)``.
        deliberate_spacing: kind -> spacing overrides; pass ``{}`` to
            disable deliberate placement entirely.
        rooftop_fraction: probability that an AP is a rooftop AP.
        rooftop_range: transmission range of rooftop APs in metres.

    Raises:
        ValueError: if ``density``, ``rooftop_fraction``, or
            ``rooftop_range`` is out of range.
    """
    if density <= 0:
        raise ValueError(f"AP density must be positive, got {density}")
    if not 0 <= rooftop_fraction <= 1:
        raise ValueError("rooftop fraction must be in [0, 1]")
    if rooftop_range <= 0:
        raise ValueError("rooftop range must be positive")
    if rng is None:
        rng = random.Random(0)
    if deliberate_spacing is None:
        deliberate_spacing = DEFAULT_DELIBERATE_SPACING
    aps: list[AccessPoint] = []
    next_id = 0
    for building in city.buildings:
        spacing = deliberate_spacing.get(building.kind)
        if spacing is not None:
            positions = _deliberate_positions(building, spacing)
        else:
            expected = building.area() * density
            count = int(expected)
            if rng.random() < expected - count:
                count += 1
            positions = [
                building.polygon.random_point_inside(rng) for _ in range(count)
            ]
        for position in positions:
            range_m = (
                rooftop_range
                if rooftop_fraction > 0 and rng.random() < rooftop_fraction
                else None
            )
            aps.append(
                AccessPoint(
                    id=next_id,
                    position=position,
                    building_id=building.id,
                    range_m=range_m,
                )
            )
            next_id += 1
    return aps
