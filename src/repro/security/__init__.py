"""Compromised-node models and resilient-routing mitigations."""

from .compromise import (
    honest_path_exists,
    random_compromise,
    region_around,
    region_compromise,
    targeted_compromise,
)
from .resilient import ResilientReport, resilient_send

__all__ = [
    "ResilientReport",
    "honest_path_exists",
    "random_compromise",
    "region_around",
    "region_compromise",
    "resilient_send",
    "targeted_compromise",
]
