"""Resilient sending: route diversification against blackholes.

CityMesh nodes cannot know which APs are compromised, but the sender
*can* notice a missing acknowledgement and retry differently.  This
module implements the natural end-to-end mitigation: retransmit with
(a) a wider conduit, which enrols more honest buildings around the
blackholes, and (b) a perturbed building route, which steers the
conduit through different streets entirely.

This is an extension beyond the paper's preliminary evaluation; the
paper poses the question (§1, Security) and we quantify one answer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..buildgraph import BuildingGraph, NoRouteError, plan_building_route
from ..city import City
from ..core import BuildingRouter
from ..core.compression import compress_route, conduits_for_waypoints
from ..mesh import APGraph
from ..sim import ConduitPolicy, simulate_broadcast


@dataclass(frozen=True)
class ResilientReport:
    """Outcome of a resilient send."""

    delivered: bool
    attempts: int
    total_transmissions: int
    final_width: float | None


class _DetourGraph:
    """A view of a building graph with some buildings penalised.

    Multiplying previously used relay buildings' edge weights pushes
    Dijkstra onto geographically different streets on the retry.
    """

    def __init__(self, base: BuildingGraph, penalised: set[int], factor: float = 8.0):
        self._base = base
        self._penalised = penalised
        self._factor = factor

    def __contains__(self, building_id: int) -> bool:
        return building_id in self._base

    def neighbors(self, building_id: int) -> dict[int, float]:
        out = {}
        for n, w in self._base.neighbors(building_id).items():
            if n in self._penalised or building_id in self._penalised:
                out[n] = w * self._factor
            else:
                out[n] = w
        return out

    def centroid(self, building_id: int):
        return self._base.centroid(building_id)


def resilient_send(
    city: City,
    graph: APGraph,
    router: BuildingRouter,
    source_ap: int,
    dest_building: int,
    rng: random.Random,
    compromised: frozenset[int],
    max_attempts: int = 3,
    width_growth: float = 1.6,
) -> ResilientReport:
    """Send with retries: widen the conduit and detour on each failure.

    Args:
        city: shared map.
        graph: ground-truth AP mesh.
        router: the sender's router (its conduit width seeds attempt 1).
        source_ap: injecting AP.
        dest_building: destination postbox building.
        rng: jitter and retry randomness.
        compromised: blackhole APs (unknown to the sender).
        max_attempts: total transmission attempts.
        width_growth: conduit width multiplier per retry.

    Raises:
        ValueError: for non-positive attempts or growth below 1.
    """
    if max_attempts < 1:
        raise ValueError("need at least one attempt")
    if width_growth < 1.0:
        raise ValueError("width growth must be >= 1")
    src_building = graph.aps[source_ap].building_id
    total_tx = 0
    width = router.conduit_width
    used_relays: set[int] = set()
    for attempt in range(1, max_attempts + 1):
        plan_graph = (
            router.graph
            if not used_relays
            else _DetourGraph(router.graph, used_relays)
        )
        try:
            route = plan_building_route(plan_graph, src_building, dest_building)  # type: ignore[arg-type]
        except (NoRouteError, KeyError):
            return ResilientReport(False, attempt, total_tx, None)
        centroids = [router.graph.centroid(b) for b in route]
        compressed = compress_route(centroids, width=width)
        conduits = conduits_for_waypoints(
            [centroids[i] for i in compressed.waypoints], width
        )
        policy = ConduitPolicy(conduits, city)
        result = simulate_broadcast(
            graph, source_ap, dest_building, policy, rng, compromised=compromised
        )
        total_tx += result.transmissions
        if result.delivered:
            return ResilientReport(True, attempt, total_tx, width)
        used_relays.update(route[1:-1])
        width *= width_growth
    return ResilientReport(False, max_attempts, total_tx, None)
