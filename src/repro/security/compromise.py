"""Compromised-node models (§1's security element).

Under cyberattack "some fraction of the nodes will be compromised";
the baseline adversary here is a *blackhole*: a compromised AP keeps
receiving packets but never rebroadcasts, silently eroding conduit
connectivity.  Three selection models are provided — random fraction,
geographic region (a compromised neighbourhood), and targeted cut
(the adversary compromises the busiest relay buildings).
"""

from __future__ import annotations

import random

from ..geometry import Point, Polygon
from ..mesh import APGraph


def random_compromise(
    graph: APGraph, fraction: float, rng: random.Random
) -> frozenset[int]:
    """Compromise a uniformly random fraction of all APs.

    Raises:
        ValueError: for fractions outside [0, 1].
    """
    if not 0 <= fraction <= 1:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    count = round(fraction * len(graph.aps))
    return frozenset(rng.sample(range(len(graph.aps)), count))


def region_compromise(graph: APGraph, region: Polygon) -> frozenset[int]:
    """Compromise every AP inside a geographic region."""
    return frozenset(
        ap.id for ap in graph.aps if region.contains(ap.position)
    )


def targeted_compromise(
    graph: APGraph,
    count: int,
    sample_pairs: list[tuple[int, int]],
) -> frozenset[int]:
    """Compromise the APs that appear on the most shortest paths.

    A strong adversary with topology knowledge: for each sampled
    (source AP, destination building) pair, walk the true shortest
    path and count visits; the ``count`` most-visited APs are taken.

    Raises:
        ValueError: for a negative count.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    visits: dict[int, int] = {}
    for src, dst_building in sample_pairs:
        dst_aps = graph.aps_in_building(dst_building)
        if not dst_aps:
            continue
        path = graph.shortest_path(src, dst_aps[0])
        if path is None:
            continue
        for ap_id in path[1:-1]:
            visits[ap_id] = visits.get(ap_id, 0) + 1
    busiest = sorted(visits, key=lambda k: visits[k], reverse=True)
    return frozenset(busiest[:count])


def honest_path_exists(
    graph: APGraph,
    source_ap: int,
    dest_building: int,
    compromised: frozenset[int],
) -> bool:
    """Whether an uncompromised AP path exists (§1's success criterion).

    "A successful routing protocol for a DFN should find a path
    between two nodes wishing to communicate if there exists a path
    that does not traverse a compromised node."  This oracle decides
    the *if*: BFS over the subgraph of honest APs.
    """
    if source_ap in compromised:
        return False
    targets = {
        ap for ap in graph.aps_in_building(dest_building) if ap not in compromised
    }
    if not targets:
        return False
    if source_ap in targets:
        return True
    from collections import deque

    seen = {source_ap}
    queue = deque([source_ap])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v in compromised or v in seen:
                continue
            if v in targets:
                return True
            seen.add(v)
            queue.append(v)
    return False


def region_around(center: Point, radius: float) -> Polygon:
    """A square compromise region centred on a point (convenience)."""
    return Polygon.rectangle(
        center.x - radius, center.y - radius, center.x + radius, center.y + radius
    )
