"""``repro.service``: the always-on asynchronous DFN service layer.

The paper's §3 applications — postbox send/check with urgent pushes,
geospatial messaging, and directory lookup — exposed as a long-running
stdlib-asyncio service instead of a batch simulation step:

- :mod:`~repro.service.shards` — owner-sharded postbox stores, one
  single-writer task per shard, preserving the exactly-once-on-success
  push semantics under concurrent access;
- :mod:`~repro.service.app` — the transport-independent endpoint
  handlers (plus :class:`InProcessClient`, the sockets-free test path);
- :mod:`~repro.service.http` — minimal HTTP/1.1 + NDJSON push stream
  over asyncio streams, with graceful shutdown;
- :mod:`~repro.service.geoboard` — the geocast publish/poll board;
- :mod:`~repro.service.loadgen` — deterministic scenario-timeline
  traffic and the closed-loop replay that measures sustained req/s and
  p50/p99 latency;
- :mod:`~repro.service.errors` — typed backpressure (full postbox,
  overloaded shard, full board), never silent drops.

No new dependencies: everything here is the standard library plus the
existing ``repro`` stack.
"""

from .app import InProcessClient, ServiceApp
from .client import PushStreamClient, ServiceClient
from .cluster import ClusterConfig, ClusterSupervisor, home_worker
from .errors import (
    BadRequestError,
    ConfirmRefusedError,
    ForwardOverloadedError,
    GeocastBoardFullError,
    NotFoundError,
    PostboxFullError,
    ServiceError,
    ShardOverloadedError,
    error_response,
)
from .geoboard import GeocastBoard, GeocastMessage
from .http import DFNServer
from .loadgen import (
    DEFAULT_MIX,
    LoadReport,
    LoadTrace,
    TraceRequest,
    format_report,
    generate_trace,
    run_loadgen,
    run_loadgen_procs,
)
from .server import build_app, run_service
from .shards import ShardedPostboxStore

__all__ = [
    "BadRequestError",
    "ConfirmRefusedError",
    "ClusterConfig",
    "ClusterSupervisor",
    "DEFAULT_MIX",
    "DFNServer",
    "ForwardOverloadedError",
    "GeocastBoard",
    "GeocastBoardFullError",
    "GeocastMessage",
    "InProcessClient",
    "LoadReport",
    "LoadTrace",
    "NotFoundError",
    "PostboxFullError",
    "PushStreamClient",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "ShardOverloadedError",
    "ShardedPostboxStore",
    "TraceRequest",
    "build_app",
    "error_response",
    "format_report",
    "generate_trace",
    "home_worker",
    "run_loadgen",
    "run_loadgen_procs",
    "run_service",
]
