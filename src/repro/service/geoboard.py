"""The geocast board: publish to a place, poll from a place.

§1's "geospatial messaging" as a *service* primitive.  The simulation
layer (:mod:`repro.apps.geocast`) answers "which buildings would a
geocast broadcast reach through the mesh"; the service layer needs the
application-facing half: a message addressed to a disc ("anyone near
the shelter on 5th street") is stored on the board, and any device
that polls from inside the disc while the message is live receives it.

The board is a uniform grid index over disc bounding boxes — publish
inserts the message id into every covered cell, poll checks one cell
and does the exact distance test — so both operations are O(messages
near the point), not O(all messages).

Expiry mirrors the PR 8 ``Postbox`` pending-map refactor: instead of a
full-board rescan-and-rebuild, live messages sit in an expiry-ordered
heap and :meth:`sweep` pops the expired *prefix* — O(dropped · log n),
never O(live).  Each drop removes the id from exactly the cells its
disc covered, so the index shrinks with the board instead of waiting
for a rebuild.  The ``geoboard.scan`` / ``geoboard.expired`` counters
record how much work each sweep did.

The board is event-loop-local state (the service runs it inside one
asyncio loop), so there is no locking; a full board rejects publishes
with the typed :class:`GeocastBoardFullError` rather than evicting
silently.  In a multi-worker cluster each worker keeps a full replica
of the board (publishes are broadcast, polls stay local): ids are then
allocated on a per-worker stride (``id_start``/``id_stride``) so two
workers can accept publishes concurrently without ever colliding, and
:meth:`apply` inserts an already-allocated replica verbatim.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..obs import REGISTRY
from .errors import BadRequestError, GeocastBoardFullError

_M_PUBLISHED = REGISTRY.counter("service.geocast.published")
_M_POLL_HITS = REGISTRY.counter("service.geocast.poll_hits")
#: Messages dropped because their TTL ran out (sweep or lazy poll prune).
_M_EXPIRED = REGISTRY.counter("geoboard.expired")
#: Heap entries examined by sweeps (the bounded-scan work counter).
_M_SCAN = REGISTRY.counter("geoboard.scan")

#: Default message time-to-live (one epoch of a typical scenario).
DEFAULT_TTL_S = 4 * 3600.0


@dataclass(frozen=True)
class GeocastMessage:
    """One live geocast: a payload pinned to a disc for a while."""

    geocast_id: int
    x: float
    y: float
    radius: float
    payload: bytes
    posted_s: float
    ttl_s: float

    def covers(self, x: float, y: float) -> bool:
        return (x - self.x) ** 2 + (y - self.y) ** 2 <= self.radius**2

    def expired(self, now_s: float) -> bool:
        return now_s - self.posted_s > self.ttl_s


class GeocastBoard:
    """Grid-indexed geocast storage with expiry-ordered lazy sweeps."""

    def __init__(
        self,
        cell_size: float = 200.0,
        max_radius: float = 2000.0,
        max_messages: int = 100_000,
        id_start: int = 1,
        id_stride: int = 1,
    ):
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        if id_start < 1 or id_stride < 1:
            raise ValueError("id allocation must start at >= 1 with stride >= 1")
        self.cell_size = cell_size
        self.max_radius = max_radius
        self.max_messages = max_messages
        self.id_stride = id_stride
        self._messages: dict[int, GeocastMessage] = {}
        self._cells: dict[tuple[int, int], list[int]] = {}
        # Expiry-ordered heap of (expires_s, geocast_id); entries whose
        # id already left ``_messages`` (lazy poll prune) are skipped.
        self._expiry: list[tuple[float, int]] = []
        self._next_id = id_start

    def _cell(self, x: float, y: float) -> tuple[int, int]:
        return (int(x // self.cell_size), int(y // self.cell_size))

    def _covered_cells(self, message: GeocastMessage) -> list[tuple[int, int]]:
        r = message.radius
        x0, y0 = self._cell(message.x - r, message.y - r)
        x1, y1 = self._cell(message.x + r, message.y + r)
        return [(cx, cy) for cx in range(x0, x1 + 1) for cy in range(y0, y1 + 1)]

    def _validate(self, radius: float, ttl_s: float) -> None:
        if radius <= 0 or radius > self.max_radius:
            raise BadRequestError(
                f"geocast radius must be in (0, {self.max_radius:g}] m"
            )
        if ttl_s <= 0:
            raise BadRequestError("geocast ttl must be positive")

    def _insert(self, message: GeocastMessage) -> None:
        self._messages[message.geocast_id] = message
        for cell in self._covered_cells(message):
            self._cells.setdefault(cell, []).append(message.geocast_id)
        heapq.heappush(
            self._expiry, (message.posted_s + message.ttl_s, message.geocast_id)
        )

    def _unindex(self, message: GeocastMessage) -> None:
        """Remove one message's id from exactly the cells it covered."""
        for cell_key in self._covered_cells(message):
            cell = self._cells.get(cell_key)
            if cell is None:
                continue
            try:
                cell.remove(message.geocast_id)
            except ValueError:
                pass  # a poll already pruned this cell entry
            if not cell:
                del self._cells[cell_key]

    def publish(
        self,
        x: float,
        y: float,
        radius: float,
        payload: bytes,
        now_s: float,
        ttl_s: float = DEFAULT_TTL_S,
    ) -> int:
        """Pin a payload to the disc around ``(x, y)``; returns its id.

        Raises:
            BadRequestError: non-positive radius/TTL or a radius above
                the board's cap (an unbounded radius would touch every
                cell).
            GeocastBoardFullError: the board is at its message cap
                *after* sweeping the expired prefix — a board full of
                stale messages clears itself on the next publish, no
                poll traffic required.
        """
        self._validate(radius, ttl_s)
        if len(self._messages) >= self.max_messages:
            self.sweep(now_s)  # a full board is often mostly stale
            if len(self._messages) >= self.max_messages:
                raise GeocastBoardFullError(
                    f"board at capacity ({self.max_messages} live geocasts)"
                )
        message = GeocastMessage(
            geocast_id=self._next_id,
            x=x,
            y=y,
            radius=radius,
            payload=payload,
            posted_s=now_s,
            ttl_s=ttl_s,
        )
        self._next_id += self.id_stride
        self._insert(message)
        _M_PUBLISHED.inc()
        return message.geocast_id

    def apply(self, message: GeocastMessage) -> None:
        """Insert a replica published on another worker, verbatim.

        The id was allocated by the accepting worker's stride, so it
        can never collide with this board's own allocations.  Replicas
        bypass the capacity check — every board in a cluster must hold
        the same message set, and the acceptor already enforced the cap.

        Re-applying an id that is already live is idempotent for an
        identical frame; a *refreshed* replica (same id, later expiry —
        an operator re-pinning a shelter notice) replaces the live
        message.  The old heap entry stays behind, but :meth:`sweep`
        checks each popped entry against the live message's actual
        expiry, so the refresh can never be dropped early or counted
        expired twice.
        """
        existing = self._messages.get(message.geocast_id)
        if existing is not None:
            if (
                message.posted_s + message.ttl_s
                <= existing.posted_s + existing.ttl_s
            ):
                return  # duplicate (or stale) broadcast frame: idempotent
            self._unindex(existing)
            del self._messages[message.geocast_id]
        self._insert(message)

    def get(self, geocast_id: int) -> GeocastMessage | None:
        """The live message with this id, if any (cluster replication
        reads the freshly published message back to broadcast it)."""
        return self._messages.get(geocast_id)

    def poll(
        self, x: float, y: float, now_s: float, limit: int = 50
    ) -> list[GeocastMessage]:
        """Live geocasts whose disc covers ``(x, y)``, oldest first.

        Expired entries found in the touched cell are pruned in
        passing, so hot cells stay tight between sweeps.
        """
        cell = self._cells.get(self._cell(x, y))
        if not cell:
            return []
        hits: list[GeocastMessage] = []
        stale: list[int] = []
        dropped = 0
        for geocast_id in cell:
            message = self._messages.get(geocast_id)
            if message is None or message.expired(now_s):
                stale.append(geocast_id)
                if message is not None:
                    self._messages.pop(geocast_id, None)
                    dropped += 1
                continue
            if message.covers(x, y):
                hits.append(message)
        if stale:
            stale_set = set(stale)
            cell[:] = [g for g in cell if g not in stale_set]
        if dropped:
            _M_EXPIRED.inc(dropped)
        hits.sort(key=lambda m: m.geocast_id)
        _M_POLL_HITS.inc(len(hits[:limit]))
        return hits[:limit]

    def sweep(self, now_s: float, limit: int | None = None) -> int:
        """Pop the expired prefix of the expiry heap (at most ``limit``
        drops when bounded); each drop is unindexed from exactly the
        cells its disc covered.  Returns the number dropped.

        Each popped entry is identity-checked against the live message:
        an entry whose recorded expiry predates the message's actual
        one belongs to a since-refreshed publish (the refresh pushed a
        newer heap entry), so it is skipped — the refreshed message
        stays live and is neither dropped early nor double-counted in
        ``geoboard.expired``.
        """
        dropped = 0
        scanned = 0
        while self._expiry and self._expiry[0][0] < now_s:
            if limit is not None and dropped >= limit:
                break
            scanned += 1
            expires_s, geocast_id = heapq.heappop(self._expiry)
            message = self._messages.get(geocast_id)
            if message is None:
                continue  # already pruned lazily by a poll
            if message.posted_s + message.ttl_s > expires_s:
                continue  # stale entry: this id was refreshed since
            del self._messages[geocast_id]
            self._unindex(message)
            dropped += 1
        if scanned:
            _M_SCAN.inc(scanned)
        if dropped:
            _M_EXPIRED.inc(dropped)
        return dropped

    def live_count(self) -> int:
        """Messages currently on the board (stale entries included
        until a poll or sweep prunes them)."""
        return len(self._messages)
