"""The geocast board: publish to a place, poll from a place.

§1's "geospatial messaging" as a *service* primitive.  The simulation
layer (:mod:`repro.apps.geocast`) answers "which buildings would a
geocast broadcast reach through the mesh"; the service layer needs the
application-facing half: a message addressed to a disc ("anyone near
the shelter on 5th street") is stored on the board, and any device
that polls from inside the disc while the message is live receives it.

The board is a uniform grid index over disc bounding boxes — publish
inserts the message id into every covered cell, poll checks one cell
and does the exact distance test — so both operations are O(messages
near the point), not O(all messages).  Expired messages are pruned
lazily on the cells a poll touches and in bulk by :meth:`sweep`.

The board is event-loop-local state (the service runs it inside one
asyncio loop), so there is no locking; a full board rejects publishes
with the typed :class:`GeocastBoardFullError` rather than evicting
silently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import REGISTRY
from .errors import BadRequestError, GeocastBoardFullError

_M_PUBLISHED = REGISTRY.counter("service.geocast.published")
_M_POLL_HITS = REGISTRY.counter("service.geocast.poll_hits")
_M_EXPIRED = REGISTRY.counter("service.geocast.expired")

#: Default message time-to-live (one epoch of a typical scenario).
DEFAULT_TTL_S = 4 * 3600.0


@dataclass(frozen=True)
class GeocastMessage:
    """One live geocast: a payload pinned to a disc for a while."""

    geocast_id: int
    x: float
    y: float
    radius: float
    payload: bytes
    posted_s: float
    ttl_s: float

    def covers(self, x: float, y: float) -> bool:
        return (x - self.x) ** 2 + (y - self.y) ** 2 <= self.radius**2

    def expired(self, now_s: float) -> bool:
        return now_s - self.posted_s > self.ttl_s


class GeocastBoard:
    """Grid-indexed geocast storage with lazy expiry."""

    def __init__(
        self,
        cell_size: float = 200.0,
        max_radius: float = 2000.0,
        max_messages: int = 100_000,
    ):
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size = cell_size
        self.max_radius = max_radius
        self.max_messages = max_messages
        self._messages: dict[int, GeocastMessage] = {}
        self._cells: dict[tuple[int, int], list[int]] = {}
        self._next_id = 1

    def _cell(self, x: float, y: float) -> tuple[int, int]:
        return (int(x // self.cell_size), int(y // self.cell_size))

    def _covered_cells(self, message: GeocastMessage) -> list[tuple[int, int]]:
        r = message.radius
        x0, y0 = self._cell(message.x - r, message.y - r)
        x1, y1 = self._cell(message.x + r, message.y + r)
        return [(cx, cy) for cx in range(x0, x1 + 1) for cy in range(y0, y1 + 1)]

    def publish(
        self,
        x: float,
        y: float,
        radius: float,
        payload: bytes,
        now_s: float,
        ttl_s: float = DEFAULT_TTL_S,
    ) -> int:
        """Pin a payload to the disc around ``(x, y)``; returns its id.

        Raises:
            BadRequestError: non-positive radius/TTL or a radius above
                the board's cap (an unbounded radius would touch every
                cell).
            GeocastBoardFullError: the board is at its message cap.
        """
        if radius <= 0 or radius > self.max_radius:
            raise BadRequestError(
                f"geocast radius must be in (0, {self.max_radius:g}] m"
            )
        if ttl_s <= 0:
            raise BadRequestError("geocast ttl must be positive")
        if len(self._messages) >= self.max_messages:
            self.sweep(now_s)  # a full board is often mostly stale
            if len(self._messages) >= self.max_messages:
                raise GeocastBoardFullError(
                    f"board at capacity ({self.max_messages} live geocasts)"
                )
        message = GeocastMessage(
            geocast_id=self._next_id,
            x=x,
            y=y,
            radius=radius,
            payload=payload,
            posted_s=now_s,
            ttl_s=ttl_s,
        )
        self._next_id += 1
        self._messages[message.geocast_id] = message
        for cell in self._covered_cells(message):
            self._cells.setdefault(cell, []).append(message.geocast_id)
        _M_PUBLISHED.inc()
        return message.geocast_id

    def poll(
        self, x: float, y: float, now_s: float, limit: int = 50
    ) -> list[GeocastMessage]:
        """Live geocasts whose disc covers ``(x, y)``, oldest first.

        Expired entries found in the touched cell are pruned in
        passing, so hot cells stay tight without a global sweep.
        """
        cell = self._cells.get(self._cell(x, y))
        if not cell:
            return []
        hits: list[GeocastMessage] = []
        stale: list[int] = []
        for geocast_id in cell:
            message = self._messages.get(geocast_id)
            if message is None or message.expired(now_s):
                stale.append(geocast_id)
                if message is not None:
                    self._drop(message)
                continue
            if message.covers(x, y):
                hits.append(message)
        if stale:
            stale_set = set(stale)
            cell[:] = [g for g in cell if g not in stale_set]
        hits.sort(key=lambda m: m.geocast_id)
        _M_POLL_HITS.inc(len(hits[:limit]))
        return hits[:limit]

    def _drop(self, message: GeocastMessage) -> None:
        self._messages.pop(message.geocast_id, None)
        _M_EXPIRED.inc()

    def sweep(self, now_s: float) -> int:
        """Drop every expired message (and rebuild the cell index)."""
        doomed = [m for m in self._messages.values() if m.expired(now_s)]
        if not doomed:
            return 0
        for message in doomed:
            self._messages.pop(message.geocast_id, None)
        _M_EXPIRED.inc(len(doomed))
        self._cells.clear()
        for message in self._messages.values():
            for cell in self._covered_cells(message):
                self._cells.setdefault(cell, []).append(message.geocast_id)
        return len(doomed)

    def live_count(self) -> int:
        """Messages currently on the board (stale entries included
        until a poll or sweep prunes them)."""
        return len(self._messages)
