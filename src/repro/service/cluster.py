"""Multi-core service scale-out: N worker processes, one service.

``repro serve --workers N`` runs the :class:`ClusterSupervisor`: a
parent process that binds N ``SO_REUSEPORT`` listening sockets on one
port, forks N OS worker processes (one per core) each running the
existing :class:`~repro.service.app.ServiceApp` event loop, and waits.
The kernel load-balances accepts across the workers; on platforms
without ``SO_REUSEPORT`` the parent accepts itself and hands fds to
workers round-robin over ``socket.send_fds`` channels.

The PR 8 correctness invariant — **one writer per postbox shard** —
survives the fan-out by making shard ownership *worker-affine*: the
same ``blake2b(owner)`` hash that picks a postbox shard also picks the
owner's **home worker** (:func:`home_worker`), and every owner's boxes
live only on that worker's store.  A request that the kernel lands on
the wrong worker takes one hop over the pre-fork ``socketpair`` mesh
(:mod:`repro.service.ipc`) to the home worker and back; the load
generator's owner-hash connection partitioning makes the common case
zero-hop.  Forward-window overflow is a typed 503
(:class:`~repro.service.errors.ForwardOverloadedError`), mirroring the
shard queues.

World state that is not owner-keyed replicates instead of forwarding:
geocast publishes apply locally (ids strided per worker so concurrent
acceptors never collide) and broadcast the replica to every peer;
directory publishes broadcast the original signed record (validation
is deterministic, so every worker stores the same thing); polls and
lookups then stay worker-local — reads scale with cores.

Push wakes cross workers too: a ``/v1/stream`` landing away from the
owner's home registers a ``watch`` with the home worker, whose shard
writer fans delivery wakes back out as ``wake`` frames — push latency
stays O(delivery) wherever the kernel routed the stream.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import hashlib
import json
import multiprocessing
import os
import signal
import socket as socket_module
import threading
from dataclasses import dataclass

from ..city import City, make_city
from ..obs import REGISTRY
from .app import ServiceApp
from .errors import ForwardOverloadedError, error_response
from .geoboard import GeocastBoard, GeocastMessage
from .http import DEFAULT_PUSH_FALLBACK_S, DFNServer, LocalPushGateway
from .ipc import PeerLink

_M_FORWARDED = REGISTRY.counter("service.cluster.forwarded")
_M_LOCAL = REGISTRY.counter("service.cluster.local")
_M_FORWARD_REJECTS = REGISTRY.counter("service.cluster.forward_rejects")
_M_REPLICA_FAILURES = REGISTRY.counter("service.cluster.replica_failures")
_M_REMOTE_WAKES = REGISTRY.counter("service.cluster.remote_wakes")

#: Environment knob: force the fd-passing accept path even where
#: ``SO_REUSEPORT`` exists (exercised by tests and CI).
FORCE_FDPASS_ENV = "REPRO_CLUSTER_FORCE_FDPASS"

#: Owner-keyed endpoints that must execute on the owner's home worker.
_OWNER_PATHS = frozenset(
    {
        "/v1/postbox/send",
        "/v1/postbox/check",
        "/v1/postbox/pushes",
        "/v1/postbox/confirm",
    }
)


def home_worker(owner: str, n_workers: int) -> int:
    """The worker an owner's postboxes live on.

    Deliberately the same digest as
    :meth:`~repro.service.shards.ShardedPostboxStore.shard_index`: one
    hash decides both the shard within a store and the store within
    the cluster, so affinity layers compose instead of fighting.
    """
    digest = hashlib.blake2b(owner.encode(), digest_size=4).digest()
    return int.from_bytes(digest, "big") % n_workers


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a worker needs to build its service world."""

    n_workers: int
    city_name: str = "gridport"
    seed: int = 0
    n_shards: int = 8
    capacity: int = 1024
    queue_limit: int = 4096
    push_poll_interval_s: float = DEFAULT_PUSH_FALLBACK_S


def _geocast_wire(message: GeocastMessage) -> dict:
    return {
        "geocast_id": message.geocast_id,
        "x": message.x,
        "y": message.y,
        "radius": message.radius,
        "payload": base64.b64encode(message.payload).decode("ascii"),
        "posted_s": message.posted_s,
        "ttl_s": message.ttl_s,
    }


def _geocast_from_wire(wire: dict) -> GeocastMessage:
    return GeocastMessage(
        geocast_id=int(wire["geocast_id"]),
        x=float(wire["x"]),
        y=float(wire["y"]),
        radius=float(wire["radius"]),
        payload=base64.b64decode(wire["payload"]),
        posted_s=float(wire["posted_s"]),
        ttl_s=float(wire["ttl_s"]),
    )


class ClusterWorker:
    """One worker's routing brain: local, forward, or replicate.

    Wraps the worker's :class:`ServiceApp` with the owner-affinity
    policy; its :meth:`dispatch` is injected into the worker's
    :class:`~repro.service.http.DFNServer`, and :meth:`handle_frame`
    serves the peer links.
    """

    def __init__(self, app: ServiceApp, index: int, n_workers: int):
        self.app = app
        self.index = index
        self.n_workers = n_workers
        self.links: dict[int, PeerLink] = {}
        self.gateway: ClusterPushGateway | None = None

    def post(self, peer: int, frame: dict) -> None:
        link = self.links.get(peer)
        if link is not None:
            link.post(frame)

    async def forward_request(
        self, peer: int, method: str, path: str, body: dict
    ) -> tuple[int, dict]:
        """One hop to the home worker; raises on window overflow."""
        link = self.links.get(peer)
        if link is None:
            raise ForwardOverloadedError(peer, 0)
        res = await link.request(
            {"t": "req", "method": method, "path": path, "body": body}
        )
        _M_FORWARDED.inc()
        return int(res["status"]), res["payload"]

    async def dispatch(
        self, method: str, path: str, body: bytes | dict | None
    ) -> tuple[int, dict]:
        """The worker's request router (the DFNServer dispatch hook)."""
        if method == "POST" and path in _OWNER_PATHS:
            if isinstance(body, (bytes, bytearray)):
                try:
                    body = json.loads(body) if body else {}
                except (ValueError, UnicodeDecodeError):
                    # Let the app produce its canonical 400.
                    return await self.app.dispatch(method, path, body)
            if isinstance(body, dict):
                owner = body.get("owner")
                if isinstance(owner, str) and owner:
                    home = home_worker(owner, self.n_workers)
                    if home != self.index:
                        try:
                            return await self.forward_request(
                                home, method, path, body
                            )
                        except ForwardOverloadedError as exc:
                            _M_FORWARD_REJECTS.inc()
                            return error_response(exc)
            _M_LOCAL.inc()
            return await self.app.dispatch(method, path, body)
        if method == "POST" and path == "/v1/geocast/publish":
            status, payload = await self.app.dispatch(method, path, body)
            if status == 200:
                message = self.app.board.get(payload["geocast_id"])
                if message is not None:
                    await self._replicate(
                        {"t": "geocast", "message": _geocast_wire(message)}
                    )
            return status, payload
        if method == "POST" and path == "/v1/directory/publish":
            status, payload = await self.app.dispatch(method, path, body)
            if status == 200:
                if isinstance(body, (bytes, bytearray)):
                    body = json.loads(body)
                await self._replicate({"t": "dir", "body": body})
            return status, payload
        return await self.app.dispatch(method, path, body)

    async def _replicate(self, frame: dict) -> None:
        """Broadcast a replica frame to every peer and await the acks.

        Awaiting gives read-your-writes across workers for the replay
        traces; a dead or saturated peer is counted, not fatal — the
        accepting worker already holds the authoritative copy.
        """
        if not self.links:
            return
        results = await asyncio.gather(
            *(link.request(dict(frame)) for link in self.links.values()),
            return_exceptions=True,
        )
        failures = sum(1 for r in results if isinstance(r, Exception))
        if failures:
            _M_REPLICA_FAILURES.inc(failures)

    async def handle_frame(self, frame: dict) -> dict | None:
        """Serve one incoming peer frame (strictly locally: a forwarded
        request is already at its home and must not hop again)."""
        kind = frame.get("t")
        if kind == "req":
            status, payload = await self.app.dispatch(
                frame["method"], frame["path"], frame["body"]
            )
            return {"status": status, "payload": payload}
        if kind == "watch":
            assert self.gateway is not None
            self.gateway.add_remote_watch(frame["owner"], int(frame["peer"]))
            return {}
        if kind == "unwatch":
            assert self.gateway is not None
            self.gateway.drop_remote_watch(frame["owner"], int(frame["peer"]))
            return None
        if kind == "wake":
            assert self.gateway is not None
            _M_REMOTE_WAKES.inc()
            self.gateway.wake_local(frame["owner"])
            return None
        if kind == "geocast":
            self.app.board.apply(_geocast_from_wire(frame["message"]))
            return {}
        if kind == "dir":
            await self.app.dispatch("POST", "/v1/directory/publish", frame["body"])
            return {}
        return {"error": "unknown_frame"}


class ClusterPushGateway(LocalPushGateway):
    """Cross-worker push plumbing behind the stream handler.

    Same surface as :class:`LocalPushGateway`; the difference is what
    happens when the stream's owner is homed elsewhere: take/confirm
    hop to the home worker over the link, and a ``watch`` registration
    makes the home worker's delivery hook send ``wake`` frames back.
    """

    def __init__(self, app: ServiceApp, worker: ClusterWorker):
        super().__init__(app)
        self.worker = worker
        # Home-worker side: owner → peers that have live streams there.
        self._remote_watchers: dict[str, set[int]] = {}
        # Stream side: owner → refcount of local streams watching a
        # remote home (the watch frame is sent once per owner).
        self._watch_refs: dict[str, int] = {}

    def _home(self, owner: str) -> int:
        return home_worker(owner, self.worker.n_workers)

    # -- home-worker side ----------------------------------------------
    def wake(self, owner: str) -> None:
        """Delivery hook: wake local streams, then remote watchers."""
        super().wake(owner)
        watchers = self._remote_watchers.get(owner)
        if watchers:
            for peer in watchers:
                self.worker.post(peer, {"t": "wake", "owner": owner})

    def wake_local(self, owner: str) -> None:
        """An incoming ``wake`` frame: local events only, no re-fanout."""
        super().wake(owner)

    def add_remote_watch(self, owner: str, peer: int) -> None:
        self._remote_watchers.setdefault(owner, set()).add(peer)

    def drop_remote_watch(self, owner: str, peer: int) -> None:
        watchers = self._remote_watchers.get(owner)
        if watchers is not None:
            watchers.discard(peer)
            if not watchers:
                del self._remote_watchers[owner]

    # -- stream side ----------------------------------------------------
    async def register(self, owner: str) -> asyncio.Event:
        home = self._home(owner)
        if home != self.worker.index:
            refs = self._watch_refs.get(owner, 0)
            self._watch_refs[owner] = refs + 1
            if refs == 0:
                # Ack'd before the stream's first take_pushes, so a
                # delivery can never slip between them unwatched; if
                # the link is saturated the stream degrades to the
                # safety-net timeout instead of failing.
                with contextlib.suppress(ForwardOverloadedError):
                    await self.worker.links[home].request(
                        {"t": "watch", "owner": owner, "peer": self.worker.index}
                    )
        return await super().register(owner)

    async def unregister(self, owner: str, event: asyncio.Event) -> None:
        await super().unregister(owner, event)
        home = self._home(owner)
        if home != self.worker.index:
            refs = self._watch_refs.get(owner, 0) - 1
            if refs > 0:
                self._watch_refs[owner] = refs
            else:
                self._watch_refs.pop(owner, None)
                self.worker.post(
                    home,
                    {"t": "unwatch", "owner": owner, "peer": self.worker.index},
                )

    async def take_pushes(self, owner: str) -> list[dict]:
        home = self._home(owner)
        if home == self.worker.index:
            return await super().take_pushes(owner)
        try:
            status, payload = await self.worker.forward_request(
                home, "POST", "/v1/postbox/pushes", {"owner": owner}
            )
        except ForwardOverloadedError:
            return []  # degrade to the safety-net retry, don't kill the stream
        if status != 200:
            return []
        return list(payload.get("pushes", ()))

    async def confirm(self, owner: str, msg_id: int) -> bool:
        home = self._home(owner)
        if home == self.worker.index:
            return await super().confirm(owner, msg_id)
        try:
            status, payload = await self.worker.forward_request(
                home,
                "POST",
                "/v1/postbox/confirm",
                {"owner": owner, "msg_id": msg_id},
            )
        except ForwardOverloadedError:
            return False
        return status == 200 and bool(payload.get("confirmed"))


# ---------------------------------------------------------------------------
# worker process


def _close_all(socks) -> None:
    for sock in socks:
        with contextlib.suppress(OSError):
            sock.close()


def _worker_entry(
    index: int,
    config: ClusterConfig,
    city: City,
    listen_socks: list[socket_module.socket] | None,
    fd_child_ends: list[socket_module.socket] | None,
    fd_parent_ends: list[socket_module.socket] | None,
    parent_listener: socket_module.socket | None,
    pairs: dict[int, dict[int, socket_module.socket]],
) -> None:
    """Child-process entry: shed inherited fds, run one worker loop."""
    # Fork inherits every socket; keep only this worker's ends so peer
    # EOFs and the parent's listener behave.
    keep: set[int] = set()
    my_listener = None
    if listen_socks is not None:
        my_listener = listen_socks[index]
        keep.add(my_listener.fileno())
        _close_all(s for s in listen_socks if s.fileno() not in keep)
    my_fd_chan = None
    if fd_child_ends is not None:
        my_fd_chan = fd_child_ends[index]
        keep.add(my_fd_chan.fileno())
        _close_all(s for s in fd_child_ends if s.fileno() not in keep)
    if fd_parent_ends is not None:
        _close_all(fd_parent_ends)
    if parent_listener is not None:
        with contextlib.suppress(OSError):
            parent_listener.close()
    my_pairs = pairs[index]
    for other, mapping in pairs.items():
        if other != index:
            _close_all(mapping.values())
    asyncio.run(
        _worker_async(index, config, city, my_listener, my_fd_chan, my_pairs)
    )


async def _worker_async(
    index: int,
    config: ClusterConfig,
    city: City,
    listener: socket_module.socket | None,
    fd_chan: socket_module.socket | None,
    my_pairs: dict[int, socket_module.socket],
) -> None:
    app = ServiceApp(
        city=city,
        n_shards=config.n_shards,
        capacity=config.capacity,
        queue_limit=config.queue_limit,
        board=GeocastBoard(id_start=index + 1, id_stride=config.n_workers),
    )
    app.worker_index = index
    app.n_workers = config.n_workers
    worker = ClusterWorker(app, index, config.n_workers)
    for peer, sock in my_pairs.items():
        link = PeerLink(peer, sock, worker.handle_frame)
        await link.start()
        worker.links[peer] = link
    gateway = ClusterPushGateway(app, worker)
    worker.gateway = gateway
    server = DFNServer(
        app,
        push_poll_interval_s=config.push_poll_interval_s,
        sock=listener,
        dispatch=worker.dispatch,
        gateway=gateway,
        accept_connections=listener is not None,
    )
    await server.start()

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[int] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError, RuntimeError):
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)

    if fd_chan is not None:
        fd_chan.setblocking(False)

        def on_handoff() -> None:
            while True:
                try:
                    msg, fds, _, _ = socket_module.recv_fds(fd_chan, 16, 8)
                except (BlockingIOError, InterruptedError):
                    return
                except OSError:
                    loop.remove_reader(fd_chan.fileno())
                    return
                if not msg and not fds:
                    loop.remove_reader(fd_chan.fileno())
                    return
                for fd in fds:
                    conn = socket_module.socket(fileno=fd)
                    loop.create_task(server.adopt_connection(conn))

        loop.add_reader(fd_chan.fileno(), on_handoff)

    try:
        await stop.wait()
    finally:
        if fd_chan is not None:
            with contextlib.suppress(Exception):
                loop.remove_reader(fd_chan.fileno())
            with contextlib.suppress(OSError):
                fd_chan.close()
        await server.close()
        for link in worker.links.values():
            await link.close()
        # Handlers come off only now: a repeated SIGTERM during the
        # graceful drain above must hit the idempotent ``stop.set``,
        # not the default disposition (which would kill the worker
        # mid-flush and turn a clean drain into exit -15).  Ignoring
        # rather than restoring the default keeps a last-instant
        # signal from undoing the clean exit.
        for signum in installed:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(signum)
            with contextlib.suppress(Exception):
                signal.signal(signum, signal.SIG_IGN)


# ---------------------------------------------------------------------------
# the supervisor (parent process)


def reuseport_available() -> bool:
    return hasattr(socket_module, "SO_REUSEPORT")


class ClusterSupervisor:
    """Bind, fork, supervise: the parent side of ``serve --workers N``.

    Synchronous by design — the parent does no request work.  Usage::

        sup = ClusterSupervisor(ClusterConfig(n_workers=4), port=0)
        sup.start()            # sockets bound, workers forked
        ... traffic against sup.port ...
        sup.stop()             # SIGTERM to workers → graceful drains
        exit_code = sup.wait()
    """

    def __init__(
        self,
        config: ClusterConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        force_fdpass: bool | None = None,
    ):
        if config.n_workers < 2:
            raise ValueError(
                "the cluster needs >= 2 workers; run the plain server for 1"
            )
        if not hasattr(os, "fork"):
            raise RuntimeError("cluster mode needs a fork-capable platform")
        self.config = config
        self.host = host
        self.requested_port = port
        if force_fdpass is None:
            force_fdpass = os.environ.get(FORCE_FDPASS_ENV, "") not in ("", "0")
        self.fdpass = force_fdpass or not reuseport_available()
        self._listen_socks: list[socket_module.socket] | None = None
        self._parent_listener: socket_module.socket | None = None
        self._fd_parent_ends: list[socket_module.socket] | None = None
        self._accept_thread: threading.Thread | None = None
        self._processes: list[multiprocessing.process.BaseProcess] = []
        self._port: int | None = None
        self._stopping = False

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("supervisor is not started")
        return self._port

    def _bind(self, reuseport: bool) -> socket_module.socket:
        sock = socket_module.socket(
            socket_module.AF_INET, socket_module.SOCK_STREAM
        )
        sock.setsockopt(
            socket_module.SOL_SOCKET, socket_module.SO_REUSEADDR, 1
        )
        if reuseport:
            sock.setsockopt(
                socket_module.SOL_SOCKET, socket_module.SO_REUSEPORT, 1
            )
        sock.bind((self.host, self._port or self.requested_port))
        sock.listen(512)
        if self._port is None:
            self._port = sock.getsockname()[1]
        return sock

    def start(self) -> None:
        """Bind the port, build the link mesh, fork the workers."""
        n = self.config.n_workers
        listen_socks: list[socket_module.socket] | None = None
        fd_child_ends: list[socket_module.socket] | None = None
        if self.fdpass:
            self._parent_listener = self._bind(reuseport=False)
            fd_child_ends = []
            self._fd_parent_ends = []
            for _ in range(n):
                parent_end, child_end = socket_module.socketpair()
                self._fd_parent_ends.append(parent_end)
                fd_child_ends.append(child_end)
        else:
            listen_socks = [self._bind(reuseport=True) for _ in range(n)]
            self._listen_socks = listen_socks
        pairs: dict[int, dict[int, socket_module.socket]] = {
            i: {} for i in range(n)
        }
        for i in range(n):
            for j in range(i + 1, n):
                end_i, end_j = socket_module.socketpair()
                pairs[i][j] = end_i
                pairs[j][i] = end_j
        city = make_city(self.config.city_name, seed=self.config.seed)

        ctx = multiprocessing.get_context("fork")
        for index in range(n):
            process = ctx.Process(
                target=_worker_entry,
                args=(
                    index,
                    self.config,
                    city,
                    listen_socks,
                    fd_child_ends,
                    self._fd_parent_ends,
                    self._parent_listener,
                    pairs,
                ),
                name=f"dfn-worker-{index}",
                daemon=True,  # parent death must never orphan workers
            )
            process.start()
            self._processes.append(process)

        # The children hold their inherited copies; drop the parent's.
        for mapping in pairs.values():
            _close_all(mapping.values())
        if listen_socks is not None:
            _close_all(listen_socks)
            self._listen_socks = None
        if fd_child_ends is not None:
            _close_all(fd_child_ends)
        if self.fdpass:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="dfn-acceptor", daemon=True
            )
            self._accept_thread.start()

    def _accept_loop(self) -> None:
        """fd-passing mode: parent accepts, workers serve (round-robin)."""
        assert self._parent_listener is not None
        assert self._fd_parent_ends is not None
        turn = 0
        while True:
            try:
                conn, _ = self._parent_listener.accept()
            except OSError:
                return  # listener closed: shutting down
            chan = self._fd_parent_ends[turn % len(self._fd_parent_ends)]
            turn += 1
            try:
                socket_module.send_fds(chan, [b"f"], [conn.fileno()])
            except OSError:
                pass  # worker died; the client sees a reset and retries
            conn.close()

    def stop(self, sig: int = signal.SIGTERM) -> None:
        """Begin shutdown: stop accepting, signal every worker."""
        self._stopping = True
        if self._parent_listener is not None:
            with contextlib.suppress(OSError):
                self._parent_listener.close()
        for process in self._processes:
            if process.pid is not None and process.is_alive():
                with contextlib.suppress(ProcessLookupError, OSError):
                    os.kill(process.pid, sig)

    def wait(self, timeout: float | None = None) -> int:
        """Join the workers; the cluster's exit code is the worst one."""
        worst = 0
        for process in self._processes:
            process.join(timeout)
            if process.is_alive():
                process.terminate()
                process.join(5.0)
                worst = max(worst, 1)
            else:
                worst = max(worst, abs(process.exitcode or 0))
        if self._accept_thread is not None:
            self._accept_thread.join(5.0)
            self._accept_thread = None
        if self._fd_parent_ends is not None:
            _close_all(self._fd_parent_ends)
            self._fd_parent_ends = None
        return worst

    def serve(self) -> int:
        """CLI mode: forward SIGINT/SIGTERM to the workers, then join."""
        def relay(signum, frame) -> None:  # noqa: ARG001 (signal ABI)
            self.stop(signal.SIGTERM)

        previous = {
            signum: signal.signal(signum, relay)
            for signum in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            return self.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
