"""Minimal asyncio clients for the DFN service.

``ServiceClient`` is a single keep-alive HTTP/1.1 connection with a
``request()`` coroutine — one in-flight request at a time, which is
exactly the closed-loop behaviour the load generator wants (a virtual
phone does not pipeline).  ``PushStreamClient`` attaches to the
``/v1/stream`` NDJSON channel and confirms pushes as it reads them.

Both reconnect lazily: a dropped connection surfaces on the next call
and is retried once on a fresh socket before the error propagates.
"""

from __future__ import annotations

import asyncio
import json


class ServiceClient:
    """One keep-alive connection to a :class:`~repro.service.DFNServer`.

    Args:
        host / port: the service address.
        prefer_worker: in cluster mode, redial (bounded attempts) until
            the kernel's ``SO_REUSEPORT`` pick lands on this worker —
            the load generator aligns each connection with its owners'
            home worker so the common case is zero-hop.
        connect_attempts: redial budget for the affinity search; the
            last connection is kept even on a miss (affinity is an
            optimisation, never a correctness requirement).

    A dropped connection surfaces on the next call; **idempotent**
    requests (``request(..., idempotent=True)``) are retried once on a
    fresh socket and counted in :attr:`retries`, so the load report can
    tell keep-alive races from real errors.  Non-idempotent requests
    (send/confirm/publish) propagate the failure — retrying those could
    double-apply.
    """

    def __init__(
        self,
        host: str,
        port: int,
        prefer_worker: int | None = None,
        connect_attempts: int = 8,
    ):
        self.host = host
        self.port = port
        self.prefer_worker = prefer_worker
        self.connect_attempts = max(1, connect_attempts)
        self.retries = 0
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        for attempt in range(self.connect_attempts):
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
            if self.prefer_worker is None:
                return
            _, hello = await self._round_trip("GET", "/v1/healthz", None)
            if hello.get("worker", self.prefer_worker) == self.prefer_worker:
                return
            if attempt + 1 < self.connect_attempts:
                await self.close()

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        idempotent: bool = False,
    ) -> tuple[int, dict]:
        """One request/response round trip.

        Idempotent calls are retried once on a fresh socket after a
        connection-level failure (counted in :attr:`retries`); others
        propagate it.
        """
        if self._writer is None:
            await self.connect()
        try:
            return await self._round_trip(method, path, payload)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            await self.close()
            if not idempotent:
                raise
            self.retries += 1
            await self.connect()
            return await self._round_trip(method, path, payload)

    async def _round_trip(
        self, method: str, path: str, payload: dict | None
    ) -> tuple[int, dict]:
        assert self._reader is not None and self._writer is not None
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode() + body)
        await self._writer.drain()
        header_block = await self._reader.readuntil(b"\r\n\r\n")
        lines = header_block.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        content_length = 0
        for line in lines[1:]:
            key, _, value = line.partition(":")
            if key.strip().lower() == "content-length":
                content_length = int(value.strip())
        raw = await self._reader.readexactly(content_length)
        return status, json.loads(raw) if raw else {}


class PushStreamClient:
    """A device's push channel: read pushes, confirm each one.

    Usage::

        stream = PushStreamClient(host, port, owner="bob")
        await stream.connect()
        push = await stream.next_push()      # {"msg_id": …, "payload": …}
        ok = await stream.confirm(push["msg_id"])
    """

    def __init__(self, host: str, port: int, owner: str):
        self.host = host
        self.port = port
        self.owner = owner
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._writer.write(
            f"GET /v1/stream?owner={self.owner} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n\r\n".encode()
        )
        await self._writer.drain()
        header_block = await self._reader.readuntil(b"\r\n\r\n")
        status = int(header_block.split(b" ", 2)[1])
        if status != 200:
            raise ConnectionError(f"stream rejected with status {status}")
        hello = json.loads(await self._reader.readline())
        if hello.get("type") != "hello":
            raise ConnectionError(f"unexpected stream greeting: {hello}")

    async def _next_event(self) -> dict:
        assert self._reader is not None
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("push stream closed by server")
        return json.loads(line)

    async def next_push(self, timeout_s: float | None = None) -> dict:
        """Block until the next pushed message arrives."""
        while True:
            event = await asyncio.wait_for(self._next_event(), timeout=timeout_s)
            if event.get("type") == "push":
                return event

    async def confirm(self, msg_id: int) -> bool:
        """Confirm one push; True when the store accepted it (exactly
        once — a second confirm of the same id reports False)."""
        assert self._writer is not None
        self._writer.write(json.dumps({"confirm": msg_id}).encode() + b"\n")
        await self._writer.drain()
        while True:
            event = await self._next_event()
            if event.get("type") == "confirmed" and event.get("msg_id") == msg_id:
                return bool(event.get("ok"))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None
