"""Minimal asyncio clients for the DFN service.

``ServiceClient`` is a single keep-alive HTTP/1.1 connection with a
``request()`` coroutine — one in-flight request at a time, which is
exactly the closed-loop behaviour the load generator wants (a virtual
phone does not pipeline).  ``PushStreamClient`` attaches to the
``/v1/stream`` NDJSON channel and confirms pushes as it reads them.

Both reconnect lazily: a dropped connection surfaces on the next call
and is retried once on a fresh socket before the error propagates.
"""

from __future__ import annotations

import asyncio
import json


class ServiceClient:
    """One keep-alive connection to a :class:`~repro.service.DFNServer`."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        """One request/response round trip; reconnects once if the
        server closed the idle connection under us."""
        if self._writer is None:
            await self.connect()
        try:
            return await self._round_trip(method, path, payload)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            await self.close()
            await self.connect()
            return await self._round_trip(method, path, payload)

    async def _round_trip(
        self, method: str, path: str, payload: dict | None
    ) -> tuple[int, dict]:
        assert self._reader is not None and self._writer is not None
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode() + body)
        await self._writer.drain()
        header_block = await self._reader.readuntil(b"\r\n\r\n")
        lines = header_block.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        content_length = 0
        for line in lines[1:]:
            key, _, value = line.partition(":")
            if key.strip().lower() == "content-length":
                content_length = int(value.strip())
        raw = await self._reader.readexactly(content_length)
        return status, json.loads(raw) if raw else {}


class PushStreamClient:
    """A device's push channel: read pushes, confirm each one.

    Usage::

        stream = PushStreamClient(host, port, owner="bob")
        await stream.connect()
        push = await stream.next_push()      # {"msg_id": …, "payload": …}
        ok = await stream.confirm(push["msg_id"])
    """

    def __init__(self, host: str, port: int, owner: str):
        self.host = host
        self.port = port
        self.owner = owner
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._writer.write(
            f"GET /v1/stream?owner={self.owner} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n\r\n".encode()
        )
        await self._writer.drain()
        header_block = await self._reader.readuntil(b"\r\n\r\n")
        status = int(header_block.split(b" ", 2)[1])
        if status != 200:
            raise ConnectionError(f"stream rejected with status {status}")
        hello = json.loads(await self._reader.readline())
        if hello.get("type") != "hello":
            raise ConnectionError(f"unexpected stream greeting: {hello}")

    async def _next_event(self) -> dict:
        assert self._reader is not None
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("push stream closed by server")
        return json.loads(line)

    async def next_push(self, timeout_s: float | None = None) -> dict:
        """Block until the next pushed message arrives."""
        while True:
            event = await asyncio.wait_for(self._next_event(), timeout=timeout_s)
            if event.get("type") == "push":
                return event

    async def confirm(self, msg_id: int) -> bool:
        """Confirm one push; True when the store accepted it (exactly
        once — a second confirm of the same id reports False)."""
        assert self._writer is not None
        self._writer.write(json.dumps({"confirm": msg_id}).encode() + b"\n")
        await self._writer.drain()
        while True:
            event = await self._next_event()
            if event.get("type") == "confirmed" and event.get("msg_id") == msg_id:
                return bool(event.get("ok"))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None
