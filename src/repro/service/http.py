"""HTTP/1.1 over asyncio streams, plus the WebSocket-style push stream.

No web framework and no new dependencies: the server speaks just
enough HTTP/1.1 for the service's JSON API — request line, headers,
``Content-Length`` bodies, keep-alive — directly over
``asyncio.start_server`` streams.  Parsing is two ``readuntil``/
``readexactly`` calls per request, which is what lets a single stdlib
event loop sustain thousands of requests per second.

The exception is ``GET /v1/stream``: instead of one response the
connection is upgraded to a long-lived, bidirectional NDJSON stream
(the WebSocket idea without the framing): the server polls the owner's
postbox push records and writes one JSON line per pushed message; the
client writes ``{"confirm": <msg_id>}`` lines back, which drive the
exactly-once :meth:`~repro.service.shards.ShardedPostboxStore.
confirm_push` path.  An unconfirmed push stays pending in the store —
at-least-once always, exactly once when the client answers.

``DFNServer`` owns the listening socket and the connection set, and
shuts down gracefully: stop accepting, let in-flight requests finish
(bounded), cancel stream tasks, then drain the shard queues via
``app.close()``.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

from ..obs import REGISTRY
from .app import ServiceApp, _message_dict

_M_CONNS = REGISTRY.counter("service.http.connections")
_M_REQS = REGISTRY.counter("service.http.requests")
_M_STREAMS = REGISTRY.counter("service.http.streams")
_G_OPEN = REGISTRY.gauge("service.http.open_connections")

#: Maximum header block size we will buffer for one request.
MAX_HEADER_BYTES = 16 * 1024
#: Maximum request body size (sealed payloads are small).
MAX_BODY_BYTES = 1 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response_bytes(status: int, payload: dict, keep_alive: bool) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode()
    reason = _STATUS_TEXT.get(status, "OK")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n\r\n"
    )
    return head.encode() + body


class DFNServer:
    """The always-on DFN service: a ``ServiceApp`` behind TCP."""

    def __init__(
        self,
        app: ServiceApp,
        host: str = "127.0.0.1",
        port: int = 0,
        push_poll_interval_s: float = 0.05,
    ):
        self.app = app
        self.host = host
        self.requested_port = port
        self.push_poll_interval_s = push_poll_interval_s
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._stopped = asyncio.Event()

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Start shard writers and begin accepting connections."""
        await self.app.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.requested_port
        )
        self._stopped.clear()

    async def serve_forever(self) -> None:
        """Block until :meth:`close` is called from another task."""
        await self._stopped.wait()

    async def close(self, drain_timeout_s: float = 5.0) -> None:
        """Graceful shutdown: stop accepting, finish in-flight work,
        cancel what will not finish, then drain the shard queues."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._connections:
            done, pending = await asyncio.wait(
                self._connections, timeout=drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._connections.clear()
        _G_OPEN.set(0)
        await self.app.close()
        self._stopped.set()

    # -- connection handling -------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.create_task(self._handle(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)
        _M_CONNS.inc()
        _G_OPEN.set(len(self._connections))

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header_block = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    BrokenPipeError,
                ):
                    return  # client went away between requests
                except asyncio.LimitOverrunError:
                    writer.write(
                        _response_bytes(
                            400, {"error": "bad_request", "detail": "headers too large"},
                            keep_alive=False,
                        )
                    )
                    return
                if len(header_block) > MAX_HEADER_BYTES:
                    writer.write(
                        _response_bytes(
                            400, {"error": "bad_request", "detail": "headers too large"},
                            keep_alive=False,
                        )
                    )
                    return
                request = self._parse_head(header_block)
                if request is None:
                    writer.write(
                        _response_bytes(
                            400, {"error": "bad_request", "detail": "malformed request"},
                            keep_alive=False,
                        )
                    )
                    return
                method, target, keep_alive, content_length = request
                if content_length > MAX_BODY_BYTES:
                    writer.write(
                        _response_bytes(
                            400, {"error": "bad_request", "detail": "body too large"},
                            keep_alive=False,
                        )
                    )
                    return
                body = (
                    await reader.readexactly(content_length)
                    if content_length
                    else b""
                )
                url = urlsplit(target)
                _M_REQS.inc()
                if method == "GET" and url.path == "/v1/stream":
                    await self._handle_stream(url.query, reader, writer)
                    return  # the stream consumes the connection
                status, payload = await self.app.dispatch(method, url.path, body)
                writer.write(_response_bytes(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            return
        except asyncio.CancelledError:
            raise
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            _G_OPEN.set(max(0, len(self._connections) - 1))

    @staticmethod
    def _parse_head(
        header_block: bytes,
    ) -> tuple[str, str, bool, int] | None:
        """Parse request line + headers → (method, target, keep_alive,
        content_length); None on malformed input."""
        try:
            lines = header_block.decode("latin-1").split("\r\n")
            method, target, version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            return None
        keep_alive = version.strip().upper() != "HTTP/1.0"
        content_length = 0
        for line in lines[1:]:
            if not line:
                continue
            key, sep, value = line.partition(":")
            if not sep:
                return None
            key = key.strip().lower()
            if key == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return None
                if content_length < 0:
                    return None
            elif key == "connection":
                token = value.strip().lower()
                if token == "close":
                    keep_alive = False
                elif token == "keep-alive":
                    keep_alive = True
        return method.upper(), target, keep_alive, content_length

    # -- the push stream ------------------------------------------------
    async def _handle_stream(
        self, query: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """``GET /v1/stream?owner=NAME``: long-lived NDJSON push channel.

        Server → client: ``{"type": "push", "msg_id": …, "payload": …}``
        per pushed message (urgent deliveries the owner opted into).
        Client → server: ``{"confirm": <msg_id>}`` lines; each drives
        the store's exactly-once confirm path and is acknowledged with
        ``{"type": "confirmed", "msg_id": …, "ok": bool}``.
        """
        owner = None
        for value in parse_qs(query).get("owner", []):
            owner = value
        if not owner:
            writer.write(
                _response_bytes(
                    400, {"error": "bad_request", "detail": "stream needs ?owner="},
                    keep_alive=False,
                )
            )
            return
        _M_STREAMS.inc()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        writer.write(
            json.dumps({"type": "hello", "owner": owner}).encode() + b"\n"
        )
        await writer.drain()
        stop = asyncio.Event()

        async def pusher() -> None:
            while not stop.is_set():
                pushes = await self.app.store.take_pushes(owner)
                for message in pushes:
                    event = {"type": "push", **_message_dict(message)}
                    writer.write(json.dumps(event).encode() + b"\n")
                if pushes:
                    await writer.drain()
                try:
                    await asyncio.wait_for(
                        stop.wait(), timeout=self.push_poll_interval_s
                    )
                except asyncio.TimeoutError:
                    pass

        async def confirmer() -> None:
            while True:
                line = await reader.readline()
                if not line:
                    break  # EOF: client hung up
                try:
                    event = json.loads(line)
                    msg_id = event["confirm"]
                except (ValueError, KeyError, TypeError):
                    writer.write(
                        json.dumps({"type": "error", "error": "bad_confirm"}).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    continue
                ok = await self.app.store.confirm_push(owner, int(msg_id))
                writer.write(
                    json.dumps(
                        {"type": "confirmed", "msg_id": int(msg_id), "ok": ok}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()

        push_task = asyncio.create_task(pusher())
        try:
            await confirmer()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            stop.set()
            await push_task
