"""HTTP/1.1 over asyncio streams, plus the WebSocket-style push stream.

No web framework and no new dependencies: the server speaks just
enough HTTP/1.1 for the service's JSON API — request line, headers,
``Content-Length`` bodies, keep-alive — directly over
``asyncio.start_server`` streams.  Parsing is two ``readuntil``/
``readexactly`` calls per request, which is what lets a single stdlib
event loop sustain thousands of requests per second.

The exception is ``GET /v1/stream``: instead of one response the
connection is upgraded to a long-lived, bidirectional NDJSON stream
(the WebSocket idea without the framing): the server writes one JSON
line per pushed message; the client writes ``{"confirm": <msg_id>}``
lines back, which drive the exactly-once :meth:`~repro.service.shards.
ShardedPostboxStore.confirm_push` path.  An unconfirmed push stays
pending in the store — at-least-once always, exactly once when the
client answers.

Pushes are **wake-on-delivery**: each stream registers a per-owner
``asyncio.Event`` with the :class:`LocalPushGateway` (or the cluster
gateway, which also watches the owner's home worker over the
inter-worker links), and the shard writer sets the event the moment a
delivery appends a push record — push latency is O(delivery), not
O(poll interval).  The old poll remains only as a safety-net timeout.

``DFNServer`` owns the listening socket and the connection set, and
shuts down gracefully: stop accepting, let in-flight requests finish
(idle keep-alive connections are closed immediately), flush every open
push stream and end it with a ``bye`` line, then drain the shard
queues via ``app.close()``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket as socket_module
from typing import Awaitable, Callable

from ..obs import REGISTRY
from .app import ServiceApp, _message_dict

_M_CONNS = REGISTRY.counter("service.http.connections")
_M_REQS = REGISTRY.counter("service.http.requests")
_M_STREAMS = REGISTRY.counter("service.http.streams")
_M_WAKES = REGISTRY.counter("service.http.stream_wakes")
_G_OPEN = REGISTRY.gauge("service.http.open_connections")

#: Maximum header block size we will buffer for one request.
MAX_HEADER_BYTES = 16 * 1024
#: Maximum request body size (sealed payloads are small).
MAX_BODY_BYTES = 1 * 1024 * 1024

#: Safety-net re-check interval for push streams.  Wake-on-delivery
#: makes push latency O(delivery); this only bounds the damage if a
#: wake is ever lost, so it can be far above the old 50 ms poll floor.
DEFAULT_PUSH_FALLBACK_S = 0.5

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

Dispatch = Callable[[str, str, bytes], Awaitable[tuple[int, dict]]]


def _response_bytes(status: int, payload: dict, keep_alive: bool) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode()
    reason = _STATUS_TEXT.get(status, "OK")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n\r\n"
    )
    return head.encode() + body


class LocalPushGateway:
    """Single-process push plumbing: per-owner wake events over the store.

    The gateway is the seam between the push stream and the postbox
    store.  In one process it wires the store's ``on_push`` hook to a
    registry of per-owner :class:`asyncio.Event`\\ s; the cluster swaps
    in a gateway that additionally forwards take/confirm to the owner's
    home worker and relays wakes over the inter-worker links — the
    stream handler cannot tell the difference.
    """

    def __init__(self, app: ServiceApp):
        self.app = app
        self._waiters: dict[str, set[asyncio.Event]] = {}
        app.store.on_push = self.wake

    def wake(self, owner: str) -> None:
        """Wake every stream waiting on this owner (delivery-time hook)."""
        waiters = self._waiters.get(owner)
        if waiters:
            _M_WAKES.inc(len(waiters))
            for event in waiters:
                event.set()

    def wake_all(self) -> None:
        """Wake every stream (shutdown: flush-and-bye without waiting
        out the safety-net timeout)."""
        for waiters in self._waiters.values():
            for event in waiters:
                event.set()

    async def register(self, owner: str) -> asyncio.Event:
        """Create and register this stream's wake event."""
        event = asyncio.Event()
        self._waiters.setdefault(owner, set()).add(event)
        return event

    async def unregister(self, owner: str, event: asyncio.Event) -> None:
        waiters = self._waiters.get(owner)
        if waiters is not None:
            waiters.discard(event)
            if not waiters:
                del self._waiters[owner]

    async def take_pushes(self, owner: str) -> list[dict]:
        """Drain the owner's push records, rendered as wire dicts."""
        return [
            _message_dict(m) for m in await self.app.store.take_pushes(owner)
        ]

    async def confirm(self, owner: str, msg_id: int) -> bool:
        return await self.app.store.confirm_push(owner, msg_id)


class DFNServer:
    """The always-on DFN service: a ``ServiceApp`` behind TCP.

    ``dispatch``, ``gateway``, and ``sock`` are injection points for
    the multi-worker cluster: a worker passes its owner-affine routing
    dispatch, its cross-worker push gateway, and its pre-bound
    ``SO_REUSEPORT`` listening socket; single-process callers leave all
    three at their defaults.
    """

    def __init__(
        self,
        app: ServiceApp,
        host: str = "127.0.0.1",
        port: int = 0,
        push_poll_interval_s: float = DEFAULT_PUSH_FALLBACK_S,
        sock: socket_module.socket | None = None,
        dispatch: Dispatch | None = None,
        gateway: LocalPushGateway | None = None,
        accept_connections: bool = True,
    ):
        self.app = app
        self.host = host
        self.requested_port = port
        self.push_poll_interval_s = push_poll_interval_s
        self._sock = sock
        self._accept_connections = accept_connections
        self._dispatch: Dispatch = dispatch if dispatch is not None else app.dispatch
        self.gateway = gateway if gateway is not None else LocalPushGateway(app)
        self._server: asyncio.base_events.Server | None = None
        self._connections: dict[asyncio.Task, dict] = {}
        self._draining = asyncio.Event()
        self._stopped = asyncio.Event()

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Start shard writers and begin accepting connections.

        With ``accept_connections=False`` no listener is created — the
        fd-passing cluster mode feeds connections in through
        :meth:`adopt_connection` instead.
        """
        await self.app.start()
        if not self._accept_connections:
            self._server = None
        elif self._sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=self._sock
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.host, self.requested_port
            )
        self._draining.clear()
        self._stopped.clear()

    async def serve_forever(self) -> None:
        """Block until :meth:`close` is called from another task."""
        await self._stopped.wait()

    async def close(self, drain_timeout_s: float = 5.0) -> None:
        """Graceful shutdown.

        Stop accepting; close idle keep-alive connections immediately;
        let in-flight requests finish and push streams flush-and-bye
        (both watch the draining flag); cancel whatever exceeds the
        timeout; then drain the shard queues.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._draining.set()
        wake_all = getattr(self.gateway, "wake_all", None)
        if wake_all is not None:
            wake_all()
        for task, state in list(self._connections.items()):
            if not state["busy"] and not state["stream"]:
                task.cancel()
        if self._connections:
            _, pending = await asyncio.wait(
                set(self._connections), timeout=drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._connections.clear()
        _G_OPEN.set(0)
        await self.app.close()
        self._stopped.set()

    # -- connection handling -------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        state = {"busy": False, "stream": False}
        task = asyncio.create_task(self._handle(reader, writer, state))
        self._connections[task] = state
        task.add_done_callback(lambda t: self._connections.pop(t, None))
        _M_CONNS.inc()
        _G_OPEN.set(len(self._connections))

    async def adopt_connection(self, conn: socket_module.socket) -> None:
        """Serve an already-accepted connection (the ``send_fds``
        fallback path: the cluster parent accepts and hands the fd to a
        worker when the platform lacks ``SO_REUSEPORT``)."""
        conn.setblocking(False)
        reader, writer = await asyncio.open_connection(sock=conn)
        self._on_connection(reader, writer)

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        state: dict,
    ) -> None:
        try:
            while True:
                state["busy"] = False
                if self._draining.is_set():
                    return
                try:
                    header_block = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    BrokenPipeError,
                ):
                    return  # client went away between requests
                except asyncio.LimitOverrunError:
                    writer.write(
                        _response_bytes(
                            400, {"error": "bad_request", "detail": "headers too large"},
                            keep_alive=False,
                        )
                    )
                    return
                state["busy"] = True
                if len(header_block) > MAX_HEADER_BYTES:
                    writer.write(
                        _response_bytes(
                            400, {"error": "bad_request", "detail": "headers too large"},
                            keep_alive=False,
                        )
                    )
                    return
                request = self._parse_head(header_block)
                if request is None:
                    writer.write(
                        _response_bytes(
                            400, {"error": "bad_request", "detail": "malformed request"},
                            keep_alive=False,
                        )
                    )
                    return
                method, target, keep_alive, content_length = request
                if content_length > MAX_BODY_BYTES:
                    writer.write(
                        _response_bytes(
                            400, {"error": "bad_request", "detail": "body too large"},
                            keep_alive=False,
                        )
                    )
                    return
                body = (
                    await reader.readexactly(content_length)
                    if content_length
                    else b""
                )
                path, _, query = target.partition("?")
                _M_REQS.inc()
                if method == "GET" and path == "/v1/stream":
                    state["stream"] = True
                    await self._handle_stream(query, reader, writer)
                    return  # the stream consumes the connection
                status, payload = await self._dispatch(method, path, body)
                writer.write(_response_bytes(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            return
        except asyncio.CancelledError:
            raise
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            _G_OPEN.set(max(0, len(self._connections) - 1))

    @staticmethod
    def _parse_head(
        header_block: bytes,
    ) -> tuple[str, str, bool, int] | None:
        """Parse request line + headers → (method, target, keep_alive,
        content_length); None on malformed input."""
        try:
            lines = header_block.decode("latin-1").split("\r\n")
            method, target, version = lines[0].split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            return None
        keep_alive = version.strip().upper() != "HTTP/1.0"
        content_length = 0
        for line in lines[1:]:
            if not line:
                continue
            key, sep, value = line.partition(":")
            if not sep:
                return None
            key = key.strip().lower()
            if key == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return None
                if content_length < 0:
                    return None
            elif key == "connection":
                token = value.strip().lower()
                if token == "close":
                    keep_alive = False
                elif token == "keep-alive":
                    keep_alive = True
        return method.upper(), target, keep_alive, content_length

    # -- the push stream ------------------------------------------------
    async def _handle_stream(
        self, query: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """``GET /v1/stream?owner=NAME``: long-lived NDJSON push channel.

        Server → client: ``{"type": "push", "msg_id": …, "payload": …}``
        per pushed message (urgent deliveries the owner opted into),
        written the moment the delivery lands (wake-on-delivery).
        Client → server: ``{"confirm": <msg_id>}`` lines; each drives
        the store's exactly-once confirm path and is acknowledged with
        ``{"type": "confirmed", "msg_id": …, "ok": bool}``.  On
        graceful shutdown the stream flushes pending pushes, writes
        ``{"type": "bye"}``, and closes cleanly.
        """
        owner = None
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "owner" and value:
                owner = value
        if not owner:
            writer.write(
                _response_bytes(
                    400, {"error": "bad_request", "detail": "stream needs ?owner="},
                    keep_alive=False,
                )
            )
            return
        _M_STREAMS.inc()
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        writer.write(
            json.dumps(
                {"type": "hello", "owner": owner, "worker": self.app.worker_index}
            ).encode()
            + b"\n"
        )
        await writer.drain()
        wake = await self.gateway.register(owner)
        pusher = asyncio.create_task(self._stream_pusher(owner, wake, writer))
        confirmer = asyncio.create_task(
            self._stream_confirmer(owner, reader, writer)
        )
        try:
            # The pusher ends on graceful drain; the confirmer ends when
            # the client hangs up.  Either way the stream is over.
            done, pending = await asyncio.wait(
                {pusher, confirmer}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
            for task in done:
                exc = task.exception()
                if exc is not None and not isinstance(
                    exc, (ConnectionResetError, BrokenPipeError)
                ):
                    raise exc
            if self._draining.is_set():
                with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                    writer.write(json.dumps({"type": "bye"}).encode() + b"\n")
                    await writer.drain()
        finally:
            await self.gateway.unregister(owner, wake)

    async def _stream_pusher(
        self, owner: str, wake: asyncio.Event, writer: asyncio.StreamWriter
    ) -> None:
        """Write push lines as deliveries land; return on drain."""
        while True:
            wake.clear()
            pushes = await self.gateway.take_pushes(owner)
            for push in pushes:
                writer.write(
                    json.dumps({"type": "push", **push}).encode() + b"\n"
                )
            if pushes:
                await writer.drain()
            if self._draining.is_set():
                return
            # Wake-on-delivery: the event is set by the shard writer
            # (or a remote wake frame).  The timeout is only a safety
            # net; any delivery between take_pushes and here re-set the
            # event, so no wake is ever lost.
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    wake.wait(), timeout=self.push_poll_interval_s
                )

    async def _stream_confirmer(
        self, owner: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Apply the client's confirm lines until it hangs up."""
        while True:
            line = await reader.readline()
            if not line:
                return  # EOF: client hung up
            try:
                event = json.loads(line)
                msg_id = event["confirm"]
            except (ValueError, KeyError, TypeError):
                writer.write(
                    json.dumps({"type": "error", "error": "bad_confirm"}).encode()
                    + b"\n"
                )
                await writer.drain()
                continue
            ok = await self.gateway.confirm(owner, int(msg_id))
            writer.write(
                json.dumps(
                    {"type": "confirmed", "msg_id": int(msg_id), "ok": ok}
                ).encode()
                + b"\n"
            )
            await writer.drain()
