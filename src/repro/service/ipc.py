"""Inter-worker frame links: length-prefixed JSON over socketpairs.

The cluster's forwarding plane.  Every pair of workers shares one
pre-fork ``socketpair``; each end is wrapped in a :class:`PeerLink`
that speaks a tiny framed protocol — a 4-byte big-endian length prefix
followed by one JSON object — with request-id correlation so many
forwarded requests can be in flight on one link at once.

Frame shapes (the ``t`` field is the type):

- ``{"t": "req", "rid": n, ...}`` — a request the peer must answer;
  :meth:`PeerLink.request` assigns the ``rid`` and returns the matching
  ``res`` frame's body.  The cluster uses this for forwarded HTTP
  requests, watch/unwatch registrations, and replica applies.
- ``{"t": "res", "rid": n, ...}`` — the answer; never originated by
  callers, only by the link's reader when the handler returns a dict.
- anything without a ``rid`` (e.g. ``{"t": "wake", "owner": …}``) —
  fire-and-forget via :meth:`PeerLink.post`; the handler's return value
  is discarded.

Backpressure is typed, mirroring the shard queues: a link caps its
in-flight request window, and a request past the cap (or to a peer
that died) raises :class:`~repro.service.errors.ForwardOverloadedError`
— HTTP 503 — instead of queueing without bound.
"""

from __future__ import annotations

import asyncio
import json
import socket as socket_module
from typing import Awaitable, Callable

from ..obs import REGISTRY
from .errors import ForwardOverloadedError

_M_SENT = REGISTRY.counter("service.ipc.frames_sent")
_M_RECEIVED = REGISTRY.counter("service.ipc.frames_received")
_M_REJECTS = REGISTRY.counter("service.ipc.window_rejects")

#: Default per-link in-flight request window.
DEFAULT_MAX_IN_FLIGHT = 512

#: Hard cap on one frame's payload (forwarded bodies are bounded by the
#: HTTP layer's body cap, plus small framing overhead).
MAX_FRAME_BYTES = 4 * 1024 * 1024

FrameHandler = Callable[[dict], Awaitable[dict | None]]


def _encode(frame: dict) -> bytes:
    payload = json.dumps(frame, separators=(",", ":")).encode()
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame too large ({len(payload)} bytes)")
    return len(payload).to_bytes(4, "big") + payload


class PeerLink:
    """One worker's end of the framed channel to one peer worker.

    Args:
        peer: the peer worker's index (for error messages and metrics).
        sock: this end of the pre-fork ``socketpair``.
        handler: coroutine invoked for every incoming non-``res`` frame;
            its dict return value is sent back as the ``res`` body for
            frames that carried a ``rid`` (``None`` → no response).
        max_in_flight: request-window cap before typed 503 rejection.
    """

    def __init__(
        self,
        peer: int,
        sock: socket_module.socket,
        handler: FrameHandler,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    ):
        self.peer = peer
        self.max_in_flight = max_in_flight
        self._sock = sock
        self._handler = handler
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_rid = 1
        self._dead = False

    async def start(self) -> None:
        self._sock.setblocking(False)
        self._reader, self._writer = await asyncio.open_connection(sock=self._sock)
        self._reader_task = asyncio.create_task(
            self._read_loop(), name=f"peer-link-{self.peer}"
        )

    async def close(self) -> None:
        """Tear the link down; outstanding requests fail as overload."""
        self._mark_dead()
        if self._reader_task is not None:
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None

    def _mark_dead(self) -> None:
        if self._dead:
            return
        self._dead = True
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    ForwardOverloadedError(self.peer, self.max_in_flight)
                )
        self._pending.clear()

    # -- sending --------------------------------------------------------
    def post(self, frame: dict) -> None:
        """Fire-and-forget (wake frames): buffered, never awaited."""
        if self._dead or self._writer is None:
            return  # peer is gone; wakes degrade to the fallback timeout
        self._writer.write(_encode(frame))
        _M_SENT.inc()

    async def request(self, frame: dict) -> dict:
        """Send a frame and await the peer's ``res`` body.

        Raises:
            ForwardOverloadedError: the in-flight window is full, or
                the peer link is down.
        """
        if self._dead or self._writer is None:
            raise ForwardOverloadedError(self.peer, self.max_in_flight)
        if len(self._pending) >= self.max_in_flight:
            _M_REJECTS.inc()
            raise ForwardOverloadedError(self.peer, self.max_in_flight)
        rid = self._next_rid
        self._next_rid += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            self._writer.write(_encode({**frame, "rid": rid}))
            _M_SENT.inc()
            await self._writer.drain()
            return await future
        finally:
            self._pending.pop(rid, None)

    # -- receiving ------------------------------------------------------
    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                header = await self._reader.readexactly(4)
                length = int.from_bytes(header, "big")
                if length > MAX_FRAME_BYTES:
                    break  # protocol violation: drop the link
                frame = json.loads(await self._reader.readexactly(length))
                _M_RECEIVED.inc()
                if frame.get("t") == "res":
                    future = self._pending.get(frame.get("rid"))
                    if future is not None and not future.done():
                        future.set_result(frame)
                    continue
                # Handle concurrently: a forwarded request must not
                # head-of-line-block wake frames behind it.
                asyncio.create_task(self._serve(frame))
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            ValueError,
        ):
            pass
        finally:
            self._mark_dead()

    async def _serve(self, frame: dict) -> None:
        try:
            result = await self._handler(frame)
        except Exception:
            result = {"error": "peer_handler_failed"}
        rid = frame.get("rid")
        if rid is None or result is None:
            return
        if self._dead or self._writer is None:
            return
        try:
            self._writer.write(_encode({"t": "res", "rid": rid, **result}))
            _M_SENT.inc()
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            self._mark_dead()
