"""Typed service errors: every reject has a status, a code, a reason.

The service layer never drops work silently.  Saturation anywhere in
the pipeline — a full postbox, a shard queue at its depth limit, a full
geocast board — surfaces as a :class:`ServiceError` subclass that the
HTTP layer maps to a structured JSON error response, and that in-process
callers (the load generator, tests) can catch by type.
"""

from __future__ import annotations

from ..postbox import PostboxFullError

__all__ = [
    "PostboxFullError",
    "ServiceError",
    "BadRequestError",
    "NotFoundError",
    "ShardOverloadedError",
    "ForwardOverloadedError",
    "GeocastBoardFullError",
    "error_response",
]


class ServiceError(Exception):
    """Base for every typed service-level reject.

    Attributes:
        status: the HTTP status the error maps to.
        code: a stable machine-readable reason (``"postbox_full"``).
    """

    status = 500
    code = "internal_error"

    def __init__(self, message: str = ""):
        super().__init__(message or self.code)


class BadRequestError(ServiceError):
    """The request body was malformed or missing a required field."""

    status = 400
    code = "bad_request"


class NotFoundError(ServiceError):
    """Unknown endpoint or unknown name."""

    status = 404
    code = "not_found"


class ShardOverloadedError(ServiceError):
    """A shard's single-writer queue is at its depth limit.

    This is the service's explicit backpressure signal: the caller is
    told to back off *now*, instead of the queue growing without bound
    and latency collapsing for everyone.
    """

    status = 503
    code = "shard_overloaded"

    def __init__(self, shard: int, depth_limit: int):
        super().__init__(
            f"shard {shard} queue at depth limit ({depth_limit} pending ops)"
        )
        self.shard = shard
        self.depth_limit = depth_limit


class ForwardOverloadedError(ServiceError):
    """The inter-worker forwarding path is saturated.

    A cluster worker keeps a bounded in-flight window per peer link;
    when a request must hop to its owner's home worker and that window
    is full (or the peer is gone), the worker rejects it with typed
    backpressure instead of queueing without bound — the same contract
    as :class:`ShardOverloadedError`, one layer further out.
    """

    status = 503
    code = "forward_overloaded"

    def __init__(self, peer: int, in_flight_limit: int):
        super().__init__(
            f"forward link to worker {peer} at its in-flight limit "
            f"({in_flight_limit} requests)"
        )
        self.peer = peer
        self.in_flight_limit = in_flight_limit


class GeocastBoardFullError(ServiceError):
    """The geocast board is at its message cap."""

    status = 429
    code = "geocast_board_full"


class ConfirmRefusedError(ServiceError):
    """A push confirm named a message that is not pending.

    Exactly-once enforcement, typed: the id was already confirmed (a
    client retry after a lost response — the classic duplicate), or it
    was never pushed to this owner.  Surfacing this as a 409 instead of
    a soft ``confirmed: false`` lets retrying clients distinguish "my
    confirm already landed" from a transport failure they should keep
    retrying.  The payload still carries ``confirmed: false`` so older
    callers that only inspect that field keep working.
    """

    status = 409
    code = "confirm_refused"

    def __init__(self, owner: str, msg_id: int):
        super().__init__(
            f"message {msg_id} is not pending confirmation for {owner!r} "
            "(already confirmed, or never pushed)"
        )
        self.owner = owner
        self.msg_id = msg_id


def error_response(exc: Exception) -> tuple[int, dict]:
    """Map an exception to the wire ``(status, payload)`` pair.

    :class:`~repro.postbox.PostboxFullError` is a postbox-layer type
    (it predates the service), so it is translated here rather than
    subclassing :class:`ServiceError`.
    """
    if isinstance(exc, PostboxFullError):
        return 429, {
            "error": "postbox_full",
            "detail": str(exc),
            "owner": exc.owner_name,
        }
    if isinstance(exc, ConfirmRefusedError):
        return exc.status, {
            "error": exc.code,
            "detail": str(exc),
            "confirmed": False,
            "msg_id": exc.msg_id,
        }
    if isinstance(exc, ServiceError):
        return exc.status, {"error": exc.code, "detail": str(exc)}
    return 500, {"error": "internal_error", "detail": str(exc)}
