"""Sharded postbox stores: one single-writer asyncio task per shard.

The always-on service multiplexes every owner's postbox over one event
loop.  Correctness of the postbox push path (exactly once on success,
at least once always — the PR 4 semantics) depends on deliver / check /
take-pushes / confirm never interleaving *within one box*, so the store
is sharded by owner name: ``blake2b(owner) % n_shards`` picks a shard,
and each shard runs exactly one writer task that applies operations
from its queue strictly in order.  Two operations on the same owner
can therefore never race, while operations on different shards proceed
concurrently.

Backpressure is typed, never silent: a shard queue at its depth limit
rejects the submission with :class:`ShardOverloadedError` (HTTP 503)
before any work is enqueued, and a full postbox propagates the
postbox-layer :class:`~repro.postbox.PostboxFullError` (HTTP 429) to
the submitting caller.

The store keeps the ``postbox.store.pending`` gauge (total messages
waiting across all shards) current by measuring each box's pending
count before and after every operation — O(1) per op, exact whatever
mix of delivery, retrieval, confirmation, and expiry ran inside.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable

from ..geometry import Point
from ..obs import REGISTRY
from ..postbox import Postbox, PostboxFullError, StoredMessage
from .errors import ShardOverloadedError

_G_PENDING = REGISTRY.gauge("postbox.store.pending")
_M_OPS = REGISTRY.counter("service.store.ops")
_M_REJECTS = REGISTRY.counter("service.store.queue_rejects")

#: Default shard-queue depth limit (ops, not bytes).
DEFAULT_QUEUE_LIMIT = 4096


@dataclass
class _Shard:
    """One shard: its boxes, its op queue, its writer task."""

    index: int
    boxes: dict[str, Postbox] = field(default_factory=dict)
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)
    task: asyncio.Task | None = None
    ops: int = 0


class ShardedPostboxStore:
    """Owner-sharded postboxes behind single-writer asyncio tasks.

    All public operations are coroutines that submit a closure to the
    owner's shard and await the result; exceptions raised inside the
    closure (including :class:`~repro.postbox.PostboxFullError`)
    propagate to the awaiting caller.  The store must be started
    (:meth:`start`) inside a running event loop before use and closed
    (:meth:`close`) for a graceful drain.
    """

    def __init__(
        self,
        n_shards: int = 8,
        capacity: int = 1024,
        retention_s: float = 7 * 24 * 3600.0,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if queue_limit < 1:
            raise ValueError("queue limit must be positive")
        self.n_shards = n_shards
        self.capacity = capacity
        self.retention_s = retention_s
        self.queue_limit = queue_limit
        self._shards = [
            _Shard(i, queue=asyncio.Queue(maxsize=queue_limit))
            for i in range(n_shards)
        ]
        self._pending_total = 0
        self._started = False
        self._closing = False
        #: Wake-on-delivery hook: called with the owner name from the
        #: shard writer task whenever an operation appended push
        #: records to that owner's box (an urgent delivery with a
        #: cached location).  The push stream registers per-owner
        #: events behind this instead of polling; a cluster worker
        #: additionally fans the wake out to remote watchers.
        self.on_push: Callable[[str], None] | None = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Spawn one writer task per shard (idempotent)."""
        if self._started:
            return
        for shard in self._shards:
            shard.task = asyncio.create_task(
                self._writer(shard), name=f"postbox-shard-{shard.index}"
            )
        self._started = True
        self._closing = False

    async def close(self) -> None:
        """Graceful shutdown: drain every queued op, then stop writers.

        Operations already accepted are applied before the writer
        exits — accepted work is never dropped; new submissions after
        ``close`` begins are rejected as overload.
        """
        if not self._started:
            return
        self._closing = True
        for shard in self._shards:
            await shard.queue.put(None)  # drain sentinel: queue order = op order
        for shard in self._shards:
            if shard.task is not None:
                await shard.task
                shard.task = None
        self._started = False

    async def _writer(self, shard: _Shard) -> None:
        """The shard's single writer: applies ops strictly in order."""
        while True:
            item = await shard.queue.get()
            if item is None:
                break
            fn, future = item
            shard.ops += 1
            try:
                result = fn(shard)
            except Exception as exc:  # typed rejects travel via the future
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                if not future.cancelled():
                    future.set_result(result)

    # -- submission -----------------------------------------------------
    def shard_index(self, owner: str) -> int:
        """The shard an owner's box lives on (stable across restarts)."""
        digest = hashlib.blake2b(owner.encode(), digest_size=4).digest()
        return int.from_bytes(digest, "big") % self.n_shards

    def _submit(self, owner: str, fn: Callable[[_Shard], Any]) -> asyncio.Future:
        shard = self._shards[self.shard_index(owner)]
        if self._closing:
            # Shutdown (in progress or completed): typed backpressure,
            # not an internal error — clients should back off and retry.
            _M_REJECTS.inc()
            raise ShardOverloadedError(shard.index, self.queue_limit)
        if not self._started:
            raise RuntimeError("ShardedPostboxStore.start() has not been awaited")
        future = asyncio.get_running_loop().create_future()
        try:
            shard.queue.put_nowait((fn, future))
        except asyncio.QueueFull:
            _M_REJECTS.inc()
            raise ShardOverloadedError(shard.index, self.queue_limit) from None
        _M_OPS.inc()
        return future

    def _box(self, shard: _Shard, owner: str) -> Postbox:
        box = shard.boxes.get(owner)
        if box is None:
            box = Postbox(
                owner_name=owner,
                capacity=self.capacity,
                retention_s=self.retention_s,
            )
            shard.boxes[owner] = box
        return box

    def _tracked(self, owner: str, fn: Callable[[Postbox], Any]) -> asyncio.Future:
        """Submit ``fn(box)``, keeping the pending gauge exact."""

        def op(shard: _Shard) -> Any:
            box = self._box(shard, owner)
            before = box.pending_count()
            pushes_before = len(box.pushed)
            try:
                return fn(box)
            finally:
                delta = box.pending_count() - before
                if delta:
                    self._pending_total += delta
                    _G_PENDING.set(self._pending_total)
                if self.on_push is not None and len(box.pushed) > pushes_before:
                    self.on_push(owner)

        return self._submit(owner, op)

    # -- the postbox API, sharded --------------------------------------
    async def deliver(
        self, owner: str, sealed: bytes, now_s: float, urgent: bool = False
    ) -> int:
        """Store a sealed message; returns its wire ``msg_id``.

        Raises:
            PostboxFullError: the owner's box is at capacity.
            ShardOverloadedError: the shard queue is at its depth limit.
        """

        def op(box: Postbox) -> int:
            message = box.deliver_message(sealed, now_s=now_s, urgent=urgent)
            if message is None:
                raise PostboxFullError(box.owner_name, box.capacity)
            return message.msg_id

        return await self._tracked(owner, op)

    async def check(
        self, owner: str, now_s: float, location: Point
    ) -> list[StoredMessage]:
        """Owner retrieval: drain pending messages, cache the location."""
        return await self._tracked(owner, lambda box: box.check(now_s, location))

    async def take_pushes(self, owner: str) -> list[StoredMessage]:
        """Drain the owner's pending push records (forwarder work queue)."""
        return await self._tracked(owner, lambda box: box.take_pushes())

    async def confirm_push(self, owner: str, msg_id: int) -> bool:
        """Confirm a pushed message by wire id (exactly-once path)."""
        return await self._tracked(owner, lambda box: box.confirm_push_id(msg_id))

    async def pending_count(self, owner: str) -> int:
        """Messages currently waiting for one owner."""
        return await self._tracked(owner, lambda box: box.pending_count())

    # -- introspection --------------------------------------------------
    def stats(self) -> dict:
        """A JSON-ready snapshot of shard occupancy and queue depths."""
        return {
            "n_shards": self.n_shards,
            "pending_total": self._pending_total,
            "owners": sum(len(s.boxes) for s in self._shards),
            "queue_depth_max": max(s.queue.qsize() for s in self._shards),
            "shard_ops": [s.ops for s in self._shards],
            "shard_owners": [len(s.boxes) for s in self._shards],
        }
