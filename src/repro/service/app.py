"""The DFN service application: endpoint handlers over shared state.

``ServiceApp`` is the transport-independent core of the always-on
service: a dispatch table from ``(method, path)`` to async handlers
over the sharded postbox store, the geocast board, and the directory.
The HTTP layer (:mod:`repro.service.http`) is a thin byte-parsing
wrapper around :meth:`ServiceApp.dispatch`; tests and the in-process
load generator call :meth:`dispatch` directly through
:class:`InProcessClient` — the SNIPPETS endpoint-smoke idiom with no
sockets anywhere.

Every endpoint is instrumented through :mod:`repro.obs`: a request
counter, an error counter, and a latency histogram timer per endpoint
(``service.req.*`` / ``service.err.*`` / ``service.latency.*``), plus
a ``service.<endpoint>`` trace span when a trace sink is installed
(spans are skipped on the hot path otherwise — the service's p99 should
not pay for tracing nobody is collecting).

Wire conventions: request and response bodies are JSON objects; sealed
message payloads travel base64-encoded in the ``payload`` field (the
service stores opaque bytes — sealing and opening stay on the devices,
which is what makes a compromised postbox AP a nuisance, §3); requests
may carry an explicit ``now_s`` timestamp (the load generator replays
scenario time), falling back to the server's wall clock.
"""

from __future__ import annotations

import base64
import binascii
import json
import time
from typing import Awaitable, Callable

from ..apps import Directory, DirectoryRecord
from ..city import City
from ..geometry import Point
from ..obs import REGISTRY, span, trace_enabled
from ..postbox import PostboxAddress, StoredMessage
from .errors import (
    BadRequestError,
    ConfirmRefusedError,
    NotFoundError,
    error_response,
)
from .geoboard import GeocastBoard
from .shards import ShardedPostboxStore

Handler = Callable[["ServiceApp", dict], Awaitable[dict]]

#: Endpoint table filled in by the ``@_route`` decorator below.
_ROUTES: dict[tuple[str, str], tuple[str, Handler]] = {}


def _route(method: str, path: str, name: str):
    def register(fn: Handler) -> Handler:
        _ROUTES[(method, path)] = (name, fn)
        return fn

    return register


def _field(body: dict, key: str, kind: type, required: bool = True, default=None):
    """Fetch and type-check one request field (400 on violation)."""
    value = body.get(key, default)
    if value is None:
        if required:
            raise BadRequestError(f"missing field {key!r}")
        return None
    if kind is float and isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if kind is int and isinstance(value, int) and not isinstance(value, bool):
        return value
    if not isinstance(value, kind) or isinstance(value, bool):
        raise BadRequestError(f"field {key!r} must be {kind.__name__}")
    return value


def _payload_bytes(body: dict, key: str = "payload") -> bytes:
    raw = _field(body, key, str)
    try:
        return base64.b64decode(raw.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError):
        raise BadRequestError(f"field {key!r} must be base64") from None


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _message_dict(message: StoredMessage) -> dict:
    return {
        "msg_id": message.msg_id,
        "payload": _b64(message.sealed),
        "urgent": message.urgent,
        "arrival_s": message.arrival_time_s,
    }


class ServiceApp:
    """Shared service state plus the endpoint dispatch table."""

    def __init__(
        self,
        city: City | None = None,
        n_shards: int = 8,
        capacity: int = 1024,
        retention_s: float = 7 * 24 * 3600.0,
        queue_limit: int = 4096,
        directory_replicas: int = 2,
        board: GeocastBoard | None = None,
    ):
        self.city = city
        self.store = ShardedPostboxStore(
            n_shards=n_shards,
            capacity=capacity,
            retention_s=retention_s,
            queue_limit=queue_limit,
        )
        self.board = board if board is not None else GeocastBoard()
        self.directory = (
            Directory(city=city, replicas=directory_replicas)
            if city is not None
            else None
        )
        self._epoch = time.time()
        self._instruments: dict[str, tuple] = {}
        self.started = False
        #: Cluster identity: which worker this app instance is (0-based)
        #: and how many exist.  The single-process service is the
        #: degenerate one-worker cluster, so the defaults stay honest.
        self.worker_index = 0
        self.n_workers = 1

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Start the shard writers (idempotent)."""
        await self.store.start()
        self.started = True

    async def close(self) -> None:
        """Graceful shutdown: drain shard queues, stop writers."""
        await self.store.close()
        self.started = False

    def now_s(self, body: dict | None = None) -> float:
        """The request's clock: explicit ``now_s`` or server wall time."""
        if body is not None:
            value = body.get("now_s")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
        return time.time() - self._epoch

    # -- dispatch -------------------------------------------------------
    def _instrument(self, name: str):
        found = self._instruments.get(name)
        if found is None:
            found = (
                REGISTRY.counter(f"service.req.{name}"),
                REGISTRY.counter(f"service.err.{name}"),
                REGISTRY.timer(f"service.latency.{name}"),
            )
            self._instruments[name] = found
        return found

    async def dispatch(
        self, method: str, path: str, body: bytes | dict | None
    ) -> tuple[int, dict]:
        """Route one request; returns ``(status, response payload)``.

        Never raises: malformed input, unknown routes, and typed
        service rejects all come back as structured error payloads.
        """
        route = _ROUTES.get((method, path))
        if route is None:
            if any(p == path for _, p in _ROUTES):
                return 405, {"error": "method_not_allowed"}
            return 404, {"error": "not_found", "detail": path}
        name, handler = route
        requests, errors, latency = self._instrument(name)
        requests.inc()
        if isinstance(body, bytes):
            if body:
                try:
                    body = json.loads(body)
                except (ValueError, UnicodeDecodeError):
                    errors.inc()
                    return 400, {"error": "bad_request", "detail": "invalid JSON body"}
            else:
                body = {}
        elif body is None:
            body = {}
        if not isinstance(body, dict):
            errors.inc()
            return 400, {"error": "bad_request", "detail": "body must be a JSON object"}
        t0 = time.perf_counter()
        try:
            if trace_enabled():
                with span(f"service.{name}"):
                    payload = await handler(self, body)
            else:
                payload = await handler(self, body)
            status = 200
        except Exception as exc:
            errors.inc()
            status, payload = error_response(exc)
        latency.observe(time.perf_counter() - t0)
        return status, payload

    # -- postbox endpoints ---------------------------------------------
    @_route("POST", "/v1/postbox/send", "postbox.send")
    async def _send(self, body: dict) -> dict:
        owner = _field(body, "owner", str)
        sealed = _payload_bytes(body)
        urgent = bool(body.get("urgent", False))
        msg_id = await self.store.deliver(
            owner, sealed, now_s=self.now_s(body), urgent=urgent
        )
        return {"msg_id": msg_id, "owner": owner}

    @_route("POST", "/v1/postbox/check", "postbox.check")
    async def _check(self, body: dict) -> dict:
        owner = _field(body, "owner", str)
        x = _field(body, "x", float)
        y = _field(body, "y", float)
        messages = await self.store.check(
            owner, now_s=self.now_s(body), location=Point(x, y)
        )
        return {"messages": [_message_dict(m) for m in messages]}

    @_route("POST", "/v1/postbox/pushes", "postbox.pushes")
    async def _pushes(self, body: dict) -> dict:
        owner = _field(body, "owner", str)
        pushes = await self.store.take_pushes(owner)
        return {"pushes": [_message_dict(m) for m in pushes]}

    @_route("POST", "/v1/postbox/confirm", "postbox.confirm")
    async def _confirm(self, body: dict) -> dict:
        owner = _field(body, "owner", str)
        msg_id = _field(body, "msg_id", int)
        confirmed = await self.store.confirm_push(owner, msg_id)
        if not confirmed:
            # Exactly-once, typed: a duplicate confirm (retry after a
            # lost response) must be refused loudly, never re-applied.
            raise ConfirmRefusedError(owner, msg_id)
        return {"confirmed": True, "msg_id": msg_id}

    # -- geocast endpoints ---------------------------------------------
    @_route("POST", "/v1/geocast/publish", "geocast.publish")
    async def _geocast_publish(self, body: dict) -> dict:
        x = _field(body, "x", float)
        y = _field(body, "y", float)
        radius = _field(body, "radius", float)
        payload = _payload_bytes(body)
        ttl_s = _field(body, "ttl_s", float, required=False)
        kwargs = {} if ttl_s is None else {"ttl_s": ttl_s}
        geocast_id = self.board.publish(
            x, y, radius, payload, now_s=self.now_s(body), **kwargs
        )
        return {"geocast_id": geocast_id}

    @_route("POST", "/v1/geocast/poll", "geocast.poll")
    async def _geocast_poll(self, body: dict) -> dict:
        x = _field(body, "x", float)
        y = _field(body, "y", float)
        limit = _field(body, "limit", int, required=False) or 50
        hits = self.board.poll(x, y, now_s=self.now_s(body), limit=limit)
        return {
            "messages": [
                {
                    "geocast_id": m.geocast_id,
                    "payload": _b64(m.payload),
                    "x": m.x,
                    "y": m.y,
                    "radius": m.radius,
                }
                for m in hits
            ]
        }

    # -- directory endpoints -------------------------------------------
    def _require_directory(self) -> Directory:
        if self.directory is None:
            raise BadRequestError("service is running without a city map")
        return self.directory

    @_route("POST", "/v1/directory/publish", "directory.publish")
    async def _directory_publish(self, body: dict) -> dict:
        directory = self._require_directory()
        address_bytes = _payload_bytes(body, "address")
        sequence = _field(body, "sequence", int)
        signature = _payload_bytes(body, "signature")
        try:
            address = PostboxAddress.from_bytes(address_bytes)
        except ValueError as exc:
            raise BadRequestError(f"bad address: {exc}") from None
        record = DirectoryRecord(
            address=address, sequence=sequence, signature=signature
        )
        stored = directory.publish(record)
        if not stored:
            raise BadRequestError("record rejected (forged or stale sequence)")
        return {"stored": len(stored), "name": address.name}

    @_route("POST", "/v1/directory/lookup", "directory.lookup")
    async def _directory_lookup(self, body: dict) -> dict:
        directory = self._require_directory()
        name = _field(body, "name", str)
        record = directory.lookup(name)
        if record is None:
            raise NotFoundError(f"no directory record for {name!r}")
        return {
            "name": name,
            "address": _b64(record.address.to_bytes()),
            "sequence": record.sequence,
            "signature": _b64(record.signature),
        }

    # -- health / stats ------------------------------------------------
    @_route("GET", "/v1/healthz", "healthz")
    async def _healthz(self, body: dict) -> dict:
        return {
            "ok": True,
            "started": self.started,
            "worker": self.worker_index,
            "workers": self.n_workers,
        }

    @_route("GET", "/v1/stats", "stats")
    async def _stats(self, body: dict) -> dict:
        return {
            "worker": self.worker_index,
            "store": self.store.stats(),
            "geocast_live": self.board.live_count(),
            "directory_records": (
                self.directory.record_count() if self.directory is not None else 0
            ),
            "metrics": REGISTRY.snapshot(),
        }


class InProcessClient:
    """The sockets-free client: calls ``dispatch`` directly.

    Mirrors :class:`repro.service.client.ServiceClient`'s ``request``
    signature so tests and the load generator can swap transports.
    Bodies are round-tripped through JSON bytes, so (de)serialization
    bugs cannot hide behind the shortcut.
    """

    def __init__(self, app: ServiceApp):
        self.app = app

    async def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        idempotent: bool = False,
    ) -> tuple[int, dict]:
        # ``idempotent`` is transport parity with ServiceClient's
        # retry-once policy; in-process calls cannot hit a keep-alive
        # race, so there is nothing to retry.
        body = b"" if payload is None else json.dumps(payload).encode()
        return await self.app.dispatch(method, path, body)

    async def close(self) -> None:  # transport parity; nothing to close
        return None
