"""The closed-loop load generator: a scenario timeline replayed as traffic.

HaLert's observation (PAPERS.md) is that the post-disaster regime is a
*load* problem as much as a reachability problem: what matters is
whether the network keeps answering while a city's worth of phones
hammers it.  This module turns a :class:`repro.scenario.ScenarioSpec`
into exactly that traffic:

1. :func:`generate_trace` builds a **deterministic request trace** — a
   seeded city of simulated phones, each homed in a real building of
   the scenario's city, walking slightly epoch to epoch and, every
   epoch of the outage timeline, checking its postbox, messaging other
   phones (urgent sends fire the push path), publishing and polling
   geocasts, and resolving well-known names.  Same spec + same seed →
   byte-identical JSON (:meth:`LoadTrace.to_json`), which CI checks.

2. :func:`run_loadgen` replays the trace **closed-loop**: each virtual
   connection keeps exactly one request in flight and issues the next
   the moment the previous response lands (a phone does not pipeline).
   Requests are partitioned over connections by owner hash, so one
   phone's timeline is always replayed in order.  The report carries
   sustained requests/s and client-observed p50/p99 latency.

All randomness flows through :func:`repro.experiments.seed_for` keyed
on the spec's stream label — the trace is independent of worker count,
host, and wall clock.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable

import random

from ..apps import DirectoryRecord
from ..city import make_city
from ..experiments import seed_for
from ..postbox import KeyPair, PostboxAddress
from ..scenario import ScenarioSpec

#: Default per-epoch action probabilities for one phone.
DEFAULT_MIX = {
    "send": 0.35,
    "urgent": 0.30,  # of sends
    "geocast_publish": 0.10,
    "geocast_poll": 0.20,
    "pushes": 0.15,
    "lookup": 0.05,
}

#: Well-known names (shelters, aid stations) published at trace start.
WELL_KNOWN_NAMES = 8


@dataclass(frozen=True)
class TraceRequest:
    """One request of the generated trace, fully rendered."""

    seq: int
    t_s: float
    owner: str
    kind: str
    method: str
    path: str
    body: dict

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "t_s": self.t_s,
            "owner": self.owner,
            "kind": self.kind,
            "method": self.method,
            "path": self.path,
            "body": self.body,
        }


@dataclass
class LoadTrace:
    """A deterministic request trace derived from one scenario."""

    scenario: str
    city: str
    seed: int
    phones: int
    epochs: int
    epoch_hours: float
    requests: list[TraceRequest] = field(default_factory=list)

    def to_json(self, indent: int | None = None) -> str:
        """Byte-identical for equal (spec, seed, knobs) — the CI
        determinism check serializes two generations and compares."""
        return json.dumps(
            {
                "scenario": self.scenario,
                "city": self.city,
                "seed": self.seed,
                "phones": self.phones,
                "epochs": self.epochs,
                "epoch_hours": self.epoch_hours,
                "requests": [r.to_dict() for r in self.requests],
            },
            sort_keys=True,
            indent=indent,
        )

    def kind_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for request in self.requests:
            counts[request.kind] = counts.get(request.kind, 0) + 1
        return dict(sorted(counts.items()))


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _payload_for(seed: int, tag: str, size: int = 96) -> str:
    """A deterministic pseudo-sealed payload (the service stores opaque
    bytes; real sealing happens on devices)."""
    out = b""
    counter = 0
    while len(out) < size:
        out += hashlib.blake2b(
            f"{seed}:{tag}:{counter}".encode(), digest_size=32
        ).digest()
        counter += 1
    return _b64(out[:size])


def generate_trace(
    spec: ScenarioSpec,
    phones: int = 200,
    mix: dict[str, float] | None = None,
    checks_per_epoch: int = 1,
) -> LoadTrace:
    """Render a scenario timeline into a deterministic request trace.

    Args:
        spec: the scenario whose world and epoch grid drive the trace.
        phones: simulated devices, each homed in a seeded city building.
        mix: per-epoch action probabilities (see ``DEFAULT_MIX``).
        checks_per_epoch: postbox checks each phone makes per epoch.

    Raises:
        ValueError: for a non-positive phone or check count.
    """
    if phones < 2:
        raise ValueError("need at least two phones (sends have recipients)")
    if checks_per_epoch < 1:
        raise ValueError("phones must check at least once per epoch")
    mix = {**DEFAULT_MIX, **(mix or {})}
    rng = random.Random(
        seed_for(spec.world.seed, phones, stream=spec.stream() + ":loadgen")
    )
    city = make_city(spec.world.city_name, seed=spec.world.seed)
    centroids = [b.centroid() for b in city.buildings]
    epoch_s = spec.epoch_hours * 3600.0

    owners = [f"phone-{i:05d}" for i in range(phones)]
    homes = [rng.randrange(len(centroids)) for _ in range(phones)]

    requests: list[tuple[float, int, str, str, str, str, dict]] = []
    pending: list[tuple[float, str, str, str, str, dict]] = []

    def emit(t_s: float, owner: str, kind: str, method: str, path: str, body: dict):
        pending.append((t_s, owner, kind, method, path, body))

    # Trace prelude: well-known names (shelters) published at t=0 so
    # directory lookups during the outage resolve.  Keys are seeded —
    # deterministic bytes, deterministic trace.
    well_known: list[str] = []
    for i in range(WELL_KNOWN_NAMES):
        keypair = KeyPair.generate(rng, bits=512)
        building = rng.randrange(len(centroids))
        address = PostboxAddress.for_key(keypair.public, city.buildings[building].id)
        record = DirectoryRecord.create(keypair, address, sequence=1)
        well_known.append(address.name)
        emit(
            0.0,
            f"shelter-{i:02d}",
            "directory_publish",
            "POST",
            "/v1/directory/publish",
            {
                "address": _b64(address.to_bytes()),
                "sequence": record.sequence,
                "signature": _b64(record.signature),
            },
        )

    for epoch in range(spec.epochs):
        base_s = epoch * epoch_s
        for idx, owner in enumerate(owners):
            home = centroids[homes[idx]]
            # A short random walk: the phone drifts around its home
            # block, a different offset each epoch.
            x = home.x + rng.uniform(-40.0, 40.0)
            y = home.y + rng.uniform(-40.0, 40.0)
            for _ in range(checks_per_epoch):
                t = base_s + rng.uniform(0.0, epoch_s)
                emit(
                    t,
                    owner,
                    "check",
                    "POST",
                    "/v1/postbox/check",
                    {"owner": owner, "x": x, "y": y, "now_s": t},
                )
            if rng.random() < mix["send"]:
                t = base_s + rng.uniform(0.0, epoch_s)
                recipient = owners[rng.randrange(phones - 1)]
                if recipient == owner:
                    recipient = owners[phones - 1]
                urgent = rng.random() < mix["urgent"]
                emit(
                    t,
                    owner,
                    "send",
                    "POST",
                    "/v1/postbox/send",
                    {
                        "owner": recipient,
                        "payload": _payload_for(
                            spec.world.seed, f"{epoch}:{owner}:{recipient}"
                        ),
                        "urgent": urgent,
                        "now_s": t,
                    },
                )
            if rng.random() < mix["geocast_publish"]:
                t = base_s + rng.uniform(0.0, epoch_s)
                target = centroids[rng.randrange(len(centroids))]
                emit(
                    t,
                    owner,
                    "geocast_publish",
                    "POST",
                    "/v1/geocast/publish",
                    {
                        "x": target.x,
                        "y": target.y,
                        "radius": rng.uniform(150.0, 400.0),
                        "payload": _payload_for(
                            spec.world.seed, f"geo:{epoch}:{owner}"
                        ),
                        "ttl_s": epoch_s,
                        "now_s": t,
                    },
                )
            if rng.random() < mix["geocast_poll"]:
                t = base_s + rng.uniform(0.0, epoch_s)
                emit(
                    t,
                    owner,
                    "geocast_poll",
                    "POST",
                    "/v1/geocast/poll",
                    {"x": x, "y": y, "now_s": t},
                )
            if rng.random() < mix["pushes"]:
                t = base_s + rng.uniform(0.0, epoch_s)
                emit(
                    t,
                    owner,
                    "pushes",
                    "POST",
                    "/v1/postbox/pushes",
                    {"owner": owner},
                )
            if rng.random() < mix["lookup"]:
                t = base_s + rng.uniform(0.0, epoch_s)
                emit(
                    t,
                    owner,
                    "lookup",
                    "POST",
                    "/v1/directory/lookup",
                    {"name": well_known[rng.randrange(len(well_known))]},
                )

    # Stable global order: by time, then insertion (ties must not
    # depend on sort instability for byte-identity).
    ordered = sorted(
        enumerate(pending), key=lambda item: (item[1][0], item[0])
    )
    trace = LoadTrace(
        scenario=spec.name,
        city=spec.world.city_name,
        seed=spec.world.seed,
        phones=phones,
        epochs=spec.epochs,
        epoch_hours=spec.epoch_hours,
    )
    for seq, (_, (t_s, owner, kind, method, path, body)) in enumerate(ordered):
        trace.requests.append(
            TraceRequest(
                seq=seq,
                t_s=round(t_s, 6),
                owner=owner,
                kind=kind,
                method=method,
                path=path,
                body=body,
            )
        )
    return trace


# ---------------------------------------------------------------------------
# closed-loop replay


@dataclass
class LoadReport:
    """What the closed-loop replay observed, client-side."""

    requests: int
    wall_s: float
    req_per_s: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    status_counts: dict[int, int]
    connections: int
    confirms: int
    errors: int  # 5xx
    rejects: int  # 429 + 503 (typed backpressure)
    retries: int = 0  # idempotent reconnect-and-retry events
    procs: int = 1  # generator processes that produced the load

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "wall_s": self.wall_s,
            "req_per_s": self.req_per_s,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "connections": self.connections,
            "confirms": self.confirms,
            "errors": self.errors,
            "rejects": self.rejects,
            "retries": self.retries,
            "procs": self.procs,
        }


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


#: Request kinds that are safe to retry once on a dropped connection
#: (reads and drains whose re-issue cannot double-apply a write).
IDEMPOTENT_KINDS = frozenset({"check", "pushes", "geocast_poll", "lookup"})


def partition_trace(
    trace: LoadTrace, connections: int
) -> tuple[list[TraceRequest], list[list[TraceRequest]]]:
    """Split a trace into the serial prelude and per-connection buckets.

    Requests are partitioned by ``blake2b(owner) % connections`` — the
    same digest the sharded store and the cluster's
    :func:`~repro.service.cluster.home_worker` use, so when the worker
    count divides the connection count every request of bucket *b* is
    homed on worker ``b % workers`` and replays zero-hop.
    """
    prelude = [r for r in trace.requests if r.kind == "directory_publish"]
    buckets: list[list[TraceRequest]] = [[] for _ in range(connections)]
    for request in trace.requests:
        if request.kind == "directory_publish":
            continue
        digest = hashlib.blake2b(request.owner.encode(), digest_size=4).digest()
        buckets[int.from_bytes(digest, "big") % connections].append(request)
    return prelude, buckets


@dataclass
class _BucketResult:
    """One connection's share of the replay, raw."""

    latencies: list[float] = field(default_factory=list)
    counts: dict[int, int] = field(default_factory=dict)
    confirms: int = 0
    retries: int = 0


async def _replay_bucket(
    client, requests: list[TraceRequest], capture: list | None = None
) -> _BucketResult:
    """Replay one connection's requests closed-loop.

    Successful ``pushes`` responses trigger immediate ``confirm``
    requests for every returned push record — the closed loop exercises
    the full exactly-once path, and those confirms are counted and
    timed like any other request.
    """
    result = _BucketResult()
    try:
        for request in requests:
            idempotent = request.kind in IDEMPOTENT_KINDS
            t0 = time.perf_counter()
            status, payload = await client.request(
                request.method, request.path, request.body, idempotent=idempotent
            )
            result.latencies.append(time.perf_counter() - t0)
            result.counts[status] = result.counts.get(status, 0) + 1
            if capture is not None:
                capture.append([status, payload])
            if request.kind == "pushes" and status == 200 and payload.get("pushes"):
                for push in payload["pushes"]:
                    t1 = time.perf_counter()
                    confirm_status, confirm_payload = await client.request(
                        "POST",
                        "/v1/postbox/confirm",
                        {"owner": request.owner, "msg_id": push["msg_id"]},
                    )
                    result.latencies.append(time.perf_counter() - t1)
                    result.counts[confirm_status] = (
                        result.counts.get(confirm_status, 0) + 1
                    )
                    result.confirms += 1
                    if capture is not None:
                        capture.append([confirm_status, confirm_payload])
    finally:
        result.retries = getattr(client, "retries", 0)
        await client.close()
    return result


def _assemble_report(
    results: list[_BucketResult],
    prelude_counts: dict[int, int],
    wall_s: float,
    connections: int,
    procs: int = 1,
) -> LoadReport:
    latencies = sorted(lat for r in results for lat in r.latencies)
    status_counts = dict(prelude_counts)
    for r in results:
        for status, n in r.counts.items():
            status_counts[status] = status_counts.get(status, 0) + n
    total = len(latencies)
    return LoadReport(
        requests=total,
        wall_s=wall_s,
        req_per_s=total / wall_s if wall_s > 0 else 0.0,
        p50_ms=_quantile(latencies, 0.50) * 1e3,
        p99_ms=_quantile(latencies, 0.99) * 1e3,
        max_ms=latencies[-1] * 1e3 if latencies else 0.0,
        status_counts=status_counts,
        connections=connections,
        confirms=sum(r.confirms for r in results),
        errors=sum(n for s, n in status_counts.items() if s >= 500),
        rejects=status_counts.get(429, 0) + status_counts.get(503, 0),
        retries=sum(r.retries for r in results),
        procs=procs,
    )


async def _run_prelude(client, prelude: list[TraceRequest], capture: list | None):
    counts: dict[int, int] = {}
    try:
        for request in prelude:
            status, payload = await client.request(
                request.method, request.path, request.body
            )
            counts[status] = counts.get(status, 0) + 1
            if capture is not None:
                capture.append([status, payload])
    finally:
        await client.close()
    return counts


async def run_loadgen(
    trace: LoadTrace,
    client_factory: Callable[[int], object],
    connections: int = 32,
    capture: list | None = None,
) -> LoadReport:
    """Replay a trace closed-loop and measure what the clients saw.

    Args:
        trace: the deterministic request trace.
        client_factory: builds one transport per connection, given the
            connection index — a
            :class:`~repro.service.client.ServiceClient` for TCP or an
            :class:`~repro.service.app.InProcessClient` for no-socket
            runs; anything with ``request``/``close`` coroutines works.
            The index lets TCP factories pin the connection to its
            bucket's home worker in cluster mode.
        connections: virtual phones' multiplexing degree.  Requests are
            partitioned by owner hash so one owner's requests replay in
            trace order on one connection.
        capture: append ``[status, payload]`` per response, in replay
            order.  Deterministic only with ``connections=1`` (one
            bucket = strict trace order) — the CI byte-identity guard
            runs exactly that configuration.
    """
    if connections < 1:
        raise ValueError("need at least one connection")
    # The t=0 directory prelude runs serially before the fan-out:
    # well-known names must exist before any connection can race a
    # lookup past their publish.
    prelude, buckets = partition_trace(trace, connections)
    prelude_counts: dict[int, int] = {}
    if prelude:
        prelude_counts = await _run_prelude(client_factory(0), prelude, capture)

    wall_start = time.perf_counter()
    results = await asyncio.gather(
        *(
            _replay_bucket(client_factory(i), buckets[i], capture)
            for i in range(connections)
        )
    )
    wall_s = time.perf_counter() - wall_start
    return _assemble_report(list(results), prelude_counts, wall_s, connections)


def _procs_entry(
    proc_index: int,
    procs: int,
    host: str,
    port: int,
    workers: int,
    buckets: list[list[TraceRequest]],
    sink,
) -> None:
    """One generator process: replay its slice of the buckets."""
    from .client import ServiceClient

    connections = len(buckets)
    my_indices = [i for i in range(connections) if i % procs == proc_index]

    def factory(index: int) -> ServiceClient:
        prefer = None
        if workers > 1 and connections % workers == 0:
            prefer = index % workers
        return ServiceClient(host, port, prefer_worker=prefer)

    async def body():
        t0 = time.perf_counter()
        results = await asyncio.gather(
            *(_replay_bucket(factory(i), buckets[i]) for i in my_indices)
        )
        return list(results), time.perf_counter() - t0

    results, wall_s = asyncio.run(body())
    sink.put(
        {
            "wall_s": wall_s,
            "results": [
                {
                    "latencies": r.latencies,
                    "counts": r.counts,
                    "confirms": r.confirms,
                    "retries": r.retries,
                }
                for r in results
            ],
        }
    )


def run_loadgen_procs(
    trace: LoadTrace,
    host: str,
    port: int,
    connections: int = 32,
    procs: int = 2,
    workers: int = 1,
) -> LoadReport:
    """Multi-process closed-loop replay (``repro loadgen --procs N``).

    A single-process generator becomes the bottleneck before an
    N-worker service does; this forks ``procs`` generator processes,
    each replaying an interleaved slice of the per-connection buckets,
    and merges their raw observations.  Sustained req/s is total
    requests over the *slowest* process's wall clock — the honest
    number for overlapping generators.

    Synchronous by design (it owns its child processes and their event
    loops); TCP only.
    """
    import multiprocessing

    if procs < 1:
        raise ValueError("need at least one generator process")
    if connections < procs:
        raise ValueError("need at least one connection per generator process")
    prelude, buckets = partition_trace(trace, connections)

    from .client import ServiceClient

    prelude_counts: dict[int, int] = {}
    if prelude:
        prelude_counts = asyncio.run(
            _run_prelude(ServiceClient(host, port), prelude, None)
        )

    ctx = multiprocessing.get_context("fork")
    sink = ctx.SimpleQueue()
    children = [
        ctx.Process(
            target=_procs_entry,
            args=(p, procs, host, port, workers, buckets, sink),
            name=f"loadgen-{p}",
        )
        for p in range(procs)
    ]
    for child in children:
        child.start()
    merged: list[_BucketResult] = []
    wall_s = 0.0
    for _ in children:
        payload = sink.get()
        wall_s = max(wall_s, payload["wall_s"])
        for raw in payload["results"]:
            merged.append(
                _BucketResult(
                    latencies=raw["latencies"],
                    counts={int(k): v for k, v in raw["counts"].items()},
                    confirms=raw["confirms"],
                    retries=raw["retries"],
                )
            )
    for child in children:
        child.join()
    return _assemble_report(
        merged, prelude_counts, wall_s, connections, procs=procs
    )


def format_report(report: LoadReport, trace: LoadTrace) -> str:
    """A compact human-readable summary (the JSON is the artifact)."""
    lines = [
        (
            f"loadgen: {trace.scenario} on {trace.city} — {trace.phones} phones, "
            f"{trace.epochs} epochs, {len(trace.requests)} trace requests"
        ),
        (
            f"  {report.requests} requests ({report.confirms} push confirms, "
            f"{report.retries} idempotent retries) over {report.connections} "
            f"connections x {report.procs} proc(s) in {report.wall_s:.2f} s"
        ),
        (
            f"  sustained {report.req_per_s:,.0f} req/s — "
            f"p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms, "
            f"max {report.max_ms:.1f} ms"
        ),
        (
            f"  statuses: "
            + ", ".join(f"{s}×{n}" for s, n in sorted(report.status_counts.items()))
            + f" ({report.errors} errors, {report.rejects} backpressure rejects)"
        ),
    ]
    by_kind = ", ".join(f"{k}={v}" for k, v in trace.kind_counts().items())
    lines.append(f"  mix: {by_kind}")
    return "\n".join(lines)
