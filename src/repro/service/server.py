"""Process-level service runner: build the world, serve until told to stop.

This is what ``repro serve`` executes: construct the city map the
directory rendezvouses over, assemble the :class:`ServiceApp`, bind the
:class:`DFNServer`, install SIGINT/SIGTERM handlers, and block until a
signal (or an explicit stop event) triggers the graceful shutdown
sequence — stop accepting, finish in-flight requests, drain the shard
queues.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from typing import Callable

from ..city import make_city
from .app import ServiceApp
from .http import DFNServer


def build_app(
    city_name: str = "gridport",
    seed: int = 0,
    n_shards: int = 8,
    capacity: int = 1024,
    queue_limit: int = 4096,
) -> ServiceApp:
    """Assemble a service app over a preset city."""
    return ServiceApp(
        city=make_city(city_name, seed=seed),
        n_shards=n_shards,
        capacity=capacity,
        queue_limit=queue_limit,
    )


async def run_service(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 8787,
    ready: Callable[[DFNServer], None] | None = None,
    stop: asyncio.Event | None = None,
    install_signal_handlers: bool = True,
) -> None:
    """Serve until ``stop`` is set or SIGINT/SIGTERM arrives.

    Args:
        app: the assembled service application.
        host / port: bind address (port 0 = ephemeral; read the bound
            port back via the ``ready`` callback).
        ready: called once the server is accepting connections.
        stop: external shutdown trigger (tests, embedding callers).
        install_signal_handlers: wire SIGINT/SIGTERM to the stop event
            (disabled automatically where the loop does not support it,
            e.g. non-main threads).
    """
    stop = stop or asyncio.Event()
    server = DFNServer(app, host=host, port=port)
    await server.start()
    loop = asyncio.get_running_loop()
    installed: list[int] = []
    if install_signal_handlers:
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
    try:
        if ready is not None:
            ready(server)
        await stop.wait()
    finally:
        for signum in installed:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(signum)
        await server.close()
