"""Radio propagation and timing models for the broadcast simulation.

The paper's simulator uses a symmetric fixed transmission-range cutoff
(50 m); :class:`UnitDiskRadio` reproduces that.  :class:`LossyRadio`
adds independent per-reception loss for robustness experiments, and
:class:`FadingRadio` implements distance-dependent detection used by
the §2 war-driving study.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..geometry import Point

# Timing defaults, loosely modelled on 802.11 broadcast frames: a
# ~1 kB frame at ~6 Mb/s plus MAC overhead is on the order of 2 ms;
# rebroadcast jitter desynchronises neighbours to reduce collisions.
DEFAULT_TX_DELAY_S = 0.002
DEFAULT_JITTER_S = 0.010


@dataclass(frozen=True)
class Reception:
    """One successful packet reception at a neighbouring AP."""

    receiver_id: int
    delay_s: float


class UnitDiskRadio:
    """Every AP within range receives every transmission, after the
    transmission delay (no loss, no capture)."""

    def __init__(
        self,
        tx_delay_s: float = DEFAULT_TX_DELAY_S,
    ):
        if tx_delay_s <= 0:
            raise ValueError("transmission delay must be positive")
        self.tx_delay_s = tx_delay_s

    def receptions(
        self, neighbor_ids: list[int], rng: random.Random
    ) -> list[Reception]:
        """Receivers of one broadcast given the unit-disk neighbour set."""
        return [Reception(receiver_id=n, delay_s=self.tx_delay_s) for n in neighbor_ids]


class LossyRadio(UnitDiskRadio):
    """Unit-disk radio with independent per-reception loss probability."""

    def __init__(
        self,
        loss_probability: float,
        tx_delay_s: float = DEFAULT_TX_DELAY_S,
    ):
        super().__init__(tx_delay_s=tx_delay_s)
        if not 0 <= loss_probability < 1:
            raise ValueError("loss probability must be in [0, 1)")
        self.loss_probability = loss_probability

    def receptions(
        self, neighbor_ids: list[int], rng: random.Random
    ) -> list[Reception]:
        return [
            Reception(receiver_id=n, delay_s=self.tx_delay_s)
            for n in neighbor_ids
            if rng.random() >= self.loss_probability
        ]


class FadingDetection:
    """Distance-dependent detection probability for beacon scanning.

    Detection probability is 1 up to ``reliable_range`` and then decays
    smoothly to 0 at ``max_range`` following a raised-cosine roll-off —
    a simple stand-in for log-distance shadowing that keeps the
    war-driving study's spread statistics realistic (a far AP is heard
    sometimes, a near AP almost always).
    """

    def __init__(self, reliable_range: float, max_range: float):
        if reliable_range <= 0:
            raise ValueError("reliable range must be positive")
        if max_range <= reliable_range:
            raise ValueError("max range must exceed reliable range")
        self.reliable_range = reliable_range
        self.max_range = max_range

    def detection_probability(self, distance: float) -> float:
        """Probability that a scan at ``distance`` hears the AP."""
        if distance < 0:
            raise ValueError("distance must be non-negative")
        if distance <= self.reliable_range:
            return 1.0
        if distance >= self.max_range:
            return 0.0
        t = (distance - self.reliable_range) / (self.max_range - self.reliable_range)
        return 0.5 * (1.0 + math.cos(math.pi * t))

    def detects(self, scanner: Point, ap: Point, rng: random.Random) -> bool:
        """Sample whether a scan at ``scanner`` detects an AP at ``ap``."""
        return rng.random() < self.detection_probability(scanner.distance_to(ap))
