"""A from-scratch discrete-event simulation engine.

The paper's evaluation uses SimPy; this module provides the subset of
its semantics CityMesh needs, implemented on a binary-heap event queue
with generator-based processes:

- :class:`Environment` owns simulated time and the event queue,
- :class:`Event` is a one-shot occurrence with callbacks,
- ``env.timeout(delay)`` creates an event that fires after a delay,
- ``env.process(gen)`` runs a generator that ``yield``s events and is
  resumed (with the event's value) when they fire.

Determinism: events scheduled for the same instant fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a
seeded simulation replays identically.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for engine misuse (double trigger, bad run target, …)."""


class Event:
    """A one-shot occurrence that callbacks and processes can wait on."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """Whether the event has a value and is (or will be) processed."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (meaningless until triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value.

        Raises:
            SimulationError: if the event has not triggered yet.
        """
        if self._value is _PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes get the
        exception thrown into them."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._value = exception
        self.env._enqueue(self, delay=0.0)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._enqueue(self, delay=delay)


class Process(Event):
    """Runs a generator; the process event triggers when it returns.

    The generator ``yield``s :class:`Event` instances and is resumed
    with ``event.value`` when they fire (or has the exception thrown in
    for failed events).
    """

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]):
        super().__init__(env)
        self._generator = generator
        # Bootstrap: resume the process at the current instant.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    def _resume(self, trigger: Event) -> None:
        try:
            if trigger.ok:
                target = self._generator.send(trigger.value)
            else:
                target = self._generator.throw(trigger.value)
        except StopIteration as stop:
            super().succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into event
            super().fail(exc)
            return
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process yielded {target!r}; processes must yield Events"
            )
            self._generator.close()
            super().fail(exc)
            return
        if target.triggered and target._scheduled is False:
            # Already-processed event: resume immediately at this instant.
            immediate = Event(self.env)
            immediate.callbacks.append(self._resume)
            if target.ok:
                immediate.succeed(target.value)
            else:
                immediate._ok = False
                immediate._value = target.value
                self.env._enqueue(immediate, delay=0.0)
        else:
            target.callbacks.append(self._resume)


class Environment:
    """Simulation environment: clock plus event queue."""

    def __init__(self, initial_time: float = 0.0):
        self.now = initial_time
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0

    # ------------------------------------------------------------------
    # Event creation
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Register a generator as a process starting now."""
        return Process(self, generator)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _enqueue(self, event: Event, delay: float) -> None:
        event._scheduled = True
        heapq.heappush(self._queue, (self.now + delay, self._sequence, event))
        self._sequence += 1

    def peek(self) -> float:
        """Time of the next scheduled event (inf when idle)."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Raises:
            SimulationError: if the queue is empty.
        """
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _, event = heapq.heappop(self._queue)
        self.now = time
        event._scheduled = False
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if not event.ok and not callbacks:
            # A failed event nobody waits on is a programming error.
            raise event.value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Args:
            until: ``None`` runs until the queue drains; a number runs
                until that simulated time; an :class:`Event` runs until
                it has been processed and returns its value.

        Raises:
            SimulationError: for an ``until`` event that can never
                trigger (queue drained first) or a bad target time.
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            finished = False

            def _mark(_: Event) -> None:
                nonlocal finished
                finished = True

            if until.triggered and not until._scheduled:
                return until.value
            until.callbacks.append(_mark)
            while not finished:
                if not self._queue:
                    raise SimulationError("run(until=event): queue drained first")
                self.step()
            if not until.ok:
                raise until.value
            return until.value
        target = float(until)
        if target < self.now:
            raise SimulationError(f"run(until={target}) is in the past (now={self.now})")
        while self._queue and self._queue[0][0] <= target:
            self.step()
        self.now = target
        return None


def all_of(env: Environment, events: Iterable[Event]) -> Event:
    """An event that triggers when every input event has triggered."""
    events = list(events)
    done = env.event()
    remaining = len(events)
    if remaining == 0:
        done.succeed([])
        return done
    values: list[Any] = [None] * remaining

    def make_callback(i: int) -> Callable[[Event], None]:
        def callback(ev: Event) -> None:
            nonlocal remaining
            if done.triggered:
                return  # a failed input already decided the aggregate
            if not ev.ok:
                done.fail(ev.value)
                return
            values[i] = ev.value
            remaining -= 1
            if remaining == 0:
                done.succeed(values)

        return callback

    for i, ev in enumerate(events):
        ev.callbacks.append(make_callback(i))
    return done
