"""Fast-path broadcast kernel: the reference semantics, none of the DES.

:func:`simulate_broadcast_fast` produces results **identical** to the
reference :func:`repro.sim.broadcast.simulate_broadcast` (``fast=False``)
for the same seed and parameters, but skips the generic
``Environment``/``Event``/``Process`` machinery entirely:

- the event queue is a flat ``heapq`` of ``(time, seq, kind, ap_id)``
  tuples — no ``Timeout`` objects, no callback lambdas, no dispatch;
- adjacency is pulled once from :class:`~repro.mesh.APGraph` as plain
  integer lists (:meth:`~repro.mesh.APGraph.adjacency_lists`), so the
  hot loop never touches a method;
- rebroadcast verdicts for stateless policies (flood, conduit,
  position-conduit) are resolved to a per-AP bitmap up front, memoising
  :class:`~repro.sim.broadcast.ConduitPolicy` across all APs of a
  building before the run;
- the built-in radios (:class:`UnitDiskRadio`, :class:`LossyRadio`)
  are inlined.

Determinism contract: RNG draws are consumed in exactly the order the
reference engine consumes them (per-neighbour loss draws at transmit
time, gossip/jitter draws at reception time), and the ``seq`` counter
increments exactly when the reference allocates a ``Timeout``, so the
tie-break order of simultaneous events matches and seeded runs are
bit-for-bit reproducible against the reference.  Stateful or
user-supplied policies and radios fall back to the same lazy calls the
reference makes, preserving the contract for them too.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush

from ..mesh import APGraph
from .columnar import frozen_epoch, policy_verdict_array, run_columnar
from .broadcast import (
    BroadcastResult,
    ConduitPolicy,
    FloodPolicy,
    PositionConduitPolicy,
    RebroadcastPolicy,
    SimParams,
    record_broadcast_metrics,
)
from .radio import LossyRadio, UnitDiskRadio

_RECEIVE = 0
_TRANSMIT = 1


def _precomputed_verdicts(
    policy: RebroadcastPolicy, graph: APGraph
) -> bytearray | None:
    """Per-AP rebroadcast bitmap for stateless policies, else None.

    Only exact types are eligible: a subclass may override
    ``should_rebroadcast`` with state (as :class:`GossipPolicy` does),
    in which case the caller must evaluate lazily, in reference order.
    """
    kind = type(policy)
    aps = graph.aps
    if kind is FloodPolicy:
        return bytearray(b"\x01" * len(aps))
    if kind is ConduitPolicy:
        # One geometry test per building (the policy memoises), splatted
        # across every AP of that building before the run starts.
        should = policy.should_rebroadcast
        return bytearray(1 if should(ap) else 0 for ap in aps)
    if kind is PositionConduitPolicy:
        contains = policy.conduits.contains
        return bytearray(1 if contains(ap.position) else 0 for ap in aps)
    return None


def simulate_broadcast_fast(
    graph: APGraph,
    source_ap: int,
    dest_building: int,
    policy: RebroadcastPolicy,
    rng: random.Random,
    radio: UnitDiskRadio | None = None,
    params: SimParams | None = None,
    compromised: frozenset[int] = frozenset(),
    dead_aps: frozenset[int] = frozenset(),
) -> BroadcastResult:
    """Drop-in fast replacement for the reference ``simulate_broadcast``.

    Same arguments, same semantics, same seeded results; see the module
    docstring for the equivalence contract.  ``dead_aps`` marks APs as
    physically absent without rebuilding the adjacency structure: dead
    receivers are skipped via a flat bytearray membership test *before*
    any per-neighbour loss draw, mirroring the reference engine's
    filter order exactly.

    Raises:
        ValueError: if the source AP is in ``dead_aps``.
    """
    if source_ap in dead_aps:
        raise ValueError(f"source AP {source_ap} is dead and cannot inject")
    if radio is None:
        radio = UnitDiskRadio()
    if params is None:
        params = SimParams()
    aps = graph.aps
    adjacency = graph.adjacency_lists()
    building_ids = graph.building_id_list()
    n = len(aps)
    is_dead: bytearray | None = None
    if dead_aps:
        is_dead = bytearray(n)
        for a in dead_aps:
            is_dead[a] = 1

    threshold = params.suppression_threshold
    jitter = params.jitter_s
    max_time = params.max_sim_time_s
    bounded = max_time != float("inf")

    radio_kind = type(radio)
    unit_disk = radio_kind is UnitDiskRadio
    lossy = radio_kind is LossyRadio
    tx_delay = radio.tx_delay_s if (unit_disk or lossy) else 0.0
    loss_p = radio.loss_probability if lossy else 0.0

    if unit_disk or lossy:
        # Freezable policy + built-in radio: the columnar group-event
        # kernel (same results, flat arrays, one heap entry per
        # transmission) takes over.  Stateful policies and custom
        # radios stay on the scalar loop below.
        verdict_array = policy_verdict_array(policy, graph)
        if verdict_array is not None:
            return run_columnar(
                frozen_epoch(graph, dead_aps),
                source_ap,
                graph.aps_in_building(dest_building),
                graph.building_id_list()[source_ap] == dest_building,
                verdict_array,
                rng,
                unit_disk,
                tx_delay,
                loss_p,
                params,
                compromised,
            )

    verdicts = _precomputed_verdicts(policy, graph)
    blackholes = compromised if compromised else None

    seen = bytearray(n)
    copies = [0] * n if threshold is not None else None
    heap: list[tuple[float, int, int, int]] = []
    seq = 0
    transmissions = receptions = duplicates = suppressed = 0
    transmitters: set[int] = set()
    heard: set[int] = set()
    delivered = False
    delivery_time: float | None = None

    rng_random = rng.random
    rng_uniform = rng.uniform
    push = heappush

    def do_transmit(now: float, ap_id: int) -> None:
        nonlocal transmissions, suppressed, seq
        if copies is not None and copies[ap_id] >= threshold:
            suppressed += 1
            return
        transmissions += 1
        transmitters.add(ap_id)
        audience = adjacency[ap_id]
        if is_dead is not None:
            audience = [v for v in audience if not is_dead[v]]
        if unit_disk:
            t = now + tx_delay
            for v in audience:
                push(heap, (t, seq, _RECEIVE, v))
                seq += 1
        elif lossy:
            t = now + tx_delay
            for v in audience:
                if rng_random() >= loss_p:
                    push(heap, (t, seq, _RECEIVE, v))
                    seq += 1
        else:
            for rec in radio.receptions(audience, rng):
                push(heap, (now + rec.delay_s, seq, _RECEIVE, rec.receiver_id))
                seq += 1

    # Source bookkeeping mirrors the reference: it counts as having the
    # packet, delivers locally when already in the destination building,
    # and always transmits once at t=0.
    seen[source_ap] = 1
    heard.add(source_ap)
    if building_ids[source_ap] == dest_building:
        delivered = True
        delivery_time = 0.0
    do_transmit(0.0, source_ap)

    while heap:
        time = heap[0][0]
        if bounded and time > max_time:
            break
        time, _, kind, ap_id = heappop(heap)
        if kind == _RECEIVE:
            receptions += 1
            if copies is not None:
                copies[ap_id] += 1
            if seen[ap_id]:
                duplicates += 1
                continue
            seen[ap_id] = 1
            heard.add(ap_id)
            if not delivered and building_ids[ap_id] == dest_building:
                delivered = True
                delivery_time = time
            if blackholes is not None and ap_id in blackholes:
                continue
            verdict = (
                verdicts[ap_id]
                if verdicts is not None
                else policy.should_rebroadcast(aps[ap_id])
            )
            if verdict:
                delay = rng_uniform(0.0, jitter) if jitter > 0 else 0.0
                push(heap, (time + delay, seq, _TRANSMIT, ap_id))
                seq += 1
        else:
            do_transmit(time, ap_id)

    result = BroadcastResult(
        delivered=delivered,
        delivery_time_s=delivery_time,
        transmissions=transmissions,
        receptions=receptions,
        duplicates=duplicates,
        suppressed=suppressed,
        transmitters=transmitters,
        heard=heard,
    )
    record_broadcast_metrics(result)
    return result
