"""Columnar broadcast core: frozen worlds, batched flows, SoA kernel.

This module is the epoch-scale complement to :mod:`repro.sim.fastpath`.
The scenario driver simulates ~16 independent flows per epoch against
the *same* mesh and the same dead-AP set; rebuilding per-flow Python
structures 16x per epoch dominated the runtime.  Here the mutable world
is **frozen once** into flat numpy arrays and every flow of the epoch
runs against the shared frozen state:

- :func:`frozen_epoch` — int32 CSR adjacency with the dead APs already
  filtered out, cached per ``(graph, dead_aps)`` so repeated flows (and
  repeated epochs with an unchanged dead set) freeze nothing;
- :func:`policy_verdict_array` — per-AP rebroadcast bitmaps computed
  columnar-ly: conduit membership goes through the bit-exact
  :func:`repro.geometry.path_overlap_mask` kernel over the city's
  cached :class:`~repro.geometry.PolygonColumns` instead of one scalar
  ``intersects_polygon`` call per building (the old hot spot — ~98 of
  107 bench seconds);
- :func:`simulate_broadcast_batch` — the epoch entry point: freeze
  once, then run every flow with its own policy/RNG/destination.

Equivalence contract
--------------------

Results are **bit-for-bit identical** to the reference DES engine
(:func:`repro.sim.broadcast.simulate_broadcast` with ``fast=False``)
for the same seeds.  The kernel exploits one structural fact: all
receptions pushed by a single transmission share one timestamp and a
*contiguous* block of sequence numbers, so in the heap's total
``(time, seq)`` order no other event can interleave with them.  The
whole block therefore becomes ONE heap entry (a view into the frozen
CSR), and its per-reception effects (copy counters, duplicate
accounting, delivery, rebroadcast selection) are applied with
vectorized integer ops — which are exact, so equality with the scalar
engine is structural, not approximate.  RNG draws stay in reference
order: per-neighbour loss draws happen at transmit time in adjacency
order, jitter draws at reception time in filtered audience order.

Stateful policies (gossip, user classes), pre-seeded ``ConduitPolicy``
memos, and custom radios cannot be expressed as frozen bitmaps; those
flows transparently fall back to the scalar fastpath kernel, which
shares the same contract.

Lifecycle and invalidation: an :class:`~repro.mesh.APGraph` is
immutable after construction (bridge deployments build a *new* graph),
so frozen CSR arrays attached to a graph never go stale.  Routing-side
mutations bump ``BuildingGraph.version`` and yield *new*
:class:`~repro.geometry.ConduitPath` values, which miss the
value-keyed verdict cache naturally; stale entries age out by bound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Sequence

import numpy as np

from ..geometry import PolygonColumns, path_overlap_mask
from ..geometry.columnar import _contains_lanes
from ..mesh import APGraph
from ..obs import REGISTRY
from .broadcast import (
    BroadcastResult,
    ConduitPolicy,
    FloodPolicy,
    PositionConduitPolicy,
    RebroadcastPolicy,
    SimParams,
    record_broadcast_metrics,
)
from .radio import LossyRadio, UnitDiskRadio

_RECEIVE = 0
_TRANSMIT = 1

#: Bound on cached frozen epochs per graph: a scenario run touches one
#: dead set per epoch and replays it across all of the epoch's flows.
_EPOCH_CACHE_CAP = 8
#: Bound on cached verdict masks per city (one per distinct conduit
#: path: initial flows + replans of a scenario run fit comfortably).
_VERDICT_CACHE_CAP = 256

#: Flows that silently left the columnar path for the scalar fastpath
#: (stateful policies such as gossip, pre-seeded memos, custom radios).
#: The fallback is bit-exact but ~an order of magnitude slower, so a
#: batch that quietly degrades should be visible: the counter appears
#: in every ``REGISTRY.snapshot()`` (``repro obs show``, the service
#: ``/v1/stats`` endpoint) like any other ``sim.*`` stat.
_M_SCALAR_FALLBACKS = REGISTRY.counter("sim.columnar.scalar_fallbacks")
#: Flows the columnar kernel actually ran (the healthy counterpart).
_M_COLUMNAR_FLOWS = REGISTRY.counter("sim.columnar.flows")


# ----------------------------------------------------------------------
# Frozen world state
# ----------------------------------------------------------------------
@dataclass
class FrozenEpoch:
    """One epoch's immutable simulation state, in flat arrays.

    ``indptr``/``indices`` form the alive-filtered CSR adjacency: the
    neighbours of AP ``i`` are ``indices[indptr[i]:indptr[i+1]]``, in
    the same order as ``graph.neighbors(i)`` minus the dead — which is
    exactly the order the reference engine walks after its own dead
    filter, so loss draws and sequence numbers line up.
    """

    n: int
    indptr: np.ndarray  # int64, n + 1
    indices: np.ndarray  # int32, alive-filtered
    dead_mask: np.ndarray  # uint8, 1 = dead
    dead_aps: frozenset[int] = field(default_factory=frozenset)


def frozen_epoch(graph: APGraph, dead_aps: frozenset[int]) -> FrozenEpoch:
    """Freeze one epoch: dead-filtered CSR adjacency, cached per graph.

    The cache key is the dead set itself (a ``frozenset``, which caches
    its own hash); scenario epochs reuse one dead set across all flows,
    so freezing is paid once per *distinct* damage state, not per flow.
    """
    cache = getattr(graph, "_columnar_epochs", None)
    if cache is None:
        cache = {}
        graph._columnar_epochs = cache
    frozen = cache.get(dead_aps)
    if frozen is not None:
        return frozen
    indptr, indices = graph.csr()
    n = len(graph)
    dead_mask = np.zeros(n, dtype=np.uint8)
    if dead_aps:
        dead_mask[list(dead_aps)] = 1
        keep = dead_mask[indices] == 0
        # Per-row kept counts via prefix sums (reduceat mishandles
        # empty rows); the filter preserves within-row order.
        prefix = np.zeros(len(indices) + 1, dtype=np.int64)
        np.cumsum(keep, out=prefix[1:])
        counts = prefix[indptr[1:]] - prefix[indptr[:-1]]
        alive_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=alive_indptr[1:])
        frozen = FrozenEpoch(
            n=n,
            indptr=alive_indptr,
            indices=indices[keep],
            dead_mask=dead_mask,
            dead_aps=dead_aps,
        )
    else:
        frozen = FrozenEpoch(
            n=n,
            indptr=indptr,
            indices=indices,
            dead_mask=dead_mask,
            dead_aps=dead_aps,
        )
    if len(cache) >= _EPOCH_CACHE_CAP:
        cache.clear()
    cache[dead_aps] = frozen
    return frozen


# ----------------------------------------------------------------------
# Columnar rebroadcast bitmaps
# ----------------------------------------------------------------------
def _city_columns(city) -> tuple[PolygonColumns, list, dict[int, int]]:
    """The city's footprints as (columns, polygons, building-id -> row)."""
    cached = getattr(city, "_polygon_columns", None)
    if cached is not None:
        return cached
    polygons = [b.polygon for b in city.buildings]
    cols = PolygonColumns(polygons)
    row_of = {b.id: i for i, b in enumerate(city.buildings)}
    cached = (cols, polygons, row_of)
    city._polygon_columns = cached
    return cached


def _building_rows(graph: APGraph, city, row_of: dict[int, int]) -> np.ndarray:
    """Footprint row index per AP, cached per (graph, city)."""
    cached = getattr(graph, "_columnar_building_rows", None)
    if cached is not None and cached[0] is city:
        return cached[1]
    rows = np.fromiter(
        (row_of[b] for b in graph.building_id_list()),
        dtype=np.int64,
        count=len(graph),
    )
    graph._columnar_building_rows = (city, rows)
    return rows


def _conduit_building_mask(policy: ConduitPolicy) -> np.ndarray:
    """Per-building conduit-overlap verdicts, cached per conduit path."""
    city = policy.city
    cols, polygons, _row_of = _city_columns(city)
    cache = getattr(city, "_verdict_mask_cache", None)
    if cache is None:
        cache = {}
        city._verdict_mask_cache = cache
    mask = cache.get(policy.conduits)
    if mask is None:
        mask = path_overlap_mask(cols, policy.conduits, polygons=polygons)
        if len(cache) >= _VERDICT_CACHE_CAP:
            cache.clear()
        cache[policy.conduits] = mask
    return mask


def _position_verdicts(policy: PositionConduitPolicy, graph: APGraph) -> np.ndarray:
    """Vectorized ``conduits.contains(ap.position)`` per AP, bit-exact."""
    px, py = graph.position_arrays()
    out = np.zeros(len(graph), dtype=bool)
    for rect in policy.conduits.rects:
        undecided = ~out
        if not undecided.any():
            break
        if (rect.end - rect.start).norm_sq() == 0.0:
            # Degenerate disc leg: scalar fallback (hypot-rounding
            # subtleties live here, and these legs are rare).
            contains = rect.contains
            for i in np.nonzero(undecided)[0].tolist():
                if contains(graph.aps[i].position):
                    out[i] = True
        else:
            out[undecided] |= _contains_lanes(rect, px[undecided], py[undecided])
    return out


def policy_verdict_array(
    policy: RebroadcastPolicy, graph: APGraph
) -> np.ndarray | None:
    """Per-AP rebroadcast verdicts as a bool array, or None.

    ``None`` means the policy cannot be frozen (stateful, user-defined,
    or a :class:`ConduitPolicy` with a pre-seeded memo whose entries
    must be honoured) and the caller has to fall back to the scalar
    kernel's lazy evaluation.
    """
    kind = type(policy)
    if kind is FloodPolicy:
        return np.ones(len(graph), dtype=bool)
    if kind is ConduitPolicy:
        if policy._memo:
            return None
        building_mask = _conduit_building_mask(policy)
        rows = _building_rows(graph, policy.city, _city_columns(policy.city)[2])
        return building_mask[rows]
    if kind is PositionConduitPolicy:
        return _position_verdicts(policy, graph)
    return None


# ----------------------------------------------------------------------
# The SoA group-event kernel
# ----------------------------------------------------------------------
def run_columnar(
    frozen: FrozenEpoch,
    source_ap: int,
    dest_aps: Sequence[int],
    source_in_dest: bool,
    verdicts: np.ndarray,
    rng: random.Random,
    unit_disk: bool,
    tx_delay: float,
    loss_p: float,
    params: SimParams,
    compromised: frozenset[int],
) -> BroadcastResult:
    """One broadcast against a frozen epoch; reference-identical.

    Heap entries are ``(time, seq, kind, payload)``: a ``_TRANSMIT``
    carries one AP id, a ``_RECEIVE`` carries the whole audience of one
    transmission as a CSR view, keyed by the *first* sequence number of
    its contiguous block.  Sequence numbers are unique across entries,
    so tuple comparison never reaches the payload.
    """
    n = frozen.n
    indptr = frozen.indptr
    indices = frozen.indices
    threshold = params.suppression_threshold
    jitter = params.jitter_s
    max_time = params.max_sim_time_s
    bounded = max_time != float("inf")

    seen = np.zeros(n, dtype=bool)
    copies = np.zeros(n, dtype=np.int64) if threshold is not None else None
    blackholes = None
    if compromised:
        blackholes = np.zeros(n, dtype=bool)
        blackholes[list(compromised)] = True
    is_dest = np.zeros(n, dtype=bool)
    if len(dest_aps):
        is_dest[list(dest_aps)] = True

    heap: list[tuple[float, int, int, object]] = []
    seq = 0
    transmissions = receptions = duplicates = suppressed = 0
    transmitters: set[int] = set()
    delivered = False
    delivery_time: float | None = None

    rng_random = rng.random
    rng_uniform = rng.uniform
    push = heappush

    def do_transmit(now: float, ap_id: int) -> None:
        nonlocal transmissions, suppressed, seq
        if copies is not None and copies[ap_id] >= threshold:
            suppressed += 1
            return
        transmissions += 1
        transmitters.add(ap_id)
        start = indptr[ap_id]
        end = indptr[ap_id + 1]
        k = int(end - start)
        if k == 0:
            return
        if unit_disk:
            push(heap, (now + tx_delay, seq, _RECEIVE, indices[start:end]))
            seq += k
        else:  # lossy: one draw per alive neighbour, adjacency order
            draws = np.fromiter(
                (rng_random() for _ in range(k)), dtype=np.float64, count=k
            )
            kept = indices[start:end][draws >= loss_p]
            if kept.size:
                push(heap, (now + tx_delay, seq, _RECEIVE, kept))
                seq += kept.size

    seen[source_ap] = True
    if source_in_dest:
        delivered = True
        delivery_time = 0.0
    do_transmit(0.0, source_ap)

    while heap:
        time = heap[0][0]
        if bounded and time > max_time:
            break
        time, _first_seq, kind, payload = heappop(heap)
        if kind == _RECEIVE:
            audience = payload
            k = audience.size
            receptions += k
            if copies is not None:
                copies[audience] += 1
            fresh = audience[~seen[audience]]
            duplicates += k - fresh.size
            if fresh.size == 0:
                continue
            seen[fresh] = True
            if not delivered and is_dest[fresh].any():
                delivered = True
                delivery_time = time
            rebroadcasters = fresh
            if blackholes is not None:
                rebroadcasters = rebroadcasters[~blackholes[rebroadcasters]]
            rebroadcasters = rebroadcasters[verdicts[rebroadcasters]]
            if jitter > 0.0:
                for v in rebroadcasters.tolist():
                    push(heap, (time + rng_uniform(0.0, jitter), seq, _TRANSMIT, v))
                    seq += 1
            else:
                for v in rebroadcasters.tolist():
                    push(heap, (time, seq, _TRANSMIT, v))
                    seq += 1
        else:
            do_transmit(time, payload)

    result = BroadcastResult(
        delivered=delivered,
        delivery_time_s=delivery_time,
        transmissions=transmissions,
        receptions=receptions,
        duplicates=duplicates,
        suppressed=suppressed,
        transmitters=transmitters,
        heard=set(np.nonzero(seen)[0].tolist()),
    )
    record_broadcast_metrics(result)
    return result


# ----------------------------------------------------------------------
# Batch entry point
# ----------------------------------------------------------------------
@dataclass
class FlowSpec:
    """One flow of an epoch batch: who sends what where, with what RNG."""

    source_ap: int
    dest_building: int
    policy: RebroadcastPolicy
    rng: random.Random
    compromised: frozenset[int] = frozenset()


def simulate_broadcast_batch(
    graph: APGraph,
    flows: Sequence[FlowSpec],
    radio: UnitDiskRadio | None = None,
    params: SimParams | None = None,
    dead_aps: frozenset[int] = frozenset(),
) -> list[BroadcastResult]:
    """Simulate an epoch's flows against one shared frozen world.

    The mesh is frozen once (dead-filtered CSR + dead mask) and each
    flow runs with its own policy, RNG, and destination.  Results are
    byte-identical to calling :func:`~repro.sim.simulate_broadcast`
    (``fast=True``) once per flow with the same arguments — flows that
    the columnar kernel cannot express (stateful policies, custom
    radios) fall back to the scalar fastpath per flow.

    Raises:
        ValueError: if any flow's source AP is dead (checked up front,
            before any flow runs).
    """
    for flow in flows:
        if flow.source_ap in dead_aps:
            raise ValueError(
                f"source AP {flow.source_ap} is dead and cannot inject"
            )
    if radio is None:
        radio = UnitDiskRadio()
    if params is None:
        params = SimParams()
    radio_kind = type(radio)
    unit_disk = radio_kind is UnitDiskRadio
    lossy = radio_kind is LossyRadio

    frozen: FrozenEpoch | None = None
    results: list[BroadcastResult] = []
    for flow in flows:
        verdicts = (
            policy_verdict_array(flow.policy, graph)
            if (unit_disk or lossy)
            else None
        )
        if verdicts is None:
            from .fastpath import simulate_broadcast_fast

            _M_SCALAR_FALLBACKS.inc()
            results.append(
                simulate_broadcast_fast(
                    graph,
                    flow.source_ap,
                    flow.dest_building,
                    flow.policy,
                    flow.rng,
                    radio=radio,
                    params=params,
                    compromised=flow.compromised,
                    dead_aps=dead_aps,
                )
            )
            continue
        if frozen is None:
            frozen = frozen_epoch(graph, dead_aps)
        _M_COLUMNAR_FLOWS.inc()
        building_ids = graph.building_id_list()
        results.append(
            run_columnar(
                frozen,
                flow.source_ap,
                graph.aps_in_building(flow.dest_building),
                building_ids[flow.source_ap] == flow.dest_building,
                verdicts,
                flow.rng,
                unit_disk,
                radio.tx_delay_s,
                radio.loss_probability if lossy else 0.0,
                params,
                flow.compromised,
            )
        )
    return results
