"""Discrete-event simulation: engine, radio models, broadcast runs."""

from .collisions import CollisionResult, simulate_broadcast_with_collisions
from .traffic import (
    MessageOutcome,
    TrafficMessage,
    TrafficResult,
    poisson_workload,
    simulate_traffic,
    simulate_traffic_batch,
)
from .broadcast import (
    BroadcastResult,
    ConduitPolicy,
    FloodPolicy,
    GossipPolicy,
    RebroadcastPolicy,
    SimParams,
    simulate_broadcast,
    transmission_overhead,
)
from .columnar import (
    FlowSpec,
    FrozenEpoch,
    frozen_epoch,
    simulate_broadcast_batch,
)
from .engine import Environment, Event, Process, SimulationError, Timeout, all_of
from .fastpath import simulate_broadcast_fast
from .radio import (
    DEFAULT_JITTER_S,
    DEFAULT_TX_DELAY_S,
    FadingDetection,
    LossyRadio,
    Reception,
    UnitDiskRadio,
)

__all__ = [
    "BroadcastResult",
    "CollisionResult",
    "ConduitPolicy",
    "DEFAULT_JITTER_S",
    "DEFAULT_TX_DELAY_S",
    "Environment",
    "Event",
    "FadingDetection",
    "FloodPolicy",
    "FlowSpec",
    "FrozenEpoch",
    "frozen_epoch",
    "GossipPolicy",
    "LossyRadio",
    "MessageOutcome",
    "Process",
    "Reception",
    "RebroadcastPolicy",
    "SimParams",
    "SimulationError",
    "Timeout",
    "TrafficMessage",
    "TrafficResult",
    "UnitDiskRadio",
    "all_of",
    "poisson_workload",
    "simulate_broadcast",
    "simulate_broadcast_batch",
    "simulate_broadcast_fast",
    "simulate_broadcast_with_collisions",
    "simulate_traffic",
    "simulate_traffic_batch",
    "transmission_overhead",
]
