"""Multi-message traffic simulation: what load can a DFN carry?

The paper argues low-bandwidth applications suffice in disasters; the
natural follow-up is how many concurrent messages the mesh sustains.
This simulator runs *many* packets through the shared air under the
overlap-collision MAC: transmissions of different messages interfere,
so delivery rate degrades as offered load grows — the capacity curve.
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Sequence

from ..mesh import APGraph
from .broadcast import RebroadcastPolicy, SimParams
from .columnar import FlowSpec
from .engine import Environment
from .radio import DEFAULT_TX_DELAY_S


@dataclass(frozen=True)
class TrafficMessage:
    """One offered message."""

    msg_id: int
    start_s: float
    source_ap: int
    dest_building: int
    policy: RebroadcastPolicy


@dataclass
class MessageOutcome:
    """Per-message delivery record."""

    msg_id: int
    delivered: bool = False
    delivery_time_s: float | None = None
    transmissions: int = 0


@dataclass
class TrafficResult:
    """Aggregate outcome of a traffic run."""

    outcomes: dict[int, MessageOutcome] = field(default_factory=dict)
    total_transmissions: int = 0
    total_collisions: int = 0
    total_receptions: int = 0

    @property
    def offered(self) -> int:
        return len(self.outcomes)

    @property
    def delivered(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.delivered)

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.offered if self.offered else 0.0

    @property
    def collision_rate(self) -> float:
        total = self.total_receptions + self.total_collisions
        return self.total_collisions / total if total else 0.0


class _AirLog:
    """Per-AP transmission intervals, kept sorted for overlap checks."""

    def __init__(self) -> None:
        self._intervals: dict[int, list[tuple[float, float]]] = {}

    def add(self, ap_id: int, start: float, end: float) -> None:
        insort(self._intervals.setdefault(ap_id, []), (start, end))

    def overlaps(self, ap_id: int, start: float, end: float, skip: tuple[float, float] | None = None) -> bool:
        intervals = self._intervals.get(ap_id)
        if not intervals:
            return False
        # Find the first interval whose start could matter.
        i = bisect_left(intervals, (start, float("-inf")))
        # Check the neighbour on the left too (it may span into us).
        if i > 0:
            i -= 1
        for s, e in intervals[i:]:
            if s >= end:
                break
            if e > start and (s, e) != skip:
                return True
        return False


def simulate_traffic(
    graph: APGraph,
    messages: list[TrafficMessage],
    rng: random.Random,
    frame_time_s: float = DEFAULT_TX_DELAY_S,
    params: SimParams | None = None,
    dead_aps: frozenset[int] = frozenset(),
) -> TrafficResult:
    """Run many messages through the shared collision channel.

    Semantics: each message behaves like
    :func:`simulate_broadcast_with_collisions`, but all messages share
    the air — a frame is lost when *any* other transmission (of any
    message) audible at the receiver overlaps it.  ``dead_aps`` removes
    APs from the mesh for the whole run (a disaster epoch's outage
    set): a dead AP never transmits, receives, or relays.

    Raises:
        ValueError: for a non-positive frame time, unsorted ids, or a
            dead source AP.
    """
    if frame_time_s <= 0:
        raise ValueError("frame time must be positive")
    if params is None:
        params = SimParams()
    for message in messages:
        if message.source_ap in dead_aps:
            raise ValueError(
                f"message {message.msg_id} sources from dead AP "
                f"{message.source_ap}"
            )
    env = Environment()
    air = _AirLog()
    seen: set[tuple[int, int]] = set()  # (msg_id, ap_id)
    result = TrafficResult()
    for message in messages:
        if message.msg_id in result.outcomes:
            raise ValueError(f"duplicate message id {message.msg_id}")
        result.outcomes[message.msg_id] = MessageOutcome(msg_id=message.msg_id)

    by_id = {m.msg_id: m for m in messages}

    def transmit(ap_id: int, msg_id: int) -> None:
        start = env.now
        end = start + frame_time_s
        air.add(ap_id, start, end)
        outcome = result.outcomes[msg_id]
        outcome.transmissions += 1
        result.total_transmissions += 1
        for v in graph.neighbors(ap_id):
            if v in dead_aps:
                continue
            ev = env.timeout(frame_time_s)
            ev.callbacks.append(
                lambda _e, rx=v, tx=ap_id, m=msg_id, s=start, t=end: receive(rx, tx, m, s, t)
            )

    def receive(v: int, u: int, msg_id: int, start: float, end: float) -> None:
        # Half-duplex + interference from any message's transmissions.
        if air.overlaps(v, start, end):
            result.total_collisions += 1
            return
        for w in graph.neighbors(v):
            skip = (start, end) if w == u else None
            if air.overlaps(w, start, end, skip=skip):
                result.total_collisions += 1
                return
        result.total_receptions += 1
        if (msg_id, v) in seen:
            return
        seen.add((msg_id, v))
        message = by_id[msg_id]
        outcome = result.outcomes[msg_id]
        ap = graph.aps[v]
        if ap.building_id == message.dest_building and not outcome.delivered:
            outcome.delivered = True
            outcome.delivery_time_s = env.now - message.start_s
        if message.policy.should_rebroadcast(ap):
            delay = rng.uniform(0.0, params.jitter_s) if params.jitter_s > 0 else 0.0
            ev = env.timeout(delay)
            ev.callbacks.append(lambda _e, tx=v, m=msg_id: transmit(tx, m))

    def inject(message: TrafficMessage) -> None:
        seen.add((message.msg_id, message.source_ap))
        outcome = result.outcomes[message.msg_id]
        if graph.aps[message.source_ap].building_id == message.dest_building:
            outcome.delivered = True
            outcome.delivery_time_s = 0.0
        transmit(message.source_ap, message.msg_id)

    for message in messages:
        ev = env.timeout(message.start_s)
        ev.callbacks.append(lambda _e, m=message: inject(m))
    env.run(until=params.max_sim_time_s)
    return result


def simulate_traffic_batch(
    graph: APGraph,
    flows: Sequence[FlowSpec],
    start_times: Sequence[float],
    rng: random.Random,
    frame_time_s: float = DEFAULT_TX_DELAY_S,
    params: SimParams | None = None,
    dead_aps: frozenset[int] = frozenset(),
) -> list[MessageOutcome]:
    """Run an epoch's flows through the *shared* collision channel.

    The congestion-aware sibling of
    :func:`~repro.sim.columnar.simulate_broadcast_batch`: the same
    :class:`~repro.sim.columnar.FlowSpec` inputs, but instead of each
    flow broadcasting through a private air, all of the epoch's flows
    contend for the channel.  Each flow becomes one
    :class:`TrafficMessage` injected at ``start_times[i]``; the closer
    together the start times, the more the flows collide and the lower
    the delivery rate — the coupling a scenario's congestion stage
    measures.

    Returns one :class:`MessageOutcome` per flow, in flow order.

    Raises:
        ValueError: when the start-time list does not match the flows,
            or for the :func:`simulate_traffic` error cases.
    """
    if len(start_times) != len(flows):
        raise ValueError(
            f"{len(flows)} flows but {len(start_times)} start times"
        )
    messages = [
        TrafficMessage(
            msg_id=i,
            start_s=start_times[i],
            source_ap=flow.source_ap,
            dest_building=flow.dest_building,
            policy=flow.policy,
        )
        for i, flow in enumerate(flows)
    ]
    result = simulate_traffic(
        graph,
        messages,
        rng,
        frame_time_s=frame_time_s,
        params=params,
        dead_aps=dead_aps,
    )
    return [result.outcomes[i] for i in range(len(flows))]


def poisson_workload(
    graph: APGraph,
    building_ids: list[int],
    rate_per_s: float,
    duration_s: float,
    make_policy,
    rng: random.Random,
) -> list[TrafficMessage]:
    """A Poisson arrival workload between random building pairs.

    Args:
        graph: the mesh (sources are drawn from its AP-bearing buildings).
        building_ids: candidate endpoint buildings.
        rate_per_s: mean message arrivals per second.
        duration_s: workload horizon.
        make_policy: callable ``(src_building, dst_building) -> policy``
            (returns None to skip unroutable pairs).
        rng: randomness for arrivals and pair choice.

    Raises:
        ValueError: for non-positive rate/duration or too few buildings.
    """
    if rate_per_s <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    if len(building_ids) < 2:
        raise ValueError("need at least two candidate buildings")
    messages: list[TrafficMessage] = []
    t = 0.0
    msg_id = 0
    while True:
        t += rng.expovariate(rate_per_s)
        if t >= duration_s:
            break
        src, dst = rng.sample(building_ids, 2)
        src_aps = graph.aps_in_building(src)
        if not src_aps:
            continue
        policy = make_policy(src, dst)
        if policy is None:
            continue
        messages.append(
            TrafficMessage(
                msg_id=msg_id,
                start_s=t,
                source_ap=src_aps[0],
                dest_building=dst,
                policy=policy,
            )
        )
        msg_id += 1
    return messages
