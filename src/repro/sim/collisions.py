"""Collision-aware broadcast simulation (higher-fidelity MAC model).

The paper's simulator (and :func:`repro.sim.broadcast.simulate_broadcast`)
treats every in-range reception as successful; §6 lists wireless channel
congestion among the effects a higher-fidelity simulation should add.
This module adds the first-order version: transmissions occupy the air
for a frame time, and a receiver decodes a frame **iff no other
transmission it can hear (including its own) overlaps the frame** — the
classic collision model without capture.

Rebroadcast jitter is what keeps a broadcast protocol alive under this
model; the jitter ablation bench quantifies exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..mesh import APGraph
from .broadcast import RebroadcastPolicy, SimParams
from .engine import Environment
from .radio import DEFAULT_TX_DELAY_S


@dataclass
class CollisionResult:
    """Outcome of one collision-aware broadcast."""

    delivered: bool
    delivery_time_s: float | None
    transmissions: int
    receptions: int
    collisions: int
    heard: set[int] = field(default_factory=set)
    transmitters: set[int] = field(default_factory=set)

    @property
    def collision_rate(self) -> float:
        """Fraction of frame arrivals destroyed by collisions."""
        total = self.receptions + self.collisions
        return self.collisions / total if total else 0.0


def simulate_broadcast_with_collisions(
    graph: APGraph,
    source_ap: int,
    dest_building: int,
    policy: RebroadcastPolicy,
    rng: random.Random,
    frame_time_s: float = DEFAULT_TX_DELAY_S,
    params: SimParams | None = None,
    compromised: frozenset[int] = frozenset(),
) -> CollisionResult:
    """Simulate one broadcast under the overlap-collision MAC model.

    Semantics match :func:`simulate_broadcast` except that a frame from
    ``u`` arriving at ``v`` is lost when any other transmission audible
    at ``v`` — a neighbour's, or ``v``'s own (half-duplex) — overlaps
    the frame's air time.

    Raises:
        ValueError: for a non-positive frame time.
    """
    if frame_time_s <= 0:
        raise ValueError("frame time must be positive")
    if params is None:
        params = SimParams()
    env = Environment()
    aps = graph.aps
    seen: set[int] = set()
    # Air-time log per transmitter: (start, end) intervals.  Event
    # ordering guarantees that when a frame *ends* at time t, every
    # transmission starting at or before t is already logged.
    tx_log: dict[int, list[tuple[float, float]]] = {}
    result = CollisionResult(
        delivered=False,
        delivery_time_s=None,
        transmissions=0,
        receptions=0,
        collisions=0,
    )

    def overlaps(intervals: list[tuple[float, float]], start: float, end: float) -> bool:
        return any(s < end and e > start for s, e in intervals)

    def transmit(u: int) -> None:
        start = env.now
        end = start + frame_time_s
        tx_log.setdefault(u, []).append((start, end))
        result.transmissions += 1
        result.transmitters.add(u)
        for v in graph.neighbors(u):
            ev = env.timeout(frame_time_s)
            ev.callbacks.append(
                lambda _e, rx=v, tx=u, s=start, t=end: receive(rx, tx, s, t)
            )

    def receive(v: int, u: int, start: float, end: float) -> None:
        # Half-duplex: v cannot decode while itself transmitting.
        if overlaps(tx_log.get(v, []), start, end):
            result.collisions += 1
            return
        # Any other audible transmission overlapping the frame kills it.
        for w in graph.neighbors(v):
            if w == u:
                continue
            if overlaps(tx_log.get(w, []), start, end):
                result.collisions += 1
                return
        result.receptions += 1
        if v in seen:
            return
        seen.add(v)
        result.heard.add(v)
        ap = aps[v]
        if ap.building_id == dest_building and not result.delivered:
            result.delivered = True
            result.delivery_time_s = env.now
        if v in compromised:
            return
        if policy.should_rebroadcast(ap):
            delay = rng.uniform(0.0, params.jitter_s) if params.jitter_s > 0 else 0.0
            ev = env.timeout(delay)
            ev.callbacks.append(lambda _e, tx=v: transmit(tx))

    seen.add(source_ap)
    result.heard.add(source_ap)
    if aps[source_ap].building_id == dest_building:
        result.delivered = True
        result.delivery_time_s = 0.0
    transmit(source_ap)
    env.run(until=params.max_sim_time_s)
    return result
