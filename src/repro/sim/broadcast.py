"""Event-driven simulation of one CityMesh broadcast (§4).

A packet is injected at a source AP; every receiving AP applies a
:class:`RebroadcastPolicy` (for CityMesh, conduit membership) and, if
positive, rebroadcasts once after a small random jitter.  The
simulation records delivery to the destination building and the total
number of transmissions — the numerator of the paper's transmission-
overhead metric.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Protocol

from ..city import City
from ..core import ConduitMembership, PacketHeader
from ..geometry import ConduitPath
from ..mesh import APGraph, AccessPoint
from ..obs import REGISTRY
from .engine import Environment
from .radio import DEFAULT_JITTER_S, UnitDiskRadio

# Registry instruments shared by both engines (reference and fastpath).
# Flushed once per simulated broadcast from the finished result — the
# event loops themselves carry zero instrumentation overhead.
_M_BROADCASTS = REGISTRY.counter("sim.broadcasts")
_M_EVENTS = REGISTRY.counter("sim.events_processed")
_M_TX = REGISTRY.counter("sim.transmissions")
_M_REBROADCASTS = REGISTRY.counter("sim.rebroadcasts")
_M_SUPPRESSED = REGISTRY.counter("sim.suppressed")
_M_DELIVERED = REGISTRY.counter("sim.delivered")


def record_broadcast_metrics(result: "BroadcastResult") -> None:
    """Flush one finished broadcast's accounting into the registry.

    Events processed = receptions + transmissions (every queue pop the
    engine dispatched); rebroadcasts exclude the source's mandatory
    first transmission.
    """
    _M_BROADCASTS.inc()
    _M_EVENTS.inc(result.receptions + result.transmissions)
    _M_TX.inc(result.transmissions)
    if result.transmissions > 0:
        _M_REBROADCASTS.inc(result.transmissions - 1)
    _M_SUPPRESSED.inc(result.suppressed)
    if result.delivered:
        _M_DELIVERED.inc()


class RebroadcastPolicy(Protocol):
    """Decides whether an AP that just received a packet repeats it."""

    def should_rebroadcast(self, ap: AccessPoint) -> bool:
        """True if this AP should rebroadcast the packet once."""
        ...


@dataclass
class ConduitPolicy:
    """CityMesh's policy: rebroadcast iff the AP's *building* falls
    within the packet's conduits.

    §3: "Only APs in buildings that fall within the geographic area of
    the conduits … rebroadcast"; §4 attributes the 13x overhead to
    "all the APs within a building rebroadcast".  Membership is thus
    decided per building — the footprint overlaps a conduit — which
    every AP can evaluate from the shared map plus its own building id.
    The per-building verdict is memoised because a packet triggers the
    same lookup at every AP of a building.
    """

    conduits: ConduitPath
    city: City
    _memo: dict[int, bool] = field(default_factory=dict, repr=False)

    @staticmethod
    def from_header(
        membership: ConduitMembership, header: PacketHeader, city: City
    ) -> "ConduitPolicy":
        """Build the policy the way a real AP would: decode and look up."""
        return ConduitPolicy(conduits=membership.conduits_of(header), city=city)

    def should_rebroadcast(self, ap: AccessPoint) -> bool:
        verdict = self._memo.get(ap.building_id)
        if verdict is None:
            footprint = self.city.building(ap.building_id).polygon
            verdict = self.conduits.intersects_polygon(footprint)
            self._memo[ap.building_id] = verdict
        return verdict


@dataclass(frozen=True)
class PositionConduitPolicy:
    """Ablation variant: membership by exact AP position.

    Stricter than the paper's building-level rule — only APs whose own
    coordinates fall inside a conduit rebroadcast.  Cuts overhead but
    breaks conduit connectivity when conduits clip buildings, which is
    the behaviour the paper's building-level rule avoids.
    """

    conduits: ConduitPath

    def should_rebroadcast(self, ap: AccessPoint) -> bool:
        return self.conduits.contains(ap.position)


@dataclass(frozen=True)
class FloodPolicy:
    """Blind flooding: every AP rebroadcasts everything once."""

    def should_rebroadcast(self, ap: AccessPoint) -> bool:
        return True


@dataclass
class GossipPolicy:
    """Probabilistic gossip: rebroadcast with fixed probability ``p``."""

    p: float
    rng: random.Random

    def __post_init__(self) -> None:
        if not 0 <= self.p <= 1:
            raise ValueError(f"gossip probability must be in [0, 1], got {self.p}")

    def should_rebroadcast(self, ap: AccessPoint) -> bool:
        return self.rng.random() < self.p


@dataclass
class SimParams:
    """Knobs of the broadcast simulation.

    ``suppression_threshold`` enables counter-based duplicate
    suppression (the classic broadcast-storm mitigation): an AP whose
    rebroadcast is pending cancels it if it has already heard the same
    packet at least that many times when its jitter timer fires.  The
    redundant copies prove the neighbourhood is covered, so skipping
    the transmission is nearly free — this is one concrete instance of
    §4's "we are confident that this overhead can be reduced".  ``None``
    (default) reproduces the paper's behaviour exactly.
    """

    jitter_s: float = DEFAULT_JITTER_S
    max_sim_time_s: float = 120.0
    suppression_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.jitter_s < 0:
            raise ValueError("jitter must be non-negative")
        if self.max_sim_time_s <= 0:
            raise ValueError("simulation horizon must be positive")
        if self.suppression_threshold is not None and self.suppression_threshold < 1:
            raise ValueError("suppression threshold must be at least 1")


@dataclass
class BroadcastResult:
    """Outcome of one simulated broadcast."""

    delivered: bool
    delivery_time_s: float | None
    transmissions: int
    receptions: int
    duplicates: int
    suppressed: int = 0
    transmitters: set[int] = field(default_factory=set)
    heard: set[int] = field(default_factory=set)

    @property
    def reach(self) -> int:
        """Number of distinct APs that heard the packet."""
        return len(self.heard)


def simulate_broadcast(
    graph: APGraph,
    source_ap: int,
    dest_building: int,
    policy: RebroadcastPolicy,
    rng: random.Random,
    radio: UnitDiskRadio | None = None,
    params: SimParams | None = None,
    compromised: frozenset[int] = frozenset(),
    dead_aps: frozenset[int] = frozenset(),
    fast: bool = True,
) -> BroadcastResult:
    """Simulate one packet's life through the mesh.

    Args:
        graph: the ground-truth AP mesh.
        source_ap: id of the AP that injects the packet.
        dest_building: building id whose postbox the packet targets;
            delivery means *any* AP in that building hears the packet.
        policy: per-AP rebroadcast decision (conduit, flood, gossip…).
        rng: randomness for jitter and lossy radios.
        radio: propagation model; defaults to a lossless unit disk.
        params: timing knobs.
        compromised: APs that receive but silently drop (blackholes).
        dead_aps: APs that are physically absent (unpowered, destroyed,
            churned out): they never receive, transmit, or deliver.
            Filtering happens per transmission against the prebuilt
            adjacency, so evaluating many die-off states of one mesh
            needs no :class:`~repro.mesh.APGraph` rebuilds.  The dead
            set is consulted *before* any radio loss draw, so seeded
            results are identical between the reference engine and the
            fast path for any dead set.
        fast: dispatch to the specialised kernel in
            :mod:`repro.sim.fastpath` (seeded results are identical);
            ``False`` runs the reference generator/callback engine,
            kept as the oracle for the equivalence tests.

    Returns:
        The delivery outcome and transmission accounting.

    Raises:
        ValueError: if the source AP is in ``dead_aps``.
    """
    if source_ap in dead_aps:
        raise ValueError(f"source AP {source_ap} is dead and cannot inject")
    if fast:
        from .fastpath import simulate_broadcast_fast

        return simulate_broadcast_fast(
            graph,
            source_ap,
            dest_building,
            policy,
            rng,
            radio=radio,
            params=params,
            compromised=compromised,
            dead_aps=dead_aps,
        )
    if radio is None:
        radio = UnitDiskRadio()
    if params is None:
        params = SimParams()
    env = Environment()
    aps = graph.aps
    seen: set[int] = set()
    copies: defaultdict[int, int] = defaultdict(int)  # copies heard per AP
    threshold = params.suppression_threshold
    neighbors = graph.neighbors
    receptions_of = radio.receptions
    result = BroadcastResult(
        delivered=False,
        delivery_time_s=None,
        transmissions=0,
        receptions=0,
        duplicates=0,
    )

    def transmit(ap_id: int) -> None:
        if threshold is not None and copies[ap_id] >= threshold:
            # Enough duplicate copies arrived during the jitter window:
            # the neighbourhood is provably covered, stay quiet.
            result.suppressed += 1
            return
        result.transmissions += 1
        result.transmitters.add(ap_id)
        audience = neighbors(ap_id)
        if dead_aps:
            # Dead receivers are filtered before the radio draws any
            # loss randomness — the fast path does the same, keeping
            # seeded RNG consumption aligned between the engines.
            audience = [v for v in audience if v not in dead_aps]
        for reception in receptions_of(audience, rng):
            ev = env.timeout(reception.delay_s)
            ev.callbacks.append(
                lambda _e, receiver=reception.receiver_id: receive(receiver)
            )

    def receive(ap_id: int) -> None:
        result.receptions += 1
        copies[ap_id] += 1
        if ap_id in seen:
            result.duplicates += 1
            return
        seen.add(ap_id)
        result.heard.add(ap_id)
        ap = aps[ap_id]
        if ap.building_id == dest_building and not result.delivered:
            result.delivered = True
            result.delivery_time_s = env.now
        if ap_id in compromised:
            return
        if policy.should_rebroadcast(ap):
            delay = rng.uniform(0.0, params.jitter_s) if params.jitter_s > 0 else 0.0
            ev = env.timeout(delay)
            ev.callbacks.append(lambda _e, transmitter=ap_id: transmit(transmitter))

    # Source counts as having the packet; it delivers locally if it is
    # already in the destination building, and always transmits once.
    seen.add(source_ap)
    result.heard.add(source_ap)
    if aps[source_ap].building_id == dest_building:
        result.delivered = True
        result.delivery_time_s = 0.0
    transmit(source_ap)
    env.run(until=None if params.max_sim_time_s == float("inf") else params.max_sim_time_s)
    record_broadcast_metrics(result)
    return result


def transmission_overhead(
    graph: APGraph, result: BroadcastResult, source_ap: int, dest_building: int
) -> float | None:
    """The paper's overhead metric: broadcasts ÷ ideal unicast hops.

    The denominator is the minimum number of transmissions needed to
    get from the source AP to any AP in the destination building on the
    same AP-placement realisation (§4).  Returns None when the packet
    was not delivered or the pair is unreachable, and infinity when the
    source is already in the destination building (0 ideal hops).
    """
    if not result.delivered:
        return None
    ideal = graph.min_hops_to_building(source_ap, dest_building)
    if ideal is None:
        return None
    if ideal == 0:
        return float("inf")
    return result.transmissions / ideal
