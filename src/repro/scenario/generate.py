"""Generative disaster scenarios: seeded archetype timelines.

Where :mod:`repro.scenario.library` hand-places one canned timeline per
failure mode, this module *generates* them: an archetype (earthquake,
flood, brownout, compound) plus a seed yields a fully parameterised
:class:`~repro.scenario.model.ScenarioSpec` whose geometry is derived
from the target city's actual bounds — damage rings around a drawn
epicenter, a flood front advancing band by band from a drawn edge,
brownout waves rolling over a block partition.  Equal (archetype,
seed, parameters) produce byte-identical specs (compare
:func:`spec_digest`), and the specs run through the unchanged
:class:`~repro.scenario.driver.ScenarioDriver`.

The generator is also the fuzzer: :func:`fuzz_specs` draws seeded
random timelines across archetypes, mobility, and congestion, and
:func:`check_invariants` scores a driver result against the properties
every timeline must satisfy — the CI smoke gate.
"""

from __future__ import annotations

import hashlib
import json
import math
import random

from ..city import make_city
from ..experiments import WorldSpec, seed_for
from ..geometry import Point, Polygon
from .events import (
    APChurn,
    Damage,
    DeployBridges,
    GridOutage,
    PowerRestored,
    ScenarioEvent,
)
from .model import CongestionSpec, ScenarioResult, ScenarioSpec

#: The generator's vocabulary, in presentation order.
ARCHETYPES: tuple[str, ...] = ("earthquake", "flood", "brownout", "compound")

#: Default timeline length per archetype (overridable per call).
_DEFAULT_EPOCHS = {
    "earthquake": 8,
    "flood": 8,
    "brownout": 8,
    "compound": 10,
}


def _disc(center: Point, radius: float, sides: int = 16) -> Polygon:
    """A regular polygon approximating a damage disc."""
    return Polygon(
        tuple(
            Point(
                center.x + radius * math.cos(2.0 * math.pi * i / sides),
                center.y + radius * math.sin(2.0 * math.pi * i / sides),
            )
            for i in range(sides)
        )
    )


def _rect(x0: float, y0: float, x1: float, y1: float) -> Polygon:
    return Polygon(
        (Point(x0, y0), Point(x1, y0), Point(x1, y1), Point(x0, y1))
    )


def _earthquake_events(
    rng: random.Random,
    bounds: tuple[float, float, float, float],
    epochs: int,
    intensity: float,
) -> tuple[list[ScenarioEvent], str]:
    """Main shock disc at the epicenter, aftershocks, churn, bridges."""
    min_x, min_y, max_x, max_y = bounds
    extent = max(max_x - min_x, max_y - min_y)
    # Epicenter in the central half: a quake on the far corner of the
    # map levels nothing and generates a degenerate timeline.
    epicenter = Point(
        rng.uniform(min_x + 0.25 * extent, max_x - 0.25 * extent),
        rng.uniform(min_y + 0.25 * extent, max_y - 0.25 * extent),
    )
    main_radius = 0.22 * extent * intensity
    events: list[ScenarioEvent] = [
        Damage(epoch=0, area=_disc(epicenter, main_radius))
    ]
    for _ in range(rng.randint(1, 2)):
        offset = Point(
            epicenter.x + rng.uniform(-0.3, 0.3) * extent,
            epicenter.y + rng.uniform(-0.3, 0.3) * extent,
        )
        radius = main_radius * rng.uniform(0.4, 0.7)
        epoch = rng.randint(1, max(1, min(epochs - 2, 4)))
        events.append(Damage(epoch=epoch, area=_disc(offset, radius)))
    churn_rate = min(0.3, 0.1 * intensity)
    if epochs >= 3 and churn_rate > 0:
        events.append(
            APChurn(
                epoch=1,
                until_epoch=epochs - 2,
                rate=churn_rate,
                down_epochs=rng.randint(1, 2),
            )
        )
    if epochs >= 4:
        events.append(DeployBridges(epoch=epochs - 2, min_island_size=5))
    description = (
        f"generated quake: main shock r={main_radius:.0f} m at "
        f"({epicenter.x:.0f}, {epicenter.y:.0f}), aftershocks, "
        f"{churn_rate:.0%} churn, bridges at epoch {epochs - 2}"
    )
    return events, description


def _flood_events(
    rng: random.Random,
    bounds: tuple[float, float, float, float],
    epochs: int,
    intensity: float,
) -> tuple[list[ScenarioEvent], str]:
    """A flood front advancing one band per epoch from a drawn edge."""
    min_x, min_y, max_x, max_y = bounds
    extent = max(max_x - min_x, max_y - min_y)
    pad = 0.1 * extent
    step = 0.12 * extent * intensity
    edge = rng.choice(["south", "west", "north", "east"])
    front_epochs = max(1, min(epochs - 3, rng.randint(2, 3)))
    events: list[ScenarioEvent] = []
    for k in range(front_epochs):
        lo, hi = k * step, (k + 1) * step
        if edge == "south":
            band = _rect(min_x - pad, min_y + lo, max_x + pad, min_y + hi)
        elif edge == "north":
            band = _rect(min_x - pad, max_y - hi, max_x + pad, max_y - lo)
        elif edge == "west":
            band = _rect(min_x + lo, min_y - pad, min_x + hi, max_y + pad)
        else:
            band = _rect(max_x - hi, min_y - pad, max_x - lo, max_y + pad)
        events.append(Damage(epoch=1 + k, area=band))
    bridge_epoch = min(epochs - 1, 2 + front_epochs)
    events.append(DeployBridges(epoch=bridge_epoch, min_island_size=5))
    description = (
        f"generated flood: front advances {step:.0f} m/epoch from the "
        f"{edge} for {front_epochs} epochs; bridges at epoch {bridge_epoch}"
    )
    return events, description


def _brownout_events(
    rng: random.Random,
    bounds: tuple[float, float, float, float],
    epochs: int,
    intensity: float,
) -> tuple[list[ScenarioEvent], str]:
    """Outage waves rolling over a shuffled 2x2 block partition."""
    min_x, min_y, max_x, max_y = bounds
    pad = 0.1 * max(max_x - min_x, max_y - min_y)
    mid_x = (min_x + max_x) / 2.0
    mid_y = (min_y + max_y) / 2.0
    blocks = [
        _rect(min_x - pad, min_y - pad, mid_x, mid_y),
        _rect(mid_x, min_y - pad, max_x + pad, mid_y),
        _rect(min_x - pad, mid_y, mid_x, max_y + pad),
        _rect(mid_x, mid_y, max_x + pad, max_y + pad),
    ]
    rng.shuffle(blocks)
    # Higher intensity browns blocks out for longer (deeper battery
    # drain before restoration).
    dwell = max(2, min(epochs - 1, round(2 * intensity)))
    events: list[ScenarioEvent] = []
    for i, block in enumerate(blocks):
        start = min(i * 2, epochs - 1)
        events.append(GridOutage(epoch=start, region=block))
        if start + dwell < epochs:
            events.append(PowerRestored(epoch=start + dwell, region=block))
    description = (
        f"generated brownout: shuffled 2x2 block waves, {dwell} epochs "
        "dark each"
    )
    return events, description


def _compound_events(
    rng: random.Random,
    bounds: tuple[float, float, float, float],
    epochs: int,
    intensity: float,
) -> tuple[list[ScenarioEvent], str]:
    """Quake, then grid collapse, then a flood band: the bad day."""
    min_x, min_y, max_x, max_y = bounds
    extent = max(max_x - min_x, max_y - min_y)
    epicenter = Point(
        rng.uniform(min_x + 0.3 * extent, max_x - 0.3 * extent),
        rng.uniform(min_y + 0.3 * extent, max_y - 0.3 * extent),
    )
    radius = 0.18 * extent * intensity
    half = rng.choice(["lower", "upper"])
    pad = 0.1 * extent
    mid_y = (min_y + max_y) / 2.0
    outage_region = (
        _rect(min_x - pad, min_y - pad, max_x + pad, mid_y)
        if half == "lower"
        else _rect(min_x - pad, mid_y, max_x + pad, max_y + pad)
    )
    band_lo = rng.uniform(0.15, 0.45) * extent
    band = _rect(
        min_x - pad,
        min_y + band_lo,
        max_x + pad,
        min_y + band_lo + 0.15 * extent * intensity,
    )
    flood_epoch = min(epochs - 2, rng.randint(3, 5))
    events: list[ScenarioEvent] = [
        Damage(epoch=0, area=_disc(epicenter, radius)),
        GridOutage(epoch=1, region=outage_region),
        APChurn(
            epoch=1,
            until_epoch=epochs - 2,
            rate=min(0.25, 0.08 * intensity),
            down_epochs=1,
        ),
        Damage(epoch=flood_epoch, area=band),
        DeployBridges(epoch=epochs - 2, min_island_size=5),
        PowerRestored(epoch=epochs - 1, region=outage_region),
    ]
    description = (
        f"generated compound: quake r={radius:.0f} m, {half}-half grid "
        f"collapse, flood band at epoch {flood_epoch}, bridges near the end"
    )
    return events, description


_GENERATORS = {
    "earthquake": _earthquake_events,
    "flood": _flood_events,
    "brownout": _brownout_events,
    "compound": _compound_events,
}


def generate_scenario(
    archetype: str,
    seed: int,
    *,
    city: str = "gridport",
    epochs: int | None = None,
    flows: int = 16,
    intensity: float = 1.0,
    mobile_flows: int = 0,
    congestion: CongestionSpec | None = None,
) -> ScenarioSpec:
    """Generate one seeded archetype timeline as a runnable spec.

    All randomness is keyed on ``(archetype, city, seed)`` via
    :func:`~repro.experiments.seed_for` streams, so equal arguments
    produce byte-identical specs (and therefore, through the driver,
    byte-identical results whatever the worker count).  The geometry
    comes from the actual city bounds — the same archetype transfers
    to any preset city.

    Args:
        archetype: one of :data:`ARCHETYPES`.
        seed: base seed; also the world seed.
        city: preset city name (see :func:`repro.city.make_city`).
        epochs: timeline length (archetype default when ``None``).
        flows: static flows per epoch.
        intensity: scales damage radii, flood steps, churn, and
            brownout dwell; must be in ``(0, 3]``.
        mobile_flows: walkers added on top of the static flows.
        congestion: shared-air coupling for the flows (``None`` keeps
            private-air broadcasts).

    Raises:
        KeyError: for an unknown archetype.
        ValueError: for an out-of-range intensity or a timeline too
            short for the archetype.
    """
    try:
        generator = _GENERATORS[archetype]
    except KeyError:
        known = ", ".join(ARCHETYPES)
        raise KeyError(
            f"unknown archetype {archetype!r}; known archetypes: {known}"
        ) from None
    if not 0 < intensity <= 3:
        raise ValueError(f"intensity must be in (0, 3], got {intensity}")
    if epochs is None:
        epochs = _DEFAULT_EPOCHS[archetype]
    if epochs < 4:
        raise ValueError("generated timelines need at least 4 epochs")
    rng = random.Random(
        seed_for(seed, 0, f"scenario-gen:{archetype}:{city}")
    )
    bounds = make_city(city, seed=seed).bounds()
    events, description = generator(rng, bounds, epochs, intensity)
    return ScenarioSpec(
        name=f"gen-{archetype}-{seed}",
        world=WorldSpec(city, seed=seed),
        epochs=epochs,
        epoch_hours=2.0,
        events=tuple(events),
        flows=flows,
        mobile_flows=mobile_flows,
        congestion=congestion,
        description=description,
    )


def spec_digest(spec: ScenarioSpec) -> str:
    """A short stable digest of the full spec (its identity on disk).

    Computed over the sorted-keys JSON of
    :meth:`~repro.scenario.model.ScenarioSpec.to_dict`, so equal specs
    digest equal and any parameter change shows.
    """
    blob = json.dumps(spec.to_dict(), sort_keys=True).encode()
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


def fuzz_specs(
    count: int, seed: int, *, city: str = "gridport"
) -> list[ScenarioSpec]:
    """Draw ``count`` seeded random timelines across the full surface.

    Each draw varies the archetype, intensity, flow count, mobility,
    and congestion coupling — the fuzzer exercises every generator
    path plus both delivery models.  Deterministic in ``(count, seed,
    city)``.
    """
    if count < 1:
        raise ValueError("need at least one fuzz draw")
    specs: list[ScenarioSpec] = []
    for i in range(count):
        rng = random.Random(seed_for(seed, i, "scenario-fuzz"))
        archetype = rng.choice(ARCHETYPES)
        congestion = (
            CongestionSpec(window_s=rng.choice([0.0, 0.5, 2.0]))
            if rng.random() < 0.4
            else None
        )
        specs.append(
            generate_scenario(
                archetype,
                seed_for(seed, i, "scenario-fuzz:world") % 2**31,
                city=city,
                flows=rng.randint(8, 16),
                intensity=rng.uniform(0.5, 1.8),
                mobile_flows=rng.choice([0, 0, 2, 4]),
                congestion=congestion,
            )
        )
    return specs


def check_invariants(
    result: ScenarioResult, spec: ScenarioSpec
) -> list[str]:
    """Driver-output properties every timeline must satisfy.

    Returns human-readable violations (empty = clean):

    - delivery rate in ``[0, 1]`` and consistent with the flow counts;
    - the alive set never exceeds the AP set, and the largest island
      never exceeds the alive set;
    - at least one island is reported whenever the largest one clears
      the spec's ``min_island_size``;
    - epoch numbering and hours follow the grid;
    - zero replans on non-mutating epochs after the first — but only
      for immobile specs (a walker that moved forces a replan without
      any map mutation).
    """
    violations: list[str] = []
    total_flows = spec.flows + spec.mobile_flows
    for report in result.epochs:
        e = f"epoch {report.epoch}"
        if not 0.0 <= report.delivery_rate <= 1.0:
            violations.append(
                f"{e}: delivery rate {report.delivery_rate} outside [0, 1]"
            )
        if report.flows != total_flows:
            violations.append(
                f"{e}: {report.flows} flows reported, spec has {total_flows}"
            )
        if not (
            report.delivered_flows
            <= report.simulated_flows
            <= report.flows
        ):
            violations.append(
                f"{e}: delivered {report.delivered_flows} <= simulated "
                f"{report.simulated_flows} <= flows {report.flows} violated"
            )
        if not 0 <= report.alive_aps <= report.total_aps:
            violations.append(
                f"{e}: alive {report.alive_aps} outside [0, total "
                f"{report.total_aps}]"
            )
        if report.largest_island > report.alive_aps:
            violations.append(
                f"{e}: largest island {report.largest_island} exceeds "
                f"alive set {report.alive_aps}"
            )
        if report.largest_island >= spec.min_island_size and report.islands < 1:
            violations.append(
                f"{e}: largest island {report.largest_island} clears "
                f"min size {spec.min_island_size} but 0 islands reported"
            )
        if report.hour != report.epoch * spec.epoch_hours:
            violations.append(
                f"{e}: hour {report.hour} off the "
                f"{spec.epoch_hours:g}-hour grid"
            )
        if (
            spec.mobile_flows == 0
            and report.epoch > 0
            and not report.mutated
            and report.replans != 0
        ):
            violations.append(
                f"{e}: {report.replans} replans on a non-mutating epoch"
            )
    if [r.epoch for r in result.epochs] != list(range(spec.epochs)):
        violations.append("epoch numbering is not 0..epochs-1")
    return violations
