"""Canned disaster scenarios, one per failure mode the paper discusses.

Each factory takes a base seed and returns a fully-parameterised
:class:`~repro.scenario.model.ScenarioSpec`.  The geometry constants
target the preset cities of :mod:`repro.city`: ``gridport`` is an 8x8
Manhattan grid (90 m blocks, 14 m streets, extent ~0..818 m), so a
horizontal band over ``y in [300, 530]`` drowns exactly its two middle
block rows — a >200 m gap no 50 m radio crosses — and ``riverton`` is
the river-split preset that fractures into two islands on its own.
"""

from __future__ import annotations

from typing import Callable

from ..experiments import WorldSpec
from ..geometry import Point, Polygon
from .events import APChurn, Damage, DeployBridges, GridOutage, PowerRestored
from .model import ScenarioSpec


def _rect(x0: float, y0: float, x1: float, y1: float) -> Polygon:
    return Polygon(
        (Point(x0, y0), Point(x1, y0), Point(x1, y1), Point(x0, y1))
    )


# gridport extent is ~818 m; pad the bands generously so jittered
# footprints on the boundary blocks are unambiguously covered.
_GRIDPORT_SPAN = 900.0
_FLOOD_BAND = _rect(-50.0, 300.0, _GRIDPORT_SPAN, 530.0)
_QUAKE_ZONE = _rect(350.0, 350.0, 480.0, 480.0)
_WEST_THIRD = _rect(-50.0, -50.0, 276.0, _GRIDPORT_SPAN)
_MID_THIRD = _rect(276.0, -50.0, 552.0, _GRIDPORT_SPAN)
_EAST_THIRD = _rect(552.0, -50.0, _GRIDPORT_SPAN, _GRIDPORT_SPAN)


def slow_battery_drain(seed: int = 0) -> ScenarioSpec:
    """Citywide outage at hour 0; batteries deplete over two days."""
    return ScenarioSpec(
        name="slow-battery-drain",
        world=WorldSpec("gridport", seed=seed),
        epochs=8,
        epoch_hours=6.0,
        events=(GridOutage(epoch=0),),
        flows=24,
        battery_fraction=0.5,
        generator_fraction=0.05,
        battery_hours_range=(2.0, 36.0),
        description=(
            "citywide grid failure; mesh thins epoch by epoch as "
            "batteries drain (the paper's longevity question, stepped)"
        ),
    )


def river_flood(seed: int = 0) -> ScenarioSpec:
    """A flood band severs the grid; operators bridge it two epochs on.

    The acceptance scenario: epoch 1 splits the mesh into islands and
    delivery collapses for cross-band flows; epoch 3's bridge chains
    (plus the announced routing link) restore it.
    """
    return ScenarioSpec(
        name="river-flood",
        world=WorldSpec("gridport", seed=seed),
        epochs=6,
        epoch_hours=4.0,
        events=(
            Damage(epoch=1, area=_FLOOD_BAND),
            DeployBridges(epoch=3, min_island_size=5),
        ),
        flows=24,
        battery_fraction=0.5,
        generator_fraction=0.05,
        description=(
            "flood drowns the two middle block rows (no outage), "
            "islanding north from south; bridge APs deployed at epoch 3"
        ),
    )


def rolling_blackout(seed: int = 0) -> ScenarioSpec:
    """Outage waves roll west to east, two epochs per third."""
    return ScenarioSpec(
        name="rolling-blackout",
        world=WorldSpec("gridport", seed=seed),
        epochs=8,
        epoch_hours=2.0,
        events=(
            GridOutage(epoch=0, region=_WEST_THIRD),
            PowerRestored(epoch=2, region=_WEST_THIRD),
            GridOutage(epoch=2, region=_MID_THIRD),
            PowerRestored(epoch=4, region=_MID_THIRD),
            GridOutage(epoch=4, region=_EAST_THIRD),
            PowerRestored(epoch=6, region=_EAST_THIRD),
        ),
        flows=24,
        battery_fraction=0.3,
        generator_fraction=0.05,
        battery_hours_range=(1.0, 6.0),
        description=(
            "load-shedding waves roll across the city thirds; each "
            "region browns out for two epochs then recovers"
        ),
    )


def post_quake_churn(seed: int = 0) -> ScenarioSpec:
    """A central damage zone plus hours of flaky AP churn."""
    return ScenarioSpec(
        name="post-quake-churn",
        world=WorldSpec("gridport", seed=seed),
        epochs=8,
        epoch_hours=1.0,
        events=(
            Damage(epoch=0, area=_QUAKE_ZONE),
            APChurn(epoch=1, until_epoch=6, rate=0.12, down_epochs=2),
        ),
        flows=24,
        description=(
            "quake levels the city centre at hour 0; 12% of surviving "
            "APs flap in and out for the following six hours"
        ),
    )


def bridge_ap_recovery(seed: int = 0) -> ScenarioSpec:
    """riverton's natural two-island split, bridged at epoch 2."""
    return ScenarioSpec(
        name="bridge-ap-recovery",
        world=WorldSpec("riverton", seed=seed),
        epochs=5,
        epoch_hours=4.0,
        events=(DeployBridges(epoch=2, min_island_size=5),),
        flows=24,
        description=(
            "the bridgeless river city starts islanded; operator "
            "bridges the banks at epoch 2 and cross-river flows recover"
        ),
    )


SCENARIOS: dict[str, Callable[[int], ScenarioSpec]] = {
    "slow-battery-drain": slow_battery_drain,
    "river-flood": river_flood,
    "rolling-blackout": rolling_blackout,
    "post-quake-churn": post_quake_churn,
    "bridge-ap-recovery": bridge_ap_recovery,
}


def scenario_names() -> list[str]:
    """All canned scenario names, in presentation order."""
    return list(SCENARIOS)


def make_scenario(name: str, seed: int = 0) -> ScenarioSpec:
    """Instantiate a canned scenario by name.

    Raises:
        KeyError: for an unknown scenario name.
    """
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"unknown scenario {name!r}; known scenarios: {known}"
        ) from None
    return factory(seed)
