"""Dynamic disaster timelines: fault injection and time-varying routing.

The scenario engine turns the repo's static artifacts (power profiles,
island analysis, bridge planning, broadcast simulation, route caching)
into stepped timelines: grids fail and recover, floods drown
neighbourhoods, APs churn, operators deploy bridges — and per epoch the
engine re-derives the alive mesh, patches the routing map, replans
broken flows, and scores end-to-end delivery.
"""

from .driver import (
    ScenarioDriver,
    ScenarioFlowTrial,
    extended_graph,
    run_scenario,
    scenario_flow_trial,
)
from .events import (
    APChurn,
    Damage,
    DeployBridges,
    GridOutage,
    PowerRestored,
    ScenarioEvent,
)
from .generate import (
    ARCHETYPES,
    check_invariants,
    fuzz_specs,
    generate_scenario,
    spec_digest,
)
from .library import SCENARIOS, make_scenario, scenario_names
from .model import (
    CongestionSpec,
    EpochReport,
    ScenarioResult,
    ScenarioSpec,
    format_scenario,
)

__all__ = [
    "APChurn",
    "ARCHETYPES",
    "CongestionSpec",
    "Damage",
    "DeployBridges",
    "EpochReport",
    "GridOutage",
    "PowerRestored",
    "SCENARIOS",
    "ScenarioDriver",
    "ScenarioEvent",
    "ScenarioFlowTrial",
    "ScenarioResult",
    "ScenarioSpec",
    "check_invariants",
    "extended_graph",
    "format_scenario",
    "fuzz_specs",
    "generate_scenario",
    "make_scenario",
    "run_scenario",
    "scenario_flow_trial",
    "scenario_names",
    "spec_digest",
]
