"""Fault-event taxonomy for disaster timelines.

Every event is a frozen, hashable value object pinned to the epoch at
which it fires; a :class:`~repro.scenario.model.ScenarioSpec` is just a
seeded tuple of them.  The taxonomy covers the failure modes the paper
and its follow-ups discuss:

- :class:`GridOutage` / :class:`PowerRestored` — §2's "supply of
  electricity might be unreliable": the grid fails (citywide or inside
  a region) and APs survive on their :class:`~repro.mesh.PowerProfile`
  until power returns.
- :class:`Damage` — physical destruction (flood, quake, fire): every
  AP inside the polygon dies permanently and every building whose
  centroid falls inside it is removed from the routing map.
- :class:`APChurn` — post-disaster flakiness: each epoch in the active
  window a seeded fraction of the surviving APs drops out, recovering
  a fixed number of epochs later.
- :class:`DeployBridges` — §4's "small number of well-placed APs":
  an operator bridges the currently-alive islands with AP chains and
  announces the new links to the routing layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import Polygon


@dataclass(frozen=True)
class GridOutage:
    """Grid power fails at the start of ``epoch``.

    ``region`` limits the outage to APs whose position falls inside the
    polygon; ``None`` means citywide.  Battery drain is measured from
    this event's epoch, so an AP with no backup stays up *at* the
    outage instant (the ``t == 0`` rule of
    :meth:`~repro.mesh.PowerProfile.alive_at`) and is down from the
    next epoch on.
    """

    epoch: int
    region: Polygon | None = None

    def describe(self) -> str:
        scope = "citywide" if self.region is None else "regional"
        return f"grid-outage({scope})"


@dataclass(frozen=True)
class PowerRestored:
    """Grid power returns at the start of ``epoch``.

    Clears active outages whose region equals ``region`` (``None``
    clears every active outage).  Restored APs come back immediately —
    batteries are assumed to recharge off the restored grid.
    """

    epoch: int
    region: Polygon | None = None

    def describe(self) -> str:
        scope = "all" if self.region is None else "regional"
        return f"power-restored({scope})"


@dataclass(frozen=True)
class Damage:
    """Permanent physical destruction inside ``area`` at ``epoch``.

    Two deliberately different granularities: APs die on an exact
    point-in-polygon test of their own position, while buildings leave
    the routing map on a centroid-in-polygon test (a building clipped
    at the edge keeps its surviving APs and stays routable).
    """

    epoch: int
    area: Polygon

    def describe(self) -> str:
        return "damage"


@dataclass(frozen=True)
class APChurn:
    """Random AP churn active on epochs ``[epoch, until_epoch]``.

    Each active epoch, ``rate`` of the currently-eligible APs (in the
    mesh, not destroyed, not already down) drop out for ``down_epochs``
    epochs, then recover.  Draws come from a dedicated per-epoch seeded
    stream, so timelines are reproducible and worker-count invariant.
    """

    epoch: int
    until_epoch: int
    rate: float
    down_epochs: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.rate <= 1:
            raise ValueError(f"churn rate must be in [0, 1], got {self.rate}")
        if self.until_epoch < self.epoch:
            raise ValueError("churn window must end at or after its start")
        if self.down_epochs < 1:
            raise ValueError("down_epochs must be at least 1")

    def describe(self) -> str:
        return f"ap-churn({self.rate:g})"


@dataclass(frozen=True)
class DeployBridges:
    """Operator bridges the currently-alive islands at ``epoch``.

    Runs the greedy planner of :mod:`repro.mesh.islands` over the alive
    AP set: every island of at least ``min_island_size`` APs is chained
    to the largest one with new APs spaced at ``spacing_factor`` times
    the transmission range.  Deployed APs are operator-maintained
    (generator-backed) and the chain's anchor buildings are announced
    as a routing link, so senders immediately plan across the bridge.
    """

    epoch: int
    min_island_size: int = 5
    spacing_factor: float = 0.8

    def describe(self) -> str:
        return "deploy-bridges"


ScenarioEvent = GridOutage | PowerRestored | Damage | APChurn | DeployBridges
