"""Declarative scenario model and the structured per-epoch reports.

A :class:`ScenarioSpec` is a seeded, hashable recipe: a world (as a
:class:`~repro.experiments.WorldSpec`), an epoch grid, and a tuple of
fault events.  Equal specs replay bit-identical timelines whatever the
worker count — all randomness flows through
:func:`~repro.experiments.seed_for` keyed on the spec's stream label.

The driver emits one :class:`EpochReport` per epoch and aggregates them
into a :class:`ScenarioResult`, which serializes to deterministic JSON
(sorted keys) so results can be diffed, archived, and compared across
worker counts byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..experiments import WorldSpec
from .events import (
    APChurn,
    Damage,
    DeployBridges,
    GridOutage,
    PowerRestored,
    ScenarioEvent,
)


@dataclass(frozen=True)
class CongestionSpec:
    """Shared-air congestion coupling for a scenario's flows.

    When set on a :class:`ScenarioSpec`, every epoch's flows run
    through :func:`~repro.sim.simulate_traffic_batch` instead of each
    flow broadcasting through a private air: all flows are injected
    within ``window_s`` seconds of each other and contend for the
    channel, so saturating offered load measurably degrades delivery.
    ``frame_time_s`` overrides the per-frame airtime (``None`` keeps
    the radio default).

    Raises:
        ValueError: for a negative window or non-positive frame time.
    """

    window_s: float = 2.0
    frame_time_s: float | None = None

    def __post_init__(self) -> None:
        if self.window_s < 0:
            raise ValueError("congestion window must be non-negative")
        if self.frame_time_s is not None and self.frame_time_s <= 0:
            raise ValueError("frame time must be positive")


def _polygon_coords(polygon) -> list[list[float]] | None:
    if polygon is None:
        return None
    return [[v.x, v.y] for v in polygon.vertices]


def _event_dict(event: ScenarioEvent) -> dict:
    """One event as a plain, JSON-stable dict with a type tag."""
    if isinstance(event, GridOutage):
        return {
            "type": "GridOutage",
            "epoch": event.epoch,
            "region": _polygon_coords(event.region),
        }
    if isinstance(event, PowerRestored):
        return {
            "type": "PowerRestored",
            "epoch": event.epoch,
            "region": _polygon_coords(event.region),
        }
    if isinstance(event, Damage):
        return {
            "type": "Damage",
            "epoch": event.epoch,
            "area": _polygon_coords(event.area),
        }
    if isinstance(event, APChurn):
        return {
            "type": "APChurn",
            "epoch": event.epoch,
            "until_epoch": event.until_epoch,
            "rate": event.rate,
            "down_epochs": event.down_epochs,
        }
    if isinstance(event, DeployBridges):
        return {
            "type": "DeployBridges",
            "epoch": event.epoch,
            "min_island_size": event.min_island_size,
            "spacing_factor": event.spacing_factor,
        }
    raise TypeError(f"unknown scenario event {event!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One seeded disaster timeline, declaratively.

    Attributes:
        name: scenario identity; folded into every RNG stream.
        world: the world recipe (city, seed, densities) — workers
            rebuild from this, never pickle the world itself.
        epochs: number of timeline steps.
        epoch_hours: wall-clock hours between consecutive epochs
            (drives battery depletion).
        events: fault events, applied in tuple order within an epoch.
        flows: number of source→destination building flows evaluated
            every epoch.
        battery_fraction / generator_fraction / battery_hours_range:
            power-profile mix assigned to the mesh (see
            :func:`repro.mesh.assign_power_profiles`).
        min_island_size: islands smaller than this are not counted in
            the per-epoch island metric (reachability still uses exact
            components).
        mobile_flows: additional flows whose endpoints *walk*: each
            gets a seeded random trajectory stretched over the
            timeline, and its source/destination buildings follow the
            walk epoch by epoch.  Zero (the default) reproduces the
            static-flow timelines byte for byte.
        congestion: when set, all of an epoch's flows share the air
            (see :class:`CongestionSpec`); ``None`` keeps the
            per-flow private-air broadcast.
        description: one line for ``scenario list``.

    Raises:
        ValueError: for an empty timeline, a non-positive epoch
            duration or flow count, a negative mobile-flow count, or
            an event pinned outside the timeline.
    """

    name: str
    world: WorldSpec
    epochs: int
    epoch_hours: float = 4.0
    events: tuple[ScenarioEvent, ...] = ()
    flows: int = 24
    battery_fraction: float = 0.5
    generator_fraction: float = 0.05
    battery_hours_range: tuple[float, float] = (2.0, 24.0)
    min_island_size: int = 2
    mobile_flows: int = 0
    congestion: CongestionSpec | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("a scenario needs at least one epoch")
        if self.epoch_hours <= 0:
            raise ValueError("epoch duration must be positive")
        if self.flows < 1:
            raise ValueError("a scenario needs at least one flow")
        if self.mobile_flows < 0:
            raise ValueError("mobile flow count cannot be negative")
        for ev in self.events:
            if not 0 <= ev.epoch < self.epochs:
                raise ValueError(
                    f"event {ev.describe()} pinned to epoch {ev.epoch}, "
                    f"outside the {self.epochs}-epoch timeline"
                )

    def stream(self) -> str:
        """The seed-stream label folding the scenario spec's identity.

        Passed to :func:`~repro.experiments.seed_for` so two scenarios
        sharing a base seed (or a scenario and a plain experiment
        sweep) draw unrelated randomness.
        """
        w = self.world
        return (
            f"scenario:{self.name}:{w.city_name}:{w.seed}"
            f":{self.epochs}x{self.epoch_hours:g}:{self.flows}"
        )

    def to_dict(self) -> dict:
        """The full spec as a plain, JSON-stable dict.

        Events carry a ``type`` tag and polygons flatten to vertex
        coordinate lists, so ``json.dumps(spec.to_dict(),
        sort_keys=True)`` is byte-stable for equal specs — the digest
        surface generator-determinism tests (and
        :func:`~repro.scenario.generate.spec_digest`) compare.
        """
        return {
            "name": self.name,
            "world": asdict(self.world),
            "epochs": self.epochs,
            "epoch_hours": self.epoch_hours,
            "events": [_event_dict(ev) for ev in self.events],
            "flows": self.flows,
            "battery_fraction": self.battery_fraction,
            "generator_fraction": self.generator_fraction,
            "battery_hours_range": list(self.battery_hours_range),
            "min_island_size": self.min_island_size,
            "mobile_flows": self.mobile_flows,
            "congestion": (
                None if self.congestion is None else asdict(self.congestion)
            ),
            "description": self.description,
        }


@dataclass(frozen=True)
class EpochReport:
    """The structured outcome of one timeline step.

    ``replans`` counts routing-table work this epoch (epoch 0 includes
    the initial planning of every flow); ``route_cache_hits`` /
    ``route_cache_misses`` are *deltas* over the epoch — senders replan
    lazily, so an epoch whose graph version did not change shows zero
    planner work of either kind.  ``delivery_rate`` is delivered
    flows over **all** flows — an unroutable or unreachable flow counts
    as a failure, which is exactly how an operator would score the
    network.
    """

    epoch: int
    hour: float
    events: tuple[str, ...]
    alive_aps: int
    total_aps: int
    islands: int
    largest_island: int
    graph_version: int
    mutated: bool
    deployed_aps: int
    replans: int
    flows: int
    routable_flows: int
    reachable_flows: int
    simulated_flows: int
    delivered_flows: int
    delivery_rate: float
    transmissions: int
    route_cache_hits: int
    route_cache_misses: int

    def to_dict(self) -> dict:
        d = asdict(self)
        d["events"] = list(self.events)
        return d


@dataclass(frozen=True)
class ScenarioResult:
    """A full timeline's reports plus cross-epoch aggregates.

    ``manifest`` is the run's :class:`~repro.obs.RunManifest` as a
    plain dict (git SHA, config hash, seed, wall/CPU time, peak RSS).
    It is excluded from equality — two runs of the same spec produce
    equal results with different manifests — and it is the **only**
    non-deterministic block in the JSON: strip it (or compare with
    :meth:`to_json` ``manifest=False``) when asserting byte-identity
    across runs or worker counts.
    """

    name: str
    city: str
    seed: int
    epoch_hours: float
    flow_count: int
    initial_aps: int
    epochs: tuple[EpochReport, ...] = field(default=())
    manifest: dict | None = field(default=None, compare=False)

    @property
    def total_replans(self) -> int:
        return sum(e.replans for e in self.epochs)

    @property
    def min_delivery_rate(self) -> float:
        return min(e.delivery_rate for e in self.epochs)

    @property
    def final_delivery_rate(self) -> float:
        return self.epochs[-1].delivery_rate

    @property
    def max_islands(self) -> int:
        return max(e.islands for e in self.epochs)

    @property
    def total_deployed_aps(self) -> int:
        return sum(e.deployed_aps for e in self.epochs)

    def to_dict(self, manifest: bool = True) -> dict:
        out = {
            "name": self.name,
            "city": self.city,
            "seed": self.seed,
            "epoch_hours": self.epoch_hours,
            "flow_count": self.flow_count,
            "initial_aps": self.initial_aps,
            "epochs": [e.to_dict() for e in self.epochs],
            "aggregates": {
                "total_replans": self.total_replans,
                "min_delivery_rate": self.min_delivery_rate,
                "final_delivery_rate": self.final_delivery_rate,
                "max_islands": self.max_islands,
                "total_deployed_aps": self.total_deployed_aps,
            },
        }
        if manifest and self.manifest is not None:
            out["manifest"] = self.manifest
        return out

    def to_json(self, indent: int | None = None, manifest: bool = True) -> str:
        """Sorted-keys JSON.  Everything outside the ``manifest`` block
        is deterministic — byte-identical across runs and worker
        counts; pass ``manifest=False`` for the fully deterministic
        core (what invariance tests compare)."""
        return json.dumps(
            self.to_dict(manifest=manifest), indent=indent, sort_keys=True
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        """Rehydrate a result parsed from :meth:`to_json` output."""
        epochs = tuple(
            EpochReport(**{**e, "events": tuple(e["events"])})
            for e in data["epochs"]
        )
        return cls(
            name=data["name"],
            city=data["city"],
            seed=data["seed"],
            epoch_hours=data["epoch_hours"],
            flow_count=data["flow_count"],
            initial_aps=data["initial_aps"],
            epochs=epochs,
            manifest=data.get("manifest"),
        )


def format_scenario(result: ScenarioResult) -> str:
    """A compact human-readable epoch table (the JSON is the artifact)."""
    header = (
        f"scenario {result.name} on {result.city} (seed {result.seed}, "
        f"{len(result.epochs)} epochs x {result.epoch_hours:g} h, "
        f"{result.flow_count} flows)"
    )
    lines = [header, ""]
    lines.append(
        f"{'ep':>3} {'hour':>6} {'alive':>6} {'isl':>4} {'replan':>6} "
        f"{'deliv':>6} {'rate':>6}  events"
    )
    for e in result.epochs:
        lines.append(
            f"{e.epoch:>3} {e.hour:>6g} {e.alive_aps:>6} {e.islands:>4} "
            f"{e.replans:>6} {e.delivered_flows:>6} {e.delivery_rate:>6.2f}  "
            f"{', '.join(e.events) or '-'}"
        )
    lines.append("")
    lines.append(
        f"min delivery {result.min_delivery_rate:.2f}, "
        f"final {result.final_delivery_rate:.2f}, "
        f"max islands {result.max_islands}, "
        f"{result.total_replans} replans, "
        f"{result.total_deployed_aps} bridge APs deployed"
    )
    return "\n".join(lines)
