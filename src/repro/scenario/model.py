"""Declarative scenario model and the structured per-epoch reports.

A :class:`ScenarioSpec` is a seeded, hashable recipe: a world (as a
:class:`~repro.experiments.WorldSpec`), an epoch grid, and a tuple of
fault events.  Equal specs replay bit-identical timelines whatever the
worker count — all randomness flows through
:func:`~repro.experiments.seed_for` keyed on the spec's stream label.

The driver emits one :class:`EpochReport` per epoch and aggregates them
into a :class:`ScenarioResult`, which serializes to deterministic JSON
(sorted keys) so results can be diffed, archived, and compared across
worker counts byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..experiments import WorldSpec
from .events import ScenarioEvent


@dataclass(frozen=True)
class ScenarioSpec:
    """One seeded disaster timeline, declaratively.

    Attributes:
        name: scenario identity; folded into every RNG stream.
        world: the world recipe (city, seed, densities) — workers
            rebuild from this, never pickle the world itself.
        epochs: number of timeline steps.
        epoch_hours: wall-clock hours between consecutive epochs
            (drives battery depletion).
        events: fault events, applied in tuple order within an epoch.
        flows: number of source→destination building flows evaluated
            every epoch.
        battery_fraction / generator_fraction / battery_hours_range:
            power-profile mix assigned to the mesh (see
            :func:`repro.mesh.assign_power_profiles`).
        min_island_size: islands smaller than this are not counted in
            the per-epoch island metric (reachability still uses exact
            components).
        description: one line for ``scenario list``.

    Raises:
        ValueError: for an empty timeline, a non-positive epoch
            duration or flow count, or an event pinned outside the
            timeline.
    """

    name: str
    world: WorldSpec
    epochs: int
    epoch_hours: float = 4.0
    events: tuple[ScenarioEvent, ...] = ()
    flows: int = 24
    battery_fraction: float = 0.5
    generator_fraction: float = 0.05
    battery_hours_range: tuple[float, float] = (2.0, 24.0)
    min_island_size: int = 2
    description: str = ""

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("a scenario needs at least one epoch")
        if self.epoch_hours <= 0:
            raise ValueError("epoch duration must be positive")
        if self.flows < 1:
            raise ValueError("a scenario needs at least one flow")
        for ev in self.events:
            if not 0 <= ev.epoch < self.epochs:
                raise ValueError(
                    f"event {ev.describe()} pinned to epoch {ev.epoch}, "
                    f"outside the {self.epochs}-epoch timeline"
                )

    def stream(self) -> str:
        """The seed-stream label folding the scenario spec's identity.

        Passed to :func:`~repro.experiments.seed_for` so two scenarios
        sharing a base seed (or a scenario and a plain experiment
        sweep) draw unrelated randomness.
        """
        w = self.world
        return (
            f"scenario:{self.name}:{w.city_name}:{w.seed}"
            f":{self.epochs}x{self.epoch_hours:g}:{self.flows}"
        )


@dataclass(frozen=True)
class EpochReport:
    """The structured outcome of one timeline step.

    ``replans`` counts routing-table work this epoch (epoch 0 includes
    the initial planning of every flow); ``route_cache_hits`` /
    ``route_cache_misses`` are *deltas* over the epoch — senders replan
    lazily, so an epoch whose graph version did not change shows zero
    planner work of either kind.  ``delivery_rate`` is delivered
    flows over **all** flows — an unroutable or unreachable flow counts
    as a failure, which is exactly how an operator would score the
    network.
    """

    epoch: int
    hour: float
    events: tuple[str, ...]
    alive_aps: int
    total_aps: int
    islands: int
    largest_island: int
    graph_version: int
    mutated: bool
    deployed_aps: int
    replans: int
    flows: int
    routable_flows: int
    reachable_flows: int
    simulated_flows: int
    delivered_flows: int
    delivery_rate: float
    transmissions: int
    route_cache_hits: int
    route_cache_misses: int

    def to_dict(self) -> dict:
        d = asdict(self)
        d["events"] = list(self.events)
        return d


@dataclass(frozen=True)
class ScenarioResult:
    """A full timeline's reports plus cross-epoch aggregates.

    ``manifest`` is the run's :class:`~repro.obs.RunManifest` as a
    plain dict (git SHA, config hash, seed, wall/CPU time, peak RSS).
    It is excluded from equality — two runs of the same spec produce
    equal results with different manifests — and it is the **only**
    non-deterministic block in the JSON: strip it (or compare with
    :meth:`to_json` ``manifest=False``) when asserting byte-identity
    across runs or worker counts.
    """

    name: str
    city: str
    seed: int
    epoch_hours: float
    flow_count: int
    initial_aps: int
    epochs: tuple[EpochReport, ...] = field(default=())
    manifest: dict | None = field(default=None, compare=False)

    @property
    def total_replans(self) -> int:
        return sum(e.replans for e in self.epochs)

    @property
    def min_delivery_rate(self) -> float:
        return min(e.delivery_rate for e in self.epochs)

    @property
    def final_delivery_rate(self) -> float:
        return self.epochs[-1].delivery_rate

    @property
    def max_islands(self) -> int:
        return max(e.islands for e in self.epochs)

    @property
    def total_deployed_aps(self) -> int:
        return sum(e.deployed_aps for e in self.epochs)

    def to_dict(self, manifest: bool = True) -> dict:
        out = {
            "name": self.name,
            "city": self.city,
            "seed": self.seed,
            "epoch_hours": self.epoch_hours,
            "flow_count": self.flow_count,
            "initial_aps": self.initial_aps,
            "epochs": [e.to_dict() for e in self.epochs],
            "aggregates": {
                "total_replans": self.total_replans,
                "min_delivery_rate": self.min_delivery_rate,
                "final_delivery_rate": self.final_delivery_rate,
                "max_islands": self.max_islands,
                "total_deployed_aps": self.total_deployed_aps,
            },
        }
        if manifest and self.manifest is not None:
            out["manifest"] = self.manifest
        return out

    def to_json(self, indent: int | None = None, manifest: bool = True) -> str:
        """Sorted-keys JSON.  Everything outside the ``manifest`` block
        is deterministic — byte-identical across runs and worker
        counts; pass ``manifest=False`` for the fully deterministic
        core (what invariance tests compare)."""
        return json.dumps(
            self.to_dict(manifest=manifest), indent=indent, sort_keys=True
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        """Rehydrate a result parsed from :meth:`to_json` output."""
        epochs = tuple(
            EpochReport(**{**e, "events": tuple(e["events"])})
            for e in data["epochs"]
        )
        return cls(
            name=data["name"],
            city=data["city"],
            seed=data["seed"],
            epoch_hours=data["epoch_hours"],
            flow_count=data["flow_count"],
            initial_aps=data["initial_aps"],
            epochs=epochs,
            manifest=data.get("manifest"),
        )


def format_scenario(result: ScenarioResult) -> str:
    """A compact human-readable epoch table (the JSON is the artifact)."""
    header = (
        f"scenario {result.name} on {result.city} (seed {result.seed}, "
        f"{len(result.epochs)} epochs x {result.epoch_hours:g} h, "
        f"{result.flow_count} flows)"
    )
    lines = [header, ""]
    lines.append(
        f"{'ep':>3} {'hour':>6} {'alive':>6} {'isl':>4} {'replan':>6} "
        f"{'deliv':>6} {'rate':>6}  events"
    )
    for e in result.epochs:
        lines.append(
            f"{e.epoch:>3} {e.hour:>6g} {e.alive_aps:>6} {e.islands:>4} "
            f"{e.replans:>6} {e.delivered_flows:>6} {e.delivery_rate:>6.2f}  "
            f"{', '.join(e.events) or '-'}"
        )
    lines.append("")
    lines.append(
        f"min delivery {result.min_delivery_rate:.2f}, "
        f"final {result.final_delivery_rate:.2f}, "
        f"max islands {result.max_islands}, "
        f"{result.total_replans} replans, "
        f"{result.total_deployed_aps} bridge APs deployed"
    )
    return "\n".join(lines)
