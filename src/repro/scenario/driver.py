"""The scenario driver: step a world through a disaster timeline.

Per epoch the driver

1. applies the events pinned to that epoch (outages start/end, damage
   lands, churn draws, operators deploy bridge APs),
2. derives the alive-AP set from power profiles, destruction, and
   churn — against the *original* mesh, via the ``dead_aps`` fast path
   of :func:`~repro.sim.simulate_broadcast` and the ``alive=`` path of
   :func:`~repro.mesh.find_islands`, so no per-epoch graph rebuilds,
3. patches the building graph in one :meth:`~repro.buildgraph.\
BuildingGraph.patch` call (exactly one version bump per mutating
   epoch, so the route cache invalidates once, not per casualty),
4. replans flows whose routes broke (or that never had one), fails the
   source AP over to the building's first alive AP, and
5. scores every flow end to end — reachability through the alive mesh
   and actual delivery via the broadcast simulator — into an
   :class:`~repro.scenario.model.EpochReport`.

The timeline itself is stepped serially (graph surgery is cheap); the
per-flow broadcast simulations are fanned out through a
:class:`~repro.experiments.TrialRunner`, and every trial carries its
own :func:`~repro.experiments.seed_for` seed plus enough frozen state
(dead set, deployed-AP tuple, waypoints) for a worker process to
reproduce it bit for bit.  Results are therefore invariant under the
worker count.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..core import RoutePlan, conduits_for_waypoints
from ..experiments import (
    TrialRunner,
    World,
    sample_building_pairs,
    seed_for,
)
from ..geometry import Point, Polygon
from ..measurement import Trajectory, buildings_along, random_walk
from ..mesh import (
    AccessPoint,
    APGraph,
    PowerProfile,
    PowerSource,
    assign_power_profiles,
    find_islands,
    plan_bridge,
)
from ..obs import REGISTRY, RunManifest, span
from ..sim import (
    DEFAULT_TX_DELAY_S,
    ConduitPolicy,
    FlowSpec,
    simulate_broadcast,
    simulate_broadcast_batch,
    simulate_traffic_batch,
)
from .events import APChurn, Damage, DeployBridges, GridOutage, PowerRestored
from .model import EpochReport, ScenarioResult, ScenarioSpec

# One deployed AP, flattened to primitives so trials stay hashable and
# cheap to pickle: (ap_id, x, y, building_id).
DeployedAP = tuple[int, float, float, int]


@dataclass(frozen=True)
class ScenarioFlowTrial:
    """One flow's broadcast simulation at one epoch, fully frozen.

    Carries everything a worker needs to replay the simulation without
    the driver's mutable state: the waypoints (conduits are rebuilt
    from the shared map, exactly as a real AP would), the epoch's dead
    set, and the cumulative deployed-AP tuple (workers extend their
    cached base mesh once per distinct tuple).
    """

    src_building: int
    dst_building: int
    source_ap: int
    waypoint_ids: tuple[int, ...]
    conduit_width: float
    dead_aps: frozenset[int]
    deployed: tuple[DeployedAP, ...]
    seed: int


# Extended meshes are memoised per (world identity, deployed tuple):
# a scenario deploys bridges at most a handful of times, and every
# trial after a deployment reuses the same extended graph.
_EXTENDED: dict[tuple[object, tuple[DeployedAP, ...]], APGraph] = {}


def extended_graph(world: World, deployed: tuple[DeployedAP, ...]) -> APGraph:
    """The world's mesh with the deployed bridge APs appended.

    Deployed ids continue the base mesh's contiguous ids, so dead sets
    and trial source APs index identically in the driver and in every
    worker process.

    Extension is incremental: the longest memoised prefix of
    ``deployed`` (or the base mesh) grows via
    :meth:`~repro.mesh.APGraph.with_added_aps`, which patches only the
    affected adjacency lists — byte-identical to a full rebuild,
    including neighbour order, without the O(n·degree) scan per
    deployment.
    """
    if not deployed:
        return world.graph
    ident = world.spec if world.spec is not None else id(world)
    key = (ident, deployed)
    graph = _EXTENDED.get(key)
    if graph is None:
        if len(_EXTENDED) > 8:  # scenarios deploy rarely; keep this tiny
            _EXTENDED.clear()
        base = world.graph
        start = 0
        for cut in range(len(deployed) - 1, 0, -1):
            prefix = _EXTENDED.get((ident, deployed[:cut]))
            if prefix is not None:
                base = prefix
                start = cut
                break
        new_aps = [
            AccessPoint(id=ap_id, position=Point(x, y), building_id=building_id)
            for ap_id, x, y, building_id in deployed[start:]
        ]
        graph = base.with_added_aps(new_aps)
        _EXTENDED[key] = graph
    return graph


def scenario_flow_trial(
    world: World, trial: ScenarioFlowTrial
) -> tuple[bool, int]:
    """Run one flow's broadcast; returns ``(delivered, transmissions)``.

    Module-level so :class:`~repro.experiments.TrialRunner` can ship it
    to worker processes by reference.
    """
    graph = extended_graph(world, trial.deployed)
    centroids = [
        world.city.building(b).centroid() for b in trial.waypoint_ids
    ]
    conduits = conduits_for_waypoints(centroids, trial.conduit_width)
    policy = ConduitPolicy(conduits, world.city)
    result = simulate_broadcast(
        graph,
        trial.source_ap,
        trial.dst_building,
        policy,
        random.Random(trial.seed),
        dead_aps=trial.dead_aps,
    )
    return result.delivered, result.transmissions


@dataclass(frozen=True)
class ScenarioEpochBatch:
    """All of one epoch's flow trials, frozen as a single work item.

    Every trial of an epoch shares the dead set and deployed tuple, so
    shipping them together lets the executor freeze the world (CSR
    adjacency, dead mask, conduit verdict bitmaps) exactly once per
    epoch instead of once per flow.

    When ``congestion_window_s`` is set the epoch's flows share the
    air: every trial is injected within that many seconds (its start
    drawn from its own trial seed) and the whole batch runs through
    :func:`~repro.sim.simulate_traffic_batch` under the
    overlap-collision MAC, so a saturating window degrades delivery.
    ``None`` (the default) keeps the private-air broadcast per flow —
    byte-identical to the pre-congestion driver.
    """

    trials: tuple[ScenarioFlowTrial, ...]
    congestion_window_s: float | None = None
    congestion_frame_s: float | None = None
    congestion_seed: int = 0


def scenario_epoch_batch(
    world: World, batch: ScenarioEpochBatch
) -> list[tuple[bool, int]]:
    """Run an epoch's flows through one frozen world.

    Per-flow results are byte-identical to :func:`scenario_flow_trial`
    run trial by trial — the batch only shares frozen state, never RNG
    streams (each trial still seeds its own generator).  With a
    congestion window set, flows instead contend for the shared
    channel (see :class:`ScenarioEpochBatch`).
    """
    if not batch.trials:
        return []
    first = batch.trials[0]
    graph = extended_graph(world, first.deployed)
    flows = []
    for trial in batch.trials:
        centroids = [
            world.city.building(b).centroid() for b in trial.waypoint_ids
        ]
        conduits = conduits_for_waypoints(centroids, trial.conduit_width)
        flows.append(
            FlowSpec(
                source_ap=trial.source_ap,
                dest_building=trial.dst_building,
                policy=ConduitPolicy(conduits, world.city),
                rng=random.Random(trial.seed),
            )
        )
    if batch.congestion_window_s is not None:
        window = batch.congestion_window_s
        # Each flow's injection instant comes from its own trial seed
        # (stable whatever the batch order); the collision-jitter RNG
        # is the epoch's dedicated congestion stream.
        start_times = [
            random.Random(trial.seed).uniform(0.0, window) if window > 0 else 0.0
            for trial in batch.trials
        ]
        frame = (
            batch.congestion_frame_s
            if batch.congestion_frame_s is not None
            else DEFAULT_TX_DELAY_S
        )
        outcomes = simulate_traffic_batch(
            graph,
            flows,
            start_times,
            random.Random(batch.congestion_seed),
            frame_time_s=frame,
            dead_aps=first.dead_aps,
        )
        return [(o.delivered, o.transmissions) for o in outcomes]
    results = simulate_broadcast_batch(graph, flows, dead_aps=first.dead_aps)
    return [(r.delivered, r.transmissions) for r in results]


class ScenarioDriver:
    """Step one :class:`~repro.scenario.model.ScenarioSpec` to its result.

    Args:
        spec: the timeline to run.
        runner: trial runner for the per-flow broadcast fan-out; a
            serial one is created (and owned) when omitted.
        world: a prebuilt world to drive instead of building
            ``spec.world`` — for worlds with no preset (benchmarks,
            OSM imports).  A world without a ``spec`` of its own
            restricts the run to a serial runner (workers cannot
            rebuild it); ``spec.world`` then only labels seeds.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        runner: TrialRunner | None = None,
        world: World | None = None,
    ):
        self.spec = spec
        self._runner = runner if runner is not None else TrialRunner(workers=1)
        self._owns_runner = runner is None
        self.world = world if world is not None else spec.world.build()
        base_seed = spec.world.seed
        stream = spec.stream()
        self._flow_stream = stream + ":flow"
        # Construction randomness: every stream is keyed off the spec,
        # never off a shared sequential RNG, for worker invariance.
        self.profiles: dict[int, PowerProfile] = assign_power_profiles(
            self.world.graph.aps,
            random.Random(seed_for(base_seed, 0, stream + ":power")),
            battery_fraction=spec.battery_fraction,
            generator_fraction=spec.generator_fraction,
            battery_hours_range=spec.battery_hours_range,
        )
        self.flows: list[tuple[int, int]] = sample_building_pairs(
            self.world,
            spec.flows,
            random.Random(seed_for(base_seed, 0, stream + ":pairs")),
        )
        # Mobile flows: each gets two seeded walkers (source and
        # destination) whose trajectories stretch over the timeline;
        # per-epoch positions snap to AP-bearing buildings.  Their
        # randomness lives on dedicated streams so the static flows
        # above draw exactly what they always did.
        self._mobile_flow_stream = stream + ":mobileflow"
        self._mobile_tracks: list[tuple[list[int], list[int]]] = (
            self._walk_mobile_tracks(base_seed, stream)
        )
        self._mobile_pairs: list[tuple[int, int] | None] = [None] * len(
            self._mobile_tracks
        )
        self._mobile_plans: list[RoutePlan | None] = [None] * len(
            self._mobile_tracks
        )
        self._mobile_versions: list[int | None] = [None] * len(
            self._mobile_tracks
        )
        # Timeline state.
        self.graph: APGraph = self.world.graph  # extended at deploys
        self.deployed: tuple[DeployedAP, ...] = ()
        self._destroyed: set[int] = set()
        self._churn_until: dict[int, int] = {}  # ap id -> recovery epoch
        self._outages: list[tuple[Polygon | None, int]] = []  # (region, epoch)
        self._churn_windows: list[APChurn] = [
            ev for ev in spec.events if isinstance(ev, APChurn)
        ]
        # Flow routing state: last plan + the graph version it was
        # validated against (None plan = known-unroutable then).
        self._plans: list[RoutePlan | None] = [None] * len(self.flows)
        self._plan_versions: list[int | None] = [None] * len(self.flows)
        #: wall-clock seconds per stepped epoch (filled by :meth:`run`);
        #: benchmark-only — never part of the deterministic result.
        self.epoch_wall_s: list[float] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._owns_runner:
            self._runner.close()

    def __enter__(self) -> "ScenarioDriver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Mobility
    # ------------------------------------------------------------------
    def _walk_mobile_tracks(
        self, base_seed: int, stream: str
    ) -> list[tuple[list[int], list[int]]]:
        """Per-epoch (source, destination) building tracks per mobile flow.

        Each mobile flow gets two independent seeded random walks in
        the city's bounding box; :func:`~repro.measurement.\
buildings_along` stretches each walk over the timeline and snaps every
        epoch position to the nearest AP-bearing building.  Epochs
        where both walkers land in the same building shift the
        destination to its next-nearest distinct candidate, so a
        mobile flow always exercises the mesh.
        """
        spec = self.spec
        if spec.mobile_flows == 0:
            return []
        city = self.world.city
        ap_buildings = sorted(
            {ap.building_id for ap in self.world.graph.aps}
        )
        if len(ap_buildings) < 2:
            raise ValueError(
                "mobile flows need at least two AP-bearing buildings"
            )
        centroids = [(b, city.building(b).centroid()) for b in ap_buildings]
        min_x, min_y, max_x, max_y = city.bounds()
        extent = max(max_x - min_x, max_y - min_y)
        margin = min(100.0, extent * 0.25)
        tracks: list[tuple[list[int], list[int]]] = []
        for j in range(spec.mobile_flows):
            rng = random.Random(
                seed_for(base_seed, j, stream + ":mobility")
            )
            walks: list[Trajectory] = []
            for _ in range(2):
                # random_walk confines to [0, extent]^2; walk in local
                # coordinates and translate back to the city frame.
                start = Point(
                    rng.uniform(margin, extent - margin),
                    rng.uniform(margin, extent - margin),
                )
                walk = random_walk(start, extent, legs=6, rng=rng)
                walks.append(
                    Trajectory(
                        tuple(
                            Point(p.x + min_x, p.y + min_y)
                            for p in walk.waypoints
                        ),
                        walk.speed_mps,
                    )
                )
            src_walk, dst_walk = walks
            src_track = buildings_along(
                src_walk, city, spec.epochs, candidates=ap_buildings
            )
            dst_track = buildings_along(
                dst_walk, city, spec.epochs, candidates=ap_buildings
            )
            dst_positions = dst_walk.epoch_positions(spec.epochs)
            for e in range(spec.epochs):
                if dst_track[e] != src_track[e]:
                    continue
                p = dst_positions[e]
                alt, _c = min(
                    (
                        (b, c)
                        for b, c in centroids
                        if b != src_track[e]
                    ),
                    key=lambda item: (item[1].distance_to(p), item[0]),
                )
                dst_track[e] = alt
            tracks.append((src_track, dst_track))
        return tracks

    # ------------------------------------------------------------------
    # Alive-set derivation
    # ------------------------------------------------------------------
    def _covered(self, region: Polygon | None) -> list[int]:
        """AP ids whose position an outage region covers (all if None)."""
        if region is None:
            return list(range(len(self.graph.aps)))
        return [
            ap.id for ap in self.graph.aps if region.contains(ap.position)
        ]

    def _alive_set(self, epoch: int) -> set[int]:
        """Alive AP ids at the given epoch under all current state."""
        hour = epoch * self.spec.epoch_hours
        n = len(self.graph.aps)
        # Longest-running outage covering each AP (power does not
        # stack: what matters is how long this AP has been off-grid).
        elapsed: dict[int, float] = {}
        for region, start_epoch in self._outages:
            hours_out = hour - start_epoch * self.spec.epoch_hours
            for ap_id in self._covered(region):
                if elapsed.get(ap_id, -1.0) < hours_out:
                    elapsed[ap_id] = hours_out
        alive: set[int] = set()
        for ap_id in range(n):
            if ap_id in self._destroyed:
                continue
            if self._churn_until.get(ap_id, 0) > epoch:
                continue
            hours_out = elapsed.get(ap_id)
            if hours_out is not None and not self.profiles[ap_id].alive_at(
                hours_out
            ):
                continue
            alive.add(ap_id)
        return alive

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def _apply_damage(self, ev: Damage) -> list[int]:
        """Kill covered APs; return building ids to drop from routing."""
        for ap in self.graph.aps:
            if ap.id not in self._destroyed and ev.area.contains(ap.position):
                self._destroyed.add(ap.id)
        bg = self.world.building_graph
        return [b for b in list(bg) if ev.area.contains(bg.centroid(b))]

    def _apply_churn(self, ev: APChurn, epoch: int) -> None:
        eligible = [
            ap.id
            for ap in self.graph.aps
            if ap.id not in self._destroyed
            and self._churn_until.get(ap.id, 0) <= epoch
        ]
        count = int(ev.rate * len(eligible))
        if count == 0:
            return
        rng = random.Random(
            seed_for(self.spec.world.seed, epoch, self.spec.stream() + ":churn")
        )
        for ap_id in rng.sample(eligible, count):
            self._churn_until[ap_id] = epoch + ev.down_epochs

    def _apply_bridges(
        self, ev: DeployBridges, epoch: int
    ) -> tuple[int, list[tuple[int, int]]]:
        """Bridge the currently-alive islands; extend mesh and profiles.

        Returns the number of APs deployed and the routing links to
        announce (anchor-building pairs, one per bridged island).
        """
        alive = self._alive_set(epoch)
        islands = find_islands(
            self.graph, min_size=ev.min_island_size, alive=alive
        )
        if len(islands) <= 1:
            return 0, []
        main = islands[0]
        new_aps: list[DeployedAP] = []
        links: list[tuple[int, int]] = []
        bg = self.world.building_graph
        next_id = len(self.graph.aps)
        for island in islands[1:]:
            plan = plan_bridge(
                self.graph, main, island, spacing_factor=ev.spacing_factor
            )
            anchor = self.graph.aps[plan.from_ap].building_id
            far_anchor = self.graph.aps[plan.to_ap].building_id
            for pos in plan.new_positions:
                new_aps.append((next_id, pos.x, pos.y, anchor))
                next_id += 1
            if (
                anchor != far_anchor
                and anchor in bg
                and far_anchor in bg
            ):
                links.append((anchor, far_anchor))
        if new_aps:
            self.deployed = self.deployed + tuple(new_aps)
            self.graph = extended_graph(self.world, self.deployed)
            for ap_id, _x, _y, _b in new_aps:
                # Operator-maintained: generator-backed, outage-proof.
                self.profiles[ap_id] = PowerProfile(PowerSource.GENERATOR)
        return len(new_aps), links

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _refresh_plans(self) -> int:
        """Replan flows whose last route broke; returns the replan count.

        A sender replans lazily: only when it has no valid route yet
        (initial epoch, or it was unroutable and the map changed — a
        bridge may have appeared) or when any building of its cached
        route vanished from the map.  Validation runs over the full
        uncompressed route, not just the waypoints: a compressed
        two-waypoint header can span destroyed intermediates whose
        conduit now crosses a dead zone.  A surviving route is kept
        even if a newer map version might offer a better one.

        All stale flows replan through one
        :meth:`~repro.core.BuildingRouter.plan_batch` call, which runs
        a single Dijkstra tree per distinct source instead of one
        point-to-point search per flow.  Unroutable flows stay counted
        as replan *attempts* (they consumed planner work), matching the
        old per-flow accounting.
        """
        bg = self.world.building_graph
        version = bg.version
        stale: list[int] = []
        for i, (src, dst) in enumerate(self.flows):
            if self._plan_versions[i] == version:
                continue
            plan = self._plans[i]
            if plan is not None and all(b in bg for b in plan.route):
                self._plan_versions[i] = version
                continue
            stale.append(i)
        if not stale:
            return 0
        planned = self.world.router.plan_batch([self.flows[i] for i in stale])
        for i in stale:
            self._plans[i] = planned.get(self.flows[i])
            self._plan_versions[i] = version
        return len(stale)

    def _refresh_mobile_plans(self, epoch: int) -> int:
        """Advance mobile endpoints to this epoch and replan the broken.

        Same lazy discipline as :meth:`_refresh_plans`, with one extra
        invalidation source: a walker that moved to a different
        building drops its cached route (its old plan no longer starts
        or ends where it stands).  Unroutable pairs still count as
        replan attempts.
        """
        if not self._mobile_tracks:
            return 0
        bg = self.world.building_graph
        version = bg.version
        stale: list[int] = []
        for j, (src_track, dst_track) in enumerate(self._mobile_tracks):
            pair = (src_track[epoch], dst_track[epoch])
            if pair != self._mobile_pairs[j]:
                self._mobile_pairs[j] = pair
                self._mobile_plans[j] = None
                self._mobile_versions[j] = None
            if self._mobile_versions[j] == version:
                continue
            plan = self._mobile_plans[j]
            if plan is not None and all(b in bg for b in plan.route):
                self._mobile_versions[j] = version
                continue
            stale.append(j)
        if not stale:
            return 0
        planned = self.world.router.plan_batch(
            [self._mobile_pairs[j] for j in stale]
        )
        for j in stale:
            self._mobile_plans[j] = planned.get(self._mobile_pairs[j])
            self._mobile_versions[j] = version
        return len(stale)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def _step(self, epoch: int) -> EpochReport:
        spec = self.spec
        bg = self.world.building_graph
        before = bg.stats()
        fired: list[str] = []
        removals: list[int] = []
        links: list[tuple[int, int]] = []
        deployed_now = 0
        with span("scenario.events", epoch=epoch):
            for ev in spec.events:
                if isinstance(ev, APChurn):
                    # Windows fire every epoch they span, not at start.
                    if ev.epoch <= epoch <= ev.until_epoch:
                        self._apply_churn(ev, epoch)
                        fired.append(ev.describe())
                    continue
                if ev.epoch != epoch:
                    continue
                fired.append(ev.describe())
                if isinstance(ev, GridOutage):
                    self._outages.append((ev.region, epoch))
                elif isinstance(ev, PowerRestored):
                    self._outages = [
                        (region, start)
                        for region, start in self._outages
                        if ev.region is not None and region != ev.region
                    ]
                elif isinstance(ev, Damage):
                    removals.extend(self._apply_damage(ev))
                elif isinstance(ev, DeployBridges):
                    count, new_links = self._apply_bridges(ev, epoch)
                    deployed_now += count
                    links.extend(new_links)
        with span("scenario.patch", epoch=epoch):
            mutated = bg.patch(remove=removals, add_links=links)
        with span("scenario.replan", epoch=epoch):
            replans = self._refresh_plans() + self._refresh_mobile_plans(
                epoch
            )

        with span("scenario.islands", epoch=epoch):
            alive = self._alive_set(epoch)
            islands = find_islands(self.graph, min_size=1, alive=alive)
        REGISTRY.gauge("scenario.alive_aps").set(len(alive))
        island_of: dict[int, int] = {}
        for idx, island in enumerate(islands):
            for ap_id in island.ap_ids:
                island_of[ap_id] = idx

        dead = (
            frozenset(range(len(self.graph.aps))) - alive
            if len(alive) < len(self.graph.aps)
            else frozenset()
        )
        trials: list[ScenarioFlowTrial] = []
        routable = 0
        reachable = 0

        def score_flow(
            src: int, dst: int, plan: RoutePlan | None, seed: int
        ) -> None:
            nonlocal routable, reachable
            if plan is not None:
                routable += 1
            src_alive = [
                a for a in self.graph.aps_in_building(src) if a in alive
            ]
            dst_islands = {
                island_of[a]
                for a in self.graph.aps_in_building(dst)
                if a in alive
            }
            flow_reachable = any(
                island_of[a] in dst_islands for a in src_alive
            )
            if flow_reachable:
                reachable += 1
            if plan is None or not src_alive:
                return
            # Source failover: the building's first alive AP sends.
            trials.append(
                ScenarioFlowTrial(
                    src_building=src,
                    dst_building=dst,
                    source_ap=src_alive[0],
                    waypoint_ids=plan.waypoint_ids,
                    conduit_width=spec.world.conduit_width,
                    dead_aps=dead,
                    deployed=self.deployed,
                    seed=seed,
                )
            )

        for i, (src, dst) in enumerate(self.flows):
            score_flow(
                src,
                dst,
                self._plans[i],
                seed_for(
                    spec.world.seed,
                    epoch * len(self.flows) + i,
                    self._flow_stream,
                ),
            )
        for j, pair in enumerate(self._mobile_pairs):
            assert pair is not None  # set by _refresh_mobile_plans
            score_flow(
                pair[0],
                pair[1],
                self._mobile_plans[j],
                seed_for(
                    spec.world.seed,
                    epoch * len(self._mobile_pairs) + j,
                    self._mobile_flow_stream,
                ),
            )

        # The world's own spec (== spec.world for built worlds) is what
        # workers rebuild from; an injected spec-less world runs serial.
        # The epoch's flows ship as ONE batch item so the executor
        # freezes the world (CSR, dead mask, verdict bitmaps) once.
        if spec.congestion is not None:
            batch = ScenarioEpochBatch(
                trials=tuple(trials),
                congestion_window_s=spec.congestion.window_s,
                congestion_frame_s=spec.congestion.frame_time_s,
                congestion_seed=seed_for(
                    spec.world.seed, epoch, spec.stream() + ":congestion"
                ),
            )
        else:
            batch = ScenarioEpochBatch(trials=tuple(trials))
        with span("scenario.simulate", epoch=epoch, flows=len(trials)):
            outcomes = (
                self._runner.map(
                    scenario_epoch_batch,
                    [batch],
                    spec=self.world.spec,
                    world=self.world,
                )[0]
                if trials
                else []
            )
        delivered = sum(1 for ok, _tx in outcomes if ok)
        transmissions = sum(tx for _ok, tx in outcomes)

        after = bg.stats()
        reported_islands = sum(
            1 for island in islands if island.size >= spec.min_island_size
        )
        return EpochReport(
            epoch=epoch,
            hour=epoch * spec.epoch_hours,
            events=tuple(fired),
            alive_aps=len(alive),
            total_aps=len(self.graph.aps),
            islands=reported_islands,
            largest_island=islands[0].size if islands else 0,
            graph_version=bg.version,
            mutated=mutated,
            deployed_aps=deployed_now,
            replans=replans,
            flows=len(self.flows) + len(self._mobile_pairs),
            routable_flows=routable,
            reachable_flows=reachable,
            simulated_flows=len(trials),
            delivered_flows=delivered,
            delivery_rate=delivered
            / (len(self.flows) + len(self._mobile_pairs)),
            transmissions=transmissions,
            route_cache_hits=int(after["route_cache_hits"] - before["route_cache_hits"]),
            route_cache_misses=int(
                after["route_cache_misses"] - before["route_cache_misses"]
            ),
        )

    def run(self) -> ScenarioResult:
        """Step the full timeline and aggregate the reports.

        The result carries a :class:`~repro.obs.RunManifest` (git SHA,
        config hash of the spec's stream, seed, wall/CPU/RSS cost) —
        the only non-deterministic block in its JSON.
        """
        manifest = RunManifest.begin(
            config=self.spec.stream(), seed=self.spec.world.seed
        )
        reports: list[EpochReport] = []
        self.epoch_wall_s: list[float] = []
        with span("scenario.run", scenario=self.spec.name):
            for e in range(self.spec.epochs):
                with span("scenario.epoch", epoch=e):
                    t0 = time.perf_counter()
                    reports.append(self._step(e))
                    # Wall-clock per epoch, for benchmark percentiles.
                    # Kept on the driver, NOT in the result: the
                    # ScenarioResult JSON stays deterministic.
                    self.epoch_wall_s.append(time.perf_counter() - t0)
        return ScenarioResult(
            name=self.spec.name,
            city=self.spec.world.city_name,
            seed=self.spec.world.seed,
            epoch_hours=self.spec.epoch_hours,
            flow_count=len(self.flows) + len(self._mobile_pairs),
            initial_aps=len(self.world.graph.aps),
            epochs=tuple(reports),
            manifest=manifest.finish().to_dict(),
        )


def run_scenario(
    spec: ScenarioSpec,
    workers: int = 1,
    runner: TrialRunner | None = None,
) -> ScenarioResult:
    """Convenience wrapper: drive a spec to its result.

    ``workers`` builds (and tears down) a throwaway runner when no
    ``runner`` is supplied; the result is invariant under either.
    """
    if runner is not None:
        with ScenarioDriver(spec, runner=runner) as driver:
            return driver.run()
    with TrialRunner(workers=workers) as owned:
        with ScenarioDriver(spec, runner=owned) as driver:
            return driver.run()
