"""Oracle unicast: the lower bound used as the overhead denominator.

§4 defines transmission overhead against "the minimum number of
transmissions necessary to reach from source to destination for the
same realization of AP placement" — i.e. BFS over the ground-truth AP
graph, which no real protocol could know.
"""

from __future__ import annotations

from ..mesh import APGraph
from .outcome import RoutingOutcome


def oracle_unicast(graph: APGraph, source_ap: int, dest_building: int) -> RoutingOutcome:
    """Route along the true shortest AP path (omniscient baseline)."""
    hops = graph.min_hops_to_building(source_ap, dest_building)
    if hops is None:
        return RoutingOutcome(
            scheme="oracle", delivered=False, data_transmissions=0, path_hops=None
        )
    return RoutingOutcome(
        scheme="oracle",
        delivered=True,
        data_transmissions=hops,
        path_hops=hops,
    )
