"""Greedy geographic forwarding (the greedy mode of GPSR [27]).

Each AP forwards the packet to its neighbour geographically closest to
the destination, and fails at a local minimum ("void") where no
neighbour is closer than itself.  The paper's related-work section
argues such schemes degrade in cities; this baseline quantifies that.

Unlike CityMesh, greedy forwarding needs every node to know its
neighbours' positions (beaconing); the per-node beacon cost is modelled
via ``beacon_cost_per_node``.
"""

from __future__ import annotations

from ..geometry import Point
from ..mesh import APGraph
from .outcome import RoutingOutcome

MAX_HOPS_FACTOR = 4  # give up after 4x the AP count (loop guard)


def greedy_geographic(
    graph: APGraph,
    source_ap: int,
    dest_building: int,
    dest_position: Point,
    count_beacons: bool = False,
) -> RoutingOutcome:
    """Forward greedily towards ``dest_position``.

    Args:
        graph: ground-truth AP mesh (greedy nodes know one-hop
            neighbour positions, as GPSR's beaconing provides).
        source_ap: injecting AP.
        dest_building: delivery succeeds when the packet reaches any AP
            of this building.
        dest_position: the geographic target (destination building
            centroid — what a CityMesh-style map lookup would give).
        count_beacons: when True, one beacon per mesh node is charged
            as control traffic (a single round of neighbour discovery,
            the bare minimum GPSR needs).
    """
    dest_aps = set(graph.aps_in_building(dest_building))
    control = len(graph.aps) if count_beacons else 0
    if not dest_aps:
        return RoutingOutcome("greedy", False, 0, control)
    current = source_ap
    hops = 0
    visited = {current}
    limit = MAX_HOPS_FACTOR * len(graph.aps)
    while hops < limit:
        if current in dest_aps:
            return RoutingOutcome(
                "greedy", True, hops, control, path_hops=hops
            )
        current_d = graph.position(current).distance_to(dest_position)
        best = None
        best_d = current_d
        for neighbor in graph.neighbors(current):
            d = graph.position(neighbor).distance_to(dest_position)
            if d < best_d:
                best = neighbor
                best_d = d
        if best is None:
            # Local minimum: greedy mode is stuck (GPSR would enter
            # perimeter mode here; see perimeter.py for that variant).
            return RoutingOutcome("greedy", False, hops, control)
        current = best
        visited.add(current)
        hops += 1
    return RoutingOutcome("greedy", False, hops, control)
