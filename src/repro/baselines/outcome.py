"""A common result type so baselines and CityMesh compare uniformly."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RoutingOutcome:
    """Outcome of routing one packet with some scheme.

    Attributes:
        scheme: short name ("citymesh", "flood", "greedy", "aodv", …).
        delivered: whether the packet reached the destination building.
        data_transmissions: broadcasts/forwards of the data packet.
        control_transmissions: control-plane packets spent (route
            discovery floods, RREPs, beacons) — zero for stateless
            schemes like CityMesh and flooding.
        path_hops: data-path length in hops when known.
    """

    scheme: str
    delivered: bool
    data_transmissions: int
    control_transmissions: int = 0
    path_hops: int | None = None

    @property
    def total_transmissions(self) -> int:
        """All packets put on the air for this delivery."""
        return self.data_transmissions + self.control_transmissions

    def overhead_vs(self, ideal_hops: int) -> float | None:
        """Total transmissions per ideal-unicast hop (None if undefined)."""
        if not self.delivered or ideal_hops <= 0:
            return None
        return self.total_transmissions / ideal_hops
