"""GPSR with perimeter-mode recovery (Karp & Kung [27]).

Greedy forwarding switches to perimeter mode at a void: the packet
walks faces of a planarized connectivity graph (Gabriel graph) using
the right-hand rule until it reaches a node closer to the destination
than where it got stuck, then resumes greedy.  This is the strongest
traditional geographic baseline the paper's related work discusses.
"""

from __future__ import annotations

import math

from ..geometry import Point
from ..mesh import APGraph
from .outcome import RoutingOutcome

MAX_HOPS_FACTOR = 6


def gabriel_graph(graph: APGraph) -> dict[int, list[int]]:
    """Planarize the unit-disk graph with the Gabriel condition.

    Edge (u, v) survives iff no other node lies inside the disc whose
    diameter is uv.  The result is planar for nodes in general position
    and keeps connectivity for unit-disk graphs.
    """
    adjacency: dict[int, list[int]] = {ap.id: [] for ap in graph.aps}
    for ap in graph.aps:
        u = ap.id
        pu = ap.position
        for v in graph.neighbors(u):
            if v <= u:
                continue
            pv = graph.position(v)
            mid = Point((pu.x + pv.x) / 2.0, (pu.y + pv.y) / 2.0)
            radius = pu.distance_to(pv) / 2.0
            blocked = False
            for w in graph.aps_within(mid, radius):
                if w != u and w != v and graph.position(w).distance_to(mid) < radius - 1e-9:
                    blocked = True
                    break
            if not blocked:
                adjacency[u].append(v)
                adjacency[v].append(u)
    return adjacency


def _angle(a: Point, b: Point) -> float:
    return math.atan2(b.y - a.y, b.x - a.x)


def _right_hand_next(
    planar: dict[int, list[int]],
    graph: APGraph,
    current: int,
    came_from_angle: float,
) -> int | None:
    """The next edge counter-clockwise from the incoming direction.

    Standard right-hand-rule face walk: among the current node's planar
    neighbours, pick the one whose bearing is the smallest positive
    rotation counter-clockwise from the reversed incoming edge.
    """
    neighbors = planar[current]
    if not neighbors:
        return None
    p = graph.position(current)
    best = None
    best_turn = math.inf
    for n in neighbors:
        angle = _angle(p, graph.position(n))
        turn = (angle - came_from_angle) % (2 * math.pi)
        if turn < 1e-12:
            turn = 2 * math.pi  # going straight back is the last resort
        if turn < best_turn:
            best_turn = turn
            best = n
    return best


def gpsr(
    graph: APGraph,
    source_ap: int,
    dest_building: int,
    dest_position: Point,
    planar: dict[int, list[int]] | None = None,
    count_beacons: bool = False,
) -> RoutingOutcome:
    """GPSR: greedy forwarding with perimeter-mode recovery.

    Args:
        graph: ground-truth AP mesh.
        source_ap: injecting AP.
        dest_building: delivery target (any AP of this building).
        dest_position: geographic destination (building centroid).
        planar: a precomputed Gabriel graph (recomputed per call when
            omitted; pass it explicitly when running many pairs).
        count_beacons: charge one beacon per node as control traffic.
    """
    dest_aps = set(graph.aps_in_building(dest_building))
    control = len(graph.aps) if count_beacons else 0
    if not dest_aps:
        return RoutingOutcome("gpsr", False, 0, control)
    if planar is None:
        planar = gabriel_graph(graph)

    current = source_ap
    hops = 0
    limit = MAX_HOPS_FACTOR * len(graph.aps)
    mode = "greedy"
    perimeter_entry_d = math.inf
    first_perimeter_edge: tuple[int, int] | None = None
    prev = current

    while hops < limit:
        if current in dest_aps:
            return RoutingOutcome("gpsr", True, hops, control, path_hops=hops)
        current_d = graph.position(current).distance_to(dest_position)
        if mode == "perimeter" and current_d < perimeter_entry_d:
            mode = "greedy"
        if mode == "greedy":
            best = None
            best_d = current_d
            for neighbor in graph.neighbors(current):
                d = graph.position(neighbor).distance_to(dest_position)
                if d < best_d:
                    best = neighbor
                    best_d = d
            if best is not None:
                prev, current = current, best
                hops += 1
                continue
            # Void: switch to perimeter mode.
            mode = "perimeter"
            perimeter_entry_d = current_d
            first_perimeter_edge = None
            # First perimeter hop: walk the face bordering the line to
            # the destination — start from the bearing towards it.
            incoming = _angle(graph.position(current), dest_position)
            nxt = _right_hand_next(planar, graph, current, incoming)
            if nxt is None:
                return RoutingOutcome("gpsr", False, hops, control)
            first_perimeter_edge = (current, nxt)
            prev, current = current, nxt
            hops += 1
            continue
        # Perimeter mode: continue the face walk.
        incoming = _angle(graph.position(current), graph.position(prev))
        nxt = _right_hand_next(planar, graph, current, incoming)
        if nxt is None:
            return RoutingOutcome("gpsr", False, hops, control)
        if (current, nxt) == first_perimeter_edge:
            # Completed a full loop around the face: destination is
            # unreachable from this face.
            return RoutingOutcome("gpsr", False, hops, control)
        prev, current = current, nxt
        hops += 1
    return RoutingOutcome("gpsr", False, hops, control)
