"""AODV-style reactive route discovery (Perkins & Royer [48]).

The paper's related-work section notes that reactive MANET protocols
flood a route request (RREQ) through the network on every route
construction, "quickly wasting the bandwidth which should be reserved
for data packet transmissions".  This model charges exactly that cost:

- RREQ: a network-wide flood over the source's connected component
  (every node rebroadcasts once — the classic expanding-ring search is
  omitted, matching the worst but common case of an unknown target),
- RREP: unicast back along the reverse path (``hops`` transmissions),
- data: unicast along the discovered path (``hops`` transmissions).
"""

from __future__ import annotations

from ..mesh import APGraph
from .outcome import RoutingOutcome


def aodv(graph: APGraph, source_ap: int, dest_building: int) -> RoutingOutcome:
    """Route one packet with AODV-style discovery plus unicast data."""
    hops = graph.min_hops_to_building(source_ap, dest_building)
    component = graph.component_of(source_ap)
    if hops is None:
        # The RREQ flood happens (and is wasted) even when the target
        # is unreachable.
        return RoutingOutcome(
            scheme="aodv",
            delivered=False,
            data_transmissions=0,
            control_transmissions=len(component),
        )
    rreq_flood = len(component)
    rrep_unicast = hops
    return RoutingOutcome(
        scheme="aodv",
        delivered=True,
        data_transmissions=hops,
        control_transmissions=rreq_flood + rrep_unicast,
        path_hops=hops,
    )
