"""Running CityMesh itself under the common baseline interface."""

from __future__ import annotations

import random

from ..buildgraph import NoRouteError
from ..city import City
from ..core import BuildingRouter
from ..mesh import APGraph
from ..sim import (
    ConduitPolicy,
    FloodPolicy,
    GossipPolicy,
    SimParams,
    simulate_broadcast,
)
from .outcome import RoutingOutcome


def run_citymesh(
    city: City,
    graph: APGraph,
    router: BuildingRouter,
    source_ap: int,
    dest_building: int,
    rng: random.Random,
    params: SimParams | None = None,
) -> RoutingOutcome:
    """One CityMesh delivery under the common outcome interface."""
    src_building = graph.aps[source_ap].building_id
    try:
        plan = router.plan(src_building, dest_building)
    except (NoRouteError, KeyError):
        return RoutingOutcome("citymesh", False, 0)
    policy = ConduitPolicy(plan.conduits, city)
    result = simulate_broadcast(
        graph, source_ap, dest_building, policy, rng, params=params
    )
    return RoutingOutcome(
        scheme="citymesh",
        delivered=result.delivered,
        data_transmissions=result.transmissions,
    )


def run_flood(
    graph: APGraph,
    source_ap: int,
    dest_building: int,
    rng: random.Random,
    params: SimParams | None = None,
) -> RoutingOutcome:
    """Blind flooding under the common outcome interface."""
    result = simulate_broadcast(
        graph, source_ap, dest_building, FloodPolicy(), rng, params=params
    )
    return RoutingOutcome(
        scheme="flood",
        delivered=result.delivered,
        data_transmissions=result.transmissions,
    )


def run_gossip(
    graph: APGraph,
    source_ap: int,
    dest_building: int,
    p: float,
    rng: random.Random,
    params: SimParams | None = None,
) -> RoutingOutcome:
    """Probabilistic gossip under the common outcome interface."""
    result = simulate_broadcast(
        graph, source_ap, dest_building, GossipPolicy(p=p, rng=rng), rng, params=params
    )
    return RoutingOutcome(
        scheme=f"gossip-{p:.2f}",
        delivered=result.delivered,
        data_transmissions=result.transmissions,
    )
