"""Baseline routing schemes CityMesh is evaluated against."""

from .aodv import aodv
from .citymesh_runner import run_citymesh, run_flood, run_gossip
from .greedy import greedy_geographic
from .oracle import oracle_unicast
from .outcome import RoutingOutcome
from .perimeter import gabriel_graph, gpsr

__all__ = [
    "RoutingOutcome",
    "aodv",
    "gabriel_graph",
    "gpsr",
    "greedy_geographic",
    "oracle_unicast",
    "run_citymesh",
    "run_flood",
    "run_gossip",
]
