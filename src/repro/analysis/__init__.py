"""Statistics and table-formatting helpers for experiments."""

from .stats import Cdf, WhiskerBin, mean, percentile, whisker_bins
from .tables import format_csv, format_table

__all__ = [
    "Cdf",
    "WhiskerBin",
    "format_csv",
    "format_table",
    "mean",
    "percentile",
    "whisker_bins",
]
