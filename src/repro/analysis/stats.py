"""Statistics helpers shared by the measurement study and experiments.

These mirror the statistical artefacts in the paper: empirical CDFs
(Figures 1a/1b), percentile whiskers per distance bin (Figure 2), and
simple summary rows for tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Cdf:
    """An empirical cumulative distribution function.

    ``values`` are sorted sample values; ``fractions[i]`` is the fraction
    of samples ``<= values[i]``.
    """

    values: tuple[float, ...]
    fractions: tuple[float, ...]

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "Cdf":
        """Build the empirical CDF of a non-empty sample set."""
        if not samples:
            raise ValueError("cannot build a CDF from zero samples")
        ordered = sorted(samples)
        n = len(ordered)
        return Cdf(tuple(ordered), tuple((i + 1) / n for i in range(n)))

    def __len__(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """Fraction of samples ``<= x`` (0 below the minimum)."""
        lo, hi = 0, len(self.values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.values[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return 0.0 if lo == 0 else self.fractions[lo - 1]

    def quantile(self, q: float) -> float:
        """The smallest sample value with CDF fraction ``>= q``.

        Raises:
            ValueError: if ``q`` is outside (0, 1].
        """
        if not 0 < q <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        for value, frac in zip(self.values, self.fractions):
            if frac >= q - 1e-12:
                return value
        return self.values[-1]

    def median(self) -> float:
        """The 50th percentile."""
        return self.quantile(0.5)

    def series(self, points: int = 100) -> list[tuple[float, float]]:
        """Downsample to ``points`` (value, fraction) pairs for plotting."""
        n = len(self.values)
        if n <= points:
            return list(zip(self.values, self.fractions))
        idx = [round(i * (n - 1) / (points - 1)) for i in range(points)]
        return [(self.values[i], self.fractions[i]) for i in idx]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample set (q in [0, 100])."""
    if not samples:
        raise ValueError("percentile of empty sample set is undefined")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if q == 0:
        return ordered[0]
    rank = math.ceil(q / 100 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class WhiskerBin:
    """One Figure-2-style bin: a range of distances and the 10/25/50/75/100
    percentiles of the per-pair common-AP counts that fell into it."""

    lo: float
    hi: float
    count: int
    p10: float
    p25: float
    p50: float
    p75: float
    p100: float


def whisker_bins(
    pairs: Sequence[tuple[float, float]],
    bin_width: float,
    max_value: float | None = None,
) -> list[WhiskerBin]:
    """Bin ``(x, y)`` pairs by ``x`` and compute Figure-2 whiskers of ``y``.

    Args:
        pairs: (distance, count) samples.
        bin_width: width of each distance bin in metres.
        max_value: optional cap; samples with x beyond it are dropped.

    Returns:
        Bins in increasing distance order; empty bins are omitted.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    buckets: dict[int, list[float]] = {}
    for x, y in pairs:
        if max_value is not None and x > max_value:
            continue
        buckets.setdefault(int(x // bin_width), []).append(y)
    bins = []
    for b in sorted(buckets):
        ys = buckets[b]
        bins.append(
            WhiskerBin(
                lo=b * bin_width,
                hi=(b + 1) * bin_width,
                count=len(ys),
                p10=percentile(ys, 10),
                p25=percentile(ys, 25),
                p50=percentile(ys, 50),
                p75=percentile(ys, 75),
                p100=percentile(ys, 100),
            )
        )
    return bins


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sample set."""
    if not samples:
        raise ValueError("mean of empty sample set is undefined")
    return sum(samples) / len(samples)
