"""Plain-text table formatting for experiment output.

Every experiment driver returns structured rows *and* can print a
paper-style table; this module does the printing so the drivers stay
data-only.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are shown with 3 significant decimals; everything else via
    ``str``.
    """
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as CSV text (no quoting needed for our numeric data)."""
    out = [",".join(headers)]
    for row in rows:
        out.append(",".join(_fmt(cell) for cell in row))
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
