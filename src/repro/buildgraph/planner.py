"""Shortest-path planning over the building graph.

The search core is a binary-heap Dijkstra with an optional A* heuristic
hook.  :class:`repro.buildgraph.BuildingGraph` drives it with a
consistent scaled-straight-line heuristic (see ``_heuristic_scale`` in
:mod:`repro.buildgraph.graph` for why the naive cubed distance is *not*
admissible); duck-typed graph views (e.g. the detour view in
:mod:`repro.security.resilient`) fall back to plain Dijkstra.

Determinism: the heap orders ties by ``(f, building id)``, so equal-cost
frontiers pop in id order and the same graph always yields the same
route — the tie-stability the experiment suite relies on for fixed
seeds.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Hashable, Iterable, Mapping, Sequence

Node = Hashable
NeighborsFn = Callable[[Node], Mapping[Node, float]]
HeuristicFn = Callable[[Node], float]


class NoRouteError(Exception):
    """No path exists between the requested buildings.

    Raised when the endpoints sit on different connected components of
    the predicted building graph — the paper's Washington-D.C. effect,
    where rivers/parks fracture the mesh into islands.
    """


def heap_search(
    neighbors_of: NeighborsFn,
    src: Node,
    dst: Node,
    heuristic: HeuristicFn | None = None,
) -> tuple[list[Node] | None, int]:
    """Point-to-point shortest path via heap Dijkstra / A*.

    Args:
        neighbors_of: maps a node to a ``{neighbor: edge weight}`` view.
        src / dst: endpoint nodes (assumed present in the graph).
        heuristic: optional *consistent* lower bound on remaining cost;
            ``None`` degrades to plain Dijkstra.

    Returns:
        ``(route, nodes_expanded)`` where ``route`` is ``None`` when
        ``dst`` is unreachable.  ``nodes_expanded`` counts heap pops
        that settled a node — the work metric ``stats()`` exposes.
    """
    if src == dst:
        return [src], 0
    h = heuristic
    dist: dict[Node, float] = {src: 0.0}
    parent: dict[Node, Node] = {}
    done: set[Node] = set()
    heap: list[tuple[float, Node]] = [(h(src) if h is not None else 0.0, src)]
    expanded = 0
    while heap:
        _, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        expanded += 1
        if u == dst:
            route = [dst]
            while route[-1] != src:
                route.append(parent[route[-1]])
            route.reverse()
            return route, expanded
        du = dist[u]
        for v, w in neighbors_of(u).items():
            if v in done:
                continue
            nd = du + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd + (h(v) if h is not None else 0.0), v))
    return None, expanded


def sssp_tree(
    neighbors_of: NeighborsFn,
    src: Node,
    targets: Iterable[Node] | None = None,
) -> tuple[dict[Node, float], dict[Node, Node], int]:
    """Single-source Dijkstra tree, optionally stopping early.

    The backbone of batched many-to-many planning: one tree serves
    every destination that shares the source.  When ``targets`` is
    given the search stops as soon as all of them are settled (it never
    does *more* work than a full expansion).

    Returns:
        ``(dist, parent, nodes_expanded)``.
    """
    remaining = set(targets) if targets is not None else None
    if remaining is not None:
        remaining.discard(src)
    dist: dict[Node, float] = {src: 0.0}
    parent: dict[Node, Node] = {}
    done: set[Node] = set()
    heap: list[tuple[float, Node]] = [(0.0, src)]
    expanded = 0
    while heap:
        _, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        expanded += 1
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        du = dist[u]
        for v, w in neighbors_of(u).items():
            if v in done:
                continue
            nd = du + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd, v))
    return dist, parent, expanded


def extract_route(parent: Mapping[Node, Node], src: Node, dst: Node) -> list[Node] | None:
    """Walk a Dijkstra ``parent`` tree back from ``dst`` to ``src``."""
    if src == dst:
        return [src]
    if dst not in parent:
        return None
    route = [dst]
    while route[-1] != src:
        route.append(parent[route[-1]])
    route.reverse()
    return route


def plan_building_route(graph, src_building: int, dst_building: int) -> list[int]:
    """Plan the minimum-weight building route between two buildings.

    Dispatches to the graph's own cached/A* ``plan`` when available
    (:class:`BuildingGraph`); any duck-typed view exposing
    ``__contains__`` and ``neighbors`` (e.g. a penalised detour view)
    gets a plain heap Dijkstra.

    Raises:
        KeyError: if either endpoint is missing from the graph.
        NoRouteError: if the endpoints are on disconnected islands.
    """
    plan = getattr(graph, "plan", None)
    if callable(plan):
        return plan(src_building, dst_building)
    if src_building not in graph:
        raise KeyError(src_building)
    if dst_building not in graph:
        raise KeyError(dst_building)
    route, _ = heap_search(graph.neighbors, src_building, dst_building)
    if route is None:
        raise NoRouteError(
            f"no predicted path between buildings {src_building} and {dst_building}"
        )
    return route


def plan_routes(
    graph, pairs: Sequence[tuple[int, int]]
) -> list[list[int] | None]:
    """Batched many-to-many planning (see ``BuildingGraph.plan_routes``).

    Delegates to the graph's batched implementation when it has one;
    otherwise falls back to per-pair planning with ``None`` marking
    unroutable or unknown pairs.
    """
    batched = getattr(graph, "plan_routes", None)
    if callable(batched):
        return batched(pairs)
    results: list[list[int] | None] = []
    for src, dst in pairs:
        try:
            results.append(plan_building_route(graph, src, dst))
        except (NoRouteError, KeyError):
            results.append(None)
    return results


def route_length_m(graph, route: Sequence[int]) -> float:
    """Geometric route length: summed centroid-to-centroid metres."""
    if len(route) < 2:
        return 0.0
    centroids = [graph.centroid(b) for b in route]
    return sum(a.distance_to(b) for a, b in zip(centroids, centroids[1:]))
