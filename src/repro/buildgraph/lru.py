"""A small bounded LRU cache with hit/miss accounting.

Shared by the route cache in :class:`repro.buildgraph.BuildingGraph`
and the conduit-reconstruction cache in
:class:`repro.core.ConduitMembership`.  Both sit on hot paths (every
send, every AP's rebroadcast decision), so the implementation leans on
``OrderedDict``'s C-level ``move_to_end`` and keeps per-op overhead to
a couple of dict operations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[K, V]):
    """Bounded mapping that evicts the least-recently-used entry.

    Args:
        maxsize: maximum number of entries held; must be >= 1.

    Attributes:
        hits / misses / evictions: monotone counters, readable at any
            time and reset via :meth:`reset_counters`.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[K, V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        """Membership test; does not touch recency or the counters."""
        return key in self._data

    def get(self, key: K, default: V | None = None) -> V | None:
        """The cached value (marked most-recently-used) or ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Insert or refresh ``key``, evicting the LRU entry if full."""
        data = self._data
        if key in data:
            data.move_to_end(key)
            data[key] = value
            return
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept; see reset_counters)."""
        self._data.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def counters(self) -> dict[str, int]:
        """A snapshot of size and the accounting counters."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def approx_bytes(self) -> int:
        """Approximate retained memory of keys plus values, in bytes.

        A cheap structural model, not ``sys.getsizeof`` recursion: per
        entry the dict slot plus both objects, where tuples (route
        lists, waypoint keys) count 8 bytes per element over a fixed
        object header.  Used by the cache-memory gauges; the point is
        trend and order of magnitude per shard, not byte accuracy.
        """
        total = 0
        for key, value in self._data.items():
            total += _ENTRY_OVERHEAD
            total += _approx_obj_bytes(key)
            total += _approx_obj_bytes(value)
        return total


#: Dict-slot + bookkeeping cost charged per cache entry.
_ENTRY_OVERHEAD = 96


def _approx_obj_bytes(obj: object) -> int:
    """Flat size model for the object shapes the caches actually hold."""
    if isinstance(obj, tuple):
        inner = sum(
            _approx_obj_bytes(item) if isinstance(item, (tuple, dict)) else 8
            for item in obj
        )
        return 56 + inner
    if isinstance(obj, (list, frozenset, set)):
        return 56 + 8 * len(obj)
    if isinstance(obj, dict):
        return 64 + 40 * len(obj)
    return 32
