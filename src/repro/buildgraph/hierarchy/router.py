"""MetroRouter: exact hierarchical planning over contracted regions.

Planning a route runs three stages:

1. **Terminal Dijkstra** — a full single-source tree over the source
   and destination regions' intra subgraphs (cached per region, so a
   batch reusing sources pays once).
2. **Overlay A*** — Dijkstra/A* over the global border graph, where
   settling a border relaxes *all* of its region's borders in one
   numpy row operation against the region's contracted matrix ``D``,
   plus the original cross-region edges one by one.  Virtual source
   and destination attachment comes from the terminal trees, and with
   the graph's consistent straight-line heuristic the search stops as
   soon as the heap front can no longer beat the best complete route.
3. **Expansion** — only the contracted edges on the winning border
   chain expand to full intra-region paths (per-region LRU cached);
   cross edges are literal hops.

The result is cost-identical to the flat planner (see
:mod:`.overlay` for the exactness argument); only float association
order differs.  Caches — route, negative, leg-expansion, terminal —
shard per region, and a mutation listener on the owning
:class:`~repro.buildgraph.BuildingGraph` marks only the touched
regions dirty so a patch rebuilds a couple of overlays, not the metro.
"""

from __future__ import annotations

import math
import time
from heapq import heappop, heappush

import numpy as np

from ...obs import REGISTRY
from ..lru import LRUCache
from ..planner import NoRouteError, extract_route, heap_search, sssp_tree
from .overlay import RegionOverlay, build_overlay
from .partition import (
    DEFAULT_REGION_SIZE,
    RegionPartition,
    partition_regions,
)

_M_PLANS = REGISTRY.counter("metro.plan_calls")
_M_SEARCH_S = REGISTRY.timer("metro.route_search_s")
_M_SETTLED = REGISTRY.counter("metro.overlay_settled")
_M_REBUILDS = REGISTRY.counter("metro.region_rebuilds")

# Per-shard cache bounds.  Routes/legs are tuples of building ids, so
# shard_count * bound * route_length bounds retained bytes; terminal
# entries hold two region-sized dicts and get a much smaller bound.
DEFAULT_ROUTE_CACHE_PER_REGION = 256
DEFAULT_EXPANSION_CACHE_PER_REGION = 512
DEFAULT_TERMINAL_CACHE_PER_REGION = 4

# Sentinel for pairs proven unroutable (mirrors the flat planner).
_NO_ROUTE = object()


class MetroRouter:
    """Region-partitioned exact planner for metro-scale graphs.

    Args:
        graph: the :class:`~repro.buildgraph.BuildingGraph` to plan
            over; a mutation listener is registered on it.
        partition: a :class:`RegionPartition` covering the graph.
        route_cache_per_region / expansion_cache_per_region /
        terminal_cache_per_region: LRU bounds for the per-region cache
            shards.

    Overlays build lazily on first plan (or explicitly via
    :meth:`build_overlays`); mutations mark only touched regions dirty.
    """

    def __init__(
        self,
        graph,
        partition: RegionPartition,
        route_cache_per_region: int = DEFAULT_ROUTE_CACHE_PER_REGION,
        expansion_cache_per_region: int = DEFAULT_EXPANSION_CACHE_PER_REGION,
        terminal_cache_per_region: int = DEFAULT_TERMINAL_CACHE_PER_REGION,
    ):
        self.graph = graph
        self.partition = partition
        k = len(partition)
        self._overlays: list[RegionOverlay | None] = [None] * k
        self._dirty: set[int] = set(range(k))
        self._route_shards = [
            LRUCache(maxsize=route_cache_per_region) for _ in range(k)
        ]
        self._expansion_shards = [
            LRUCache(maxsize=expansion_cache_per_region) for _ in range(k)
        ]
        self._terminal_shards = [
            LRUCache(maxsize=terminal_cache_per_region) for _ in range(k)
        ]
        # Global border index, rebuilt after overlay rebuilds: gid →
        # building / region / local row, per-region gid arrays, border
        # centroid arrays for the A* heuristic, gid-translated cross
        # edges.
        self._gid_building: list[int] = []
        self._gid_region: np.ndarray = np.zeros(0, dtype=np.int64)
        self._gid_local: list[int] = []
        self._region_gids: list[np.ndarray] = []
        self._cross: list[list[tuple[int, float]]] = []
        self._px = np.zeros(0, dtype=np.float64)
        self._py = np.zeros(0, dtype=np.float64)
        self._stats = {
            "plan_calls": 0,
            "searches": 0,
            "overlay_settled": 0,
            "terminal_sssp_runs": 0,
            "expansion_runs": 0,
            "nodes_expanded": 0,
            "region_rebuilds": 0,
            "reindexes": 0,
            "overlay_build_time_s": 0.0,
        }
        graph.add_mutation_listener(self._on_mutation)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def _on_mutation(self, kind: str, *ids: int) -> None:
        region_of = self.partition.region_of
        if kind == "remove":
            bid = ids[0]
            r = region_of.get(bid)
            if r is not None:
                self._dirty.add(r)
            # Fires pre-removal: the doomed building's cross-region
            # neighbours lose a border edge, so their regions dirty too.
            try:
                neighbors = self.graph.neighbors(bid)
            except KeyError:  # pragma: no cover - defensive
                neighbors = {}
            for v in neighbors:
                rv = region_of.get(v)
                if rv is not None:
                    self._dirty.add(rv)
        elif kind == "add_link":
            for bid in ids:
                r = region_of.get(bid)
                if r is not None:
                    self._dirty.add(r)
        elif kind == "add_building":
            bid = ids[0]
            r = self.partition.assign_building(
                bid, self.graph.centroid(bid), self.graph.centroid
            )
            self._dirty.add(r)
            for v in self.graph.neighbors(bid):
                rv = region_of.get(v)
                if rv is not None:
                    self._dirty.add(rv)

    def build_overlays(self) -> None:
        """Force every dirty region's overlay current (timed)."""
        self._ensure_current()

    def _ensure_current(self) -> None:
        if not self._dirty:
            return
        t0 = time.perf_counter()
        version = self.graph.version
        for r in sorted(self._dirty):
            self._overlays[r] = build_overlay(
                self.graph, self.partition, r, built_version=version
            )
            self._expansion_shards[r].clear()
            self._terminal_shards[r].clear()
            self._stats["region_rebuilds"] += 1
            _M_REBUILDS.inc()
        self._dirty.clear()
        self._reindex()
        self._stats["overlay_build_time_s"] += time.perf_counter() - t0

    def _reindex(self) -> None:
        """Rebuild the global border-gid view from current overlays."""
        gid_building: list[int] = []
        gid_region: list[int] = []
        gid_local: list[int] = []
        region_gids: list[np.ndarray] = []
        gid_of: dict[int, int] = {}
        for r, overlay in enumerate(self._overlays):
            borders = overlay.borders if overlay is not None else ()
            gids = np.empty(len(borders), dtype=np.int64)
            for i, b in enumerate(borders):
                g = len(gid_building)
                gid_of[b] = g
                gid_building.append(b)
                gid_region.append(r)
                gid_local.append(i)
                gids[i] = g
            region_gids.append(gids)
        total = len(gid_building)
        centroid = self.graph.centroid
        px = np.empty(total, dtype=np.float64)
        py = np.empty(total, dtype=np.float64)
        for g, b in enumerate(gid_building):
            c = centroid(b)
            px[g] = c.x
            py[g] = c.y
        cross: list[list[tuple[int, float]]] = [[] for _ in range(total)]
        for overlay in self._overlays:
            if overlay is None:
                continue
            for u, v, w in overlay.cross:
                gv = gid_of.get(v)
                if gv is None:  # pragma: no cover - defensive
                    continue
                cross[gid_of[u]].append((gv, w))
        self._gid_building = gid_building
        self._gid_region = np.asarray(gid_region, dtype=np.int64)
        self._gid_local = gid_local
        self._region_gids = region_gids
        self._cross = cross
        self._px = px
        self._py = py
        self._stats["reindexes"] += 1

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _region_of(self, building_id: int) -> int:
        region = self.partition.region_of.get(building_id)
        if region is None:  # pragma: no cover - listener normally covers
            region = self.partition.assign_building(
                building_id,
                self.graph.centroid(building_id),
                self.graph.centroid,
            )
            self._dirty.add(region)
            self._ensure_current()
        return region

    def plan(self, src_building: int, dst_building: int) -> list[int]:
        """Minimum-weight route, cost-identical to the flat planner.

        Raises:
            KeyError: if either endpoint is missing from the graph.
            NoRouteError: if the endpoints are on disconnected islands.
        """
        graph = self.graph
        if src_building not in graph:
            raise KeyError(src_building)
        if dst_building not in graph:
            raise KeyError(dst_building)
        self._stats["plan_calls"] += 1
        _M_PLANS.inc()
        if src_building == dst_building:
            return [src_building]
        self._ensure_current()
        src_region = self._region_of(src_building)
        shard = self._route_shards[src_region]
        key = (src_building, dst_building, graph.version)
        cached = shard.get(key)
        if cached is _NO_ROUTE:
            raise NoRouteError(
                f"no predicted path between buildings {src_building} "
                f"and {dst_building}"
            )
        if cached is not None:
            return list(cached)
        self._stats["searches"] += 1
        t0 = time.perf_counter()
        route = self._search(src_building, dst_building, src_region)
        _M_SEARCH_S.observe(time.perf_counter() - t0)
        if route is None:
            shard.put(key, _NO_ROUTE)
            raise NoRouteError(
                f"no predicted path between buildings {src_building} "
                f"and {dst_building}"
            )
        shard.put(key, tuple(route))
        return route

    def plan_routes(
        self, pairs,
    ) -> list[list[int] | None]:
        """Batched planning with flat-planner semantics.

        ``None`` marks unroutable or unknown pairs.  Batching leverage
        comes from the per-region caches: the terminal tree of a shared
        source (or destination region) is computed once, and repeated
        pairs hit the route shards.
        """
        results: list[list[int] | None] = [None] * len(pairs)
        for i, (src, dst) in enumerate(pairs):
            try:
                results[i] = self.plan(src, dst)
            except (NoRouteError, KeyError):
                continue
        return results

    def _terminal(self, building_id: int, region: int):
        """Cached full single-source tree over the region's subgraph."""
        shard = self._terminal_shards[region]
        entry = shard.get(building_id)
        if entry is None:
            overlay = self._overlays[region]
            dist, parent, expanded = sssp_tree(
                overlay.subgraph.__getitem__, building_id, None
            )
            self._stats["terminal_sssp_runs"] += 1
            self._stats["nodes_expanded"] += expanded
            entry = (dist, parent)
            shard.put(building_id, entry)
        return entry

    def _search(
        self, src: int, dst: int, src_region: int
    ) -> list[int] | None:
        graph = self.graph
        dst_region = self._region_of(dst)
        dist_src, parent_src = self._terminal(src, src_region)
        dist_dst, parent_dst = self._terminal(dst, dst_region)

        best = math.inf
        best_entry = -1  # gid of final border; -1 = direct intra route
        if src_region == dst_region:
            direct = dist_src.get(dst)
            if direct is not None:
                best = direct

        total = len(self._gid_building)
        parent = None
        via_contract = None
        if total:
            scale = graph._heuristic_scale()
            target = graph.centroid(dst)
            if scale > 0.0:
                h = scale * np.hypot(self._px - target.x, self._py - target.y)
            else:
                h = np.zeros(total, dtype=np.float64)
            dist = np.full(total, np.inf, dtype=np.float64)
            parent = np.full(total, -2, dtype=np.int64)  # -2 unreached
            via_contract = np.zeros(total, dtype=bool)
            done = np.zeros(total, dtype=bool)
            heap: list[tuple[float, int]] = []
            src_overlay = self._overlays[src_region]
            src_gids = self._region_gids[src_region]
            for i, b in enumerate(src_overlay.borders):
                d0 = dist_src.get(b)
                if d0 is None:
                    continue
                g = int(src_gids[i])
                dist[g] = d0
                parent[g] = -1  # attached directly to the source
                heappush(heap, (d0 + float(h[g]), g))
            gid_region = self._gid_region
            gid_local = self._gid_local
            gid_building = self._gid_building
            overlays = self._overlays
            region_gids = self._region_gids
            cross = self._cross
            settled = 0
            while heap:
                f, u = heappop(heap)
                if done[u]:
                    continue
                if f >= best:
                    break  # consistent h: nothing left can beat best
                done[u] = True
                settled += 1
                du = float(dist[u])
                r = int(gid_region[u])
                if r == dst_region:
                    tail = dist_dst.get(gid_building[u])
                    if tail is not None and du + tail < best:
                        best = du + tail
                        best_entry = u
                # Contracted relaxation: all of region r's borders in
                # one vector op against u's row of D.  Only borders
                # *entered via a cross edge* need it: a source-attached
                # border is dominated by the terminal tree (which seeds
                # every intra-reachable border exactly), and two
                # consecutive contracted edges are dominated by the
                # single contracted edge relaxed at the previous border
                # (triangle inequality inside the region).
                if parent[u] >= 0 and not via_contract[u]:
                    overlay = overlays[r]
                    if len(overlay.borders) > 1:
                        gr = region_gids[r]
                        nd = du + overlay.D[gid_local[u]]
                        mask = nd < dist[gr]
                        if mask.any():
                            upd = gr[mask]
                            ndm = nd[mask]
                            dist[upd] = ndm
                            parent[upd] = u
                            via_contract[upd] = True
                            scores = ndm + h[upd]
                            for g2, f2 in zip(upd.tolist(), scores.tolist()):
                                if f2 < best:
                                    heappush(heap, (f2, g2))
                for g2, w in cross[u]:
                    nd2 = du + w
                    if nd2 < float(dist[g2]):
                        dist[g2] = nd2
                        parent[g2] = u
                        via_contract[g2] = False
                        f2 = nd2 + float(h[g2])
                        if f2 < best:
                            heappush(heap, (f2, g2))
            self._stats["overlay_settled"] += settled
            _M_SETTLED.inc(settled)

        if not math.isfinite(best):
            return None
        if best_entry == -1:
            return extract_route(parent_src, src, dst)
        # Walk the winning border chain back to the source attachment.
        # Chain nodes are all settled, so parent/via_contract hold
        # their final (optimal) values.
        chain: list[int] = []
        g = best_entry
        while g != -1:
            chain.append(g)
            g = int(parent[g])
        chain.reverse()
        return self._assemble(
            src, dst, chain, parent_src, parent_dst, via_contract
        )

    def _assemble(
        self, src, dst, chain, parent_src, parent_dst, via_contract
    ) -> list[int]:
        gid_building = self._gid_building
        gid_region = self._gid_region
        route = extract_route(parent_src, src, gid_building[chain[0]])
        for i in range(1, len(chain)):
            g_prev = chain[i - 1]
            g_cur = chain[i]
            if via_contract[g_cur]:
                leg = self._expand_leg(
                    int(gid_region[g_cur]),
                    gid_building[g_prev],
                    gid_building[g_cur],
                )
                route.extend(leg[1:])
            else:
                route.append(gid_building[g_cur])  # literal cross hop
        entry_building = gid_building[chain[-1]]
        if entry_building != dst:
            tail = extract_route(parent_dst, dst, entry_building)
            tail.reverse()  # tree is rooted at dst: flip to entry → dst
            route.extend(tail[1:])
        return route

    def _expand_leg(self, region: int, a: int, b: int) -> list[int]:
        """Full intra-region path for one contracted edge (cached)."""
        shard = self._expansion_shards[region]
        cached = shard.get((a, b))
        if cached is not None:
            return list(cached)
        reverse = shard.get((b, a))
        if reverse is not None:
            leg = list(reverse)
            leg.reverse()
            shard.put((a, b), tuple(leg))
            return leg
        overlay = self._overlays[region]
        graph = self.graph
        scale = graph._heuristic_scale()
        if scale > 0.0:
            target = graph.centroid(b)
            centroid = graph.centroid
            heuristic = (
                lambda n: scale * centroid(n).distance_to(target)  # noqa: E731
            )
        else:
            heuristic = None
        leg, expanded = heap_search(
            overlay.subgraph.__getitem__, a, b, heuristic
        )
        self._stats["expansion_runs"] += 1
        self._stats["nodes_expanded"] += expanded
        if leg is None:  # pragma: no cover - contracted edge implies path
            raise NoRouteError(
                f"overlay desync: contracted edge {a}->{b} in region "
                f"{region} has no intra-region path"
            )
        shard.put((a, b), tuple(leg))
        return leg

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Aggregated work counters and cache accounting.

        Also publishes ``metro.*`` cache gauges (entries and
        approximate bytes per cache family, summed over the region
        shards) to the observability registry.
        """
        out: dict[str, float] = dict(self._stats)
        out["regions"] = len(self.partition)
        out["borders"] = len(self._gid_building)
        out["dirty_regions"] = len(self._dirty)
        for family, shards in (
            ("route_cache", self._route_shards),
            ("expansion_cache", self._expansion_shards),
            ("terminal_cache", self._terminal_shards),
        ):
            entries = sum(len(s) for s in shards)
            hits = sum(s.hits for s in shards)
            misses = sum(s.misses for s in shards)
            evictions = sum(s.evictions for s in shards)
            approx = sum(s.approx_bytes() for s in shards)
            out[f"{family}_entries"] = entries
            out[f"{family}_hits"] = hits
            out[f"{family}_misses"] = misses
            out[f"{family}_evictions"] = evictions
            out[f"{family}_approx_bytes"] = approx
            REGISTRY.gauge(f"metro.{family}.entries").set(entries)
            REGISTRY.gauge(f"metro.{family}.approx_bytes").set(approx)
        return out

    def shard_stats(self) -> list[dict[str, float]]:
        """Per-region cache and overlay detail (bench reporting)."""
        rows: list[dict[str, float]] = []
        for r in range(len(self.partition)):
            overlay = self._overlays[r]
            rows.append(
                {
                    "region": r,
                    "members": len(overlay) if overlay is not None else 0,
                    "borders": len(overlay.borders)
                    if overlay is not None
                    else 0,
                    "route_entries": len(self._route_shards[r]),
                    "route_hits": self._route_shards[r].hits,
                    "route_approx_bytes": self._route_shards[r].approx_bytes(),
                    "expansion_entries": len(self._expansion_shards[r]),
                    "terminal_entries": len(self._terminal_shards[r]),
                }
            )
        return rows

    def reset_stats(self) -> None:
        """Zero the work counters and per-shard cache counters."""
        for k in self._stats:
            self._stats[k] = 0 if isinstance(self._stats[k], int) else 0.0
        for shards in (
            self._route_shards,
            self._expansion_shards,
            self._terminal_shards,
        ):
            for s in shards:
                s.reset_counters()


def attach_hierarchy(
    graph,
    target_region_size: int = DEFAULT_REGION_SIZE,
    n_regions: int | None = None,
    block_size: float | None = None,
    seed: int = 0,
    **router_kwargs,
) -> MetroRouter:
    """Partition ``graph`` and attach a :class:`MetroRouter` to it.

    Sets ``graph.hierarchy`` so routing layers
    (:class:`repro.core.BuildingRouter`) dispatch through the
    hierarchy automatically.  Overlays build lazily on first plan;
    call :meth:`MetroRouter.build_overlays` to front-load the cost.
    """
    from .partition import DEFAULT_BLOCK_SIZE

    partition = partition_regions(
        graph,
        target_region_size=target_region_size,
        n_regions=n_regions,
        block_size=block_size if block_size is not None else DEFAULT_BLOCK_SIZE,
        seed=seed,
    )
    router = MetroRouter(graph, partition, **router_kwargs)
    graph.hierarchy = router
    return router


__all__ = [
    "DEFAULT_REGION_SIZE",
    "MetroRouter",
    "attach_hierarchy",
]
