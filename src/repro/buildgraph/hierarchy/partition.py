"""Region partitioning: k-region growing over the city block raster.

The metro hierarchy's first layer: buildings bucket into coarse block
cells (:func:`repro.city.blocks.assign_blocks`), blocks connect when
any predicted building edge crosses between them, and ``k`` regions
grow outward from farthest-point-sampled seed blocks, always extending
the currently-smallest region so sizes stay balanced.  Everything is
deterministic under ``seed``: blocks sort their members, growth
processes frontiers FIFO with index tie-breaks, and the only RNG draw
picks the first seed block.

Regions are the unit of contraction (:mod:`.overlay`), cache sharding,
and invalidation (:mod:`.router`) — a patch that touches one region
rebuilds one overlay, not the metro.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ...city.blocks import DEFAULT_BLOCK_SIZE, BlockKey, assign_blocks, block_key
from ...geometry import GridIndex, Point
from ...obs import REGISTRY

_M_PARTITIONS = REGISTRY.counter("metro.partitions")
_M_PARTITION_S = REGISTRY.timer("metro.partition_s")

#: Default target buildings per region.  Terminal-region Dijkstra and
#: leg expansion scale with region size while overlay size scales with
#: total border count (~independent of the split), so ~1-2k keeps
#: per-route latency low without drowning the overlay in borders.
DEFAULT_REGION_SIZE = 1200


@dataclass(frozen=True)
class Region:
    """One partition cell: a connected clump of block cells."""

    index: int
    members: tuple[int, ...]  # building ids, sorted
    blocks: tuple[BlockKey, ...]
    bbox: tuple[float, float, float, float]  # centroid bounds


@dataclass
class RegionPartition:
    """A complete, seeded building → region assignment.

    ``region_of`` answers the hot-path question; :meth:`assign_building`
    folds later insertions into the nearest existing region (per-region
    :class:`~repro.geometry.GridIndex` shards back the lookup, built
    lazily).
    """

    regions: list[Region]
    region_of: dict[int, int]
    block_size: float
    seed: int
    _shards: dict[int, GridIndex[int]] = field(default_factory=dict, repr=False)
    _live: list[set[int]] | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.regions)

    def live_members(self, region_idx: int) -> set[int]:
        """The region's current member set (original + later insertions).

        The frozen ``Region.members`` tuples record the build-time
        assignment; this mutable view additionally tracks buildings
        folded in by :meth:`assign_building`.  Callers filter by graph
        presence themselves — demolitions are not tracked here.
        """
        if self._live is None:
            self._live = [set(region.members) for region in self.regions]
        return self._live[region_idx]

    def shard_index(self, region_idx: int, centroid_of) -> GridIndex[int]:
        """The region's spatial shard over member centroids (lazy).

        ``centroid_of`` maps a building id to its :class:`Point`;
        members that no longer resolve (demolished) are skipped.
        """
        shard = self._shards.get(region_idx)
        if shard is None:
            shard = GridIndex(cell_size=max(self.block_size, 1.0))
            for bid in self.regions[region_idx].members:
                try:
                    shard.insert(bid, centroid_of(bid))
                except KeyError:
                    continue
            self._shards[region_idx] = shard
        return shard

    def regions_overlapping(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> list[int]:
        """Region indices whose member bbox intersects the rectangle."""
        out = []
        for region in self.regions:
            bx0, by0, bx1, by1 = region.bbox
            if bx0 <= max_x and min_x <= bx1 and by0 <= max_y and min_y <= by1:
                out.append(region.index)
        return out

    def assign_building(self, building_id: int, centroid: Point, centroid_of) -> int:
        """Fold a newly-inserted building into the nearest region.

        Candidate regions come from the block raster (the new centroid's
        own block, else bbox overlap, else every region); the winner is
        the one holding the nearest existing member centroid.  The
        assignment is recorded in ``region_of`` (the frozen ``Region``
        member tuples are left as built — overlays derive live
        membership from ``region_of`` + graph presence).
        """
        existing = self.region_of.get(building_id)
        if existing is not None:
            return existing
        candidates = self.regions_overlapping(
            centroid.x - self.block_size,
            centroid.y - self.block_size,
            centroid.x + self.block_size,
            centroid.y + self.block_size,
        ) or [r.index for r in self.regions]
        best_idx = candidates[0]
        best_d = math.inf
        for idx in candidates:
            shard = self.shard_index(idx, centroid_of)
            nearest = shard.nearest(centroid)
            if nearest is None:
                continue
            d = shard.position_of(nearest).distance_to(centroid)
            if d < best_d:
                best_d = d
                best_idx = idx
        self.region_of[building_id] = best_idx
        self.live_members(best_idx).add(building_id)
        shard = self._shards.get(best_idx)
        if shard is not None:
            shard.insert(building_id, centroid)
        return best_idx


def _block_centers(
    blocks: dict[BlockKey, list[int]], block_size: float
) -> tuple[list[BlockKey], np.ndarray, np.ndarray]:
    keys = sorted(blocks)
    cx = np.fromiter(
        ((k[0] + 0.5) * block_size for k in keys), dtype=np.float64, count=len(keys)
    )
    cy = np.fromiter(
        ((k[1] + 0.5) * block_size for k in keys), dtype=np.float64, count=len(keys)
    )
    return keys, cx, cy


def _farthest_point_seeds(
    keys: list[BlockKey],
    cx: np.ndarray,
    cy: np.ndarray,
    k: int,
    rng: random.Random,
) -> list[int]:
    """k spread-out block indices: one RNG pick, then farthest-point."""
    first = rng.randrange(len(keys))
    seeds = [first]
    min_d2 = (cx - cx[first]) ** 2 + (cy - cy[first]) ** 2
    for _ in range(1, k):
        nxt = int(np.argmax(min_d2))  # ties: lowest index, deterministic
        if min_d2[nxt] <= 0.0:
            break  # fewer distinct blocks than regions requested
        seeds.append(nxt)
        d2 = (cx - cx[nxt]) ** 2 + (cy - cy[nxt]) ** 2
        np.minimum(min_d2, d2, out=min_d2)
    return seeds


def partition_regions(
    graph,
    target_region_size: int = DEFAULT_REGION_SIZE,
    n_regions: int | None = None,
    block_size: float = DEFAULT_BLOCK_SIZE,
    seed: int = 0,
) -> RegionPartition:
    """Partition a :class:`~repro.buildgraph.BuildingGraph` into regions.

    Args:
        graph: the building graph to partition (only centroids and
            edges are consulted).
        target_region_size: aimed-for buildings per region; the region
            count is ``ceil(n / target_region_size)`` when ``n_regions``
            is not given.
        n_regions: explicit region count override.
        block_size: block-raster cell side in metres.
        seed: picks the first seed block; everything else is
            deterministic given the graph.

    Raises:
        ValueError: for an empty graph or non-positive sizing.
    """
    import time

    t0 = time.perf_counter()
    if target_region_size < 1:
        raise ValueError("target region size must be >= 1")
    node_ids = list(graph)
    if not node_ids:
        raise ValueError("cannot partition an empty building graph")
    k = n_regions if n_regions is not None else max(1, -(-len(node_ids) // target_region_size))
    if k < 1:
        raise ValueError("region count must be >= 1")

    blocks = assign_blocks(
        ((bid, graph.centroid(bid)) for bid in node_ids), block_size
    )
    keys, cx, cy = _block_centers(blocks, block_size)
    k = min(k, len(keys))

    # Block adjacency from predicted building edges (sorted for
    # determinism; adjacency via edges keeps regions connected in the
    # graph sense, not just geometrically).
    block_of_building: dict[int, int] = {}
    for i, key in enumerate(keys):
        for bid in blocks[key]:
            block_of_building[bid] = i
    neighbors: list[set[int]] = [set() for _ in keys]
    for bid in node_ids:
        bu = block_of_building[bid]
        for other in graph.neighbors(bid):
            bv = block_of_building.get(other)
            if bv is not None and bv != bu:
                neighbors[bu].add(bv)
                neighbors[bv].add(bu)

    rng = random.Random(seed)
    seeds = _farthest_point_seeds(keys, cx, cy, k, rng)
    k = len(seeds)

    # Balanced multi-source growth: always extend the smallest region.
    # Seeds are pre-claimed so a fast-growing neighbour cannot swallow
    # another region's seed block; per-claim sizes strictly increase,
    # so (size, r) heap entries self-invalidate when stale.
    import heapq

    block_region = [-1] * len(keys)
    for r, s in enumerate(seeds):
        block_region[s] = r
    frontiers: list[deque[int]] = [deque([s]) for s in seeds]
    sizes = [0] * k
    heap = [(0, r) for r in range(k)]
    heapq.heapify(heap)
    while heap:
        size, r = heapq.heappop(heap)
        if size != sizes[r]:
            continue  # stale entry
        frontier = frontiers[r]
        claimed = -1
        while frontier:
            b = frontier.popleft()
            if block_region[b] == -1:
                block_region[b] = r
                claimed = b
                break
            if block_region[b] == r and sizes[r] == 0:
                claimed = b  # the region's own pre-claimed seed
                break
        if claimed == -1:
            continue  # frontier exhausted: region is done growing
        sizes[r] += len(blocks[keys[claimed]])
        for nb in sorted(neighbors[claimed]):
            if block_region[nb] == -1:
                frontier.append(nb)
        heapq.heappush(heap, (sizes[r], r))

    # Blocks unreachable from every seed (disconnected pockets): attach
    # to the nearest seed block by centre distance, ties to the lower
    # region index.
    for b, r in enumerate(block_region):
        if r != -1:
            continue
        best_r, best_d2 = 0, math.inf
        for ri, s in enumerate(seeds):
            d2 = (cx[b] - cx[s]) ** 2 + (cy[b] - cy[s]) ** 2
            if d2 < best_d2:
                best_d2 = d2
                best_r = ri
        block_region[b] = best_r

    region_blocks: list[list[BlockKey]] = [[] for _ in range(k)]
    region_members: list[list[int]] = [[] for _ in range(k)]
    region_of: dict[int, int] = {}
    for b, key in enumerate(keys):
        r = block_region[b]
        region_blocks[r].append(key)
        for bid in blocks[key]:
            region_members[r].append(bid)
            region_of[bid] = r

    regions: list[Region] = []
    for r in range(k):
        members = sorted(region_members[r])
        if members:
            xs = [graph.centroid(bid).x for bid in members]
            ys = [graph.centroid(bid).y for bid in members]
            bbox = (min(xs), min(ys), max(xs), max(ys))
        else:
            bbox = (0.0, 0.0, 0.0, 0.0)
        regions.append(
            Region(
                index=r,
                members=tuple(members),
                blocks=tuple(sorted(region_blocks[r])),
                bbox=bbox,
            )
        )
    _M_PARTITIONS.inc()
    _M_PARTITION_S.observe(time.perf_counter() - t0)
    return RegionPartition(
        regions=regions, region_of=region_of, block_size=block_size, seed=seed
    )


__all__ = [
    "DEFAULT_REGION_SIZE",
    "Region",
    "RegionPartition",
    "block_key",
    "partition_regions",
]
