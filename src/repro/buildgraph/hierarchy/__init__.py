"""Metro-scale hierarchical routing (region-partitioned planning).

Three layers: :mod:`.partition` grows balanced regions over the city
block raster, :mod:`.overlay` contracts each region to an exact
border-to-border matrix, and :mod:`.router` plans on the contracted
overlay with on-demand expansion — cost-identical to the flat planner
but with per-route work that scales with region size and border count
instead of the whole metro.  Attach to a graph with
:func:`attach_hierarchy`.
"""

from .overlay import RegionOverlay, build_overlay
from .partition import (
    DEFAULT_REGION_SIZE,
    Region,
    RegionPartition,
    partition_regions,
)
from .router import MetroRouter, attach_hierarchy

__all__ = [
    "DEFAULT_REGION_SIZE",
    "MetroRouter",
    "Region",
    "RegionOverlay",
    "RegionPartition",
    "attach_hierarchy",
    "build_overlay",
    "partition_regions",
]
