"""Per-region border contraction: the metro overlay's building block.

Each region contracts to its *border* buildings (those with at least
one predicted edge leaving the region) plus a dense border-to-border
matrix ``D`` of exact intra-region shortest-path weights.  A metro
search over (all regions' ``D`` matrices ∪ the original cross-region
edges ∪ the source and destination regions' full subgraphs) is exact
for every pair — the classic customizable-route-planning argument:
any shortest path decomposes into maximal intra-region segments whose
endpoints are borders (or the terminals), and each such segment's
weight is ≥ the contracted edge weight by definition of ``D``.

``D`` is computed by batched multi-source Dijkstra over the region's
intra subgraph — through :mod:`scipy.sparse.csgraph` when scipy is
available (the container bakes it in), with a pure-Python
:func:`~repro.buildgraph.planner.sssp_tree` fallback so the package
stays importable without it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ...obs import REGISTRY
from ..planner import sssp_tree
from .partition import RegionPartition

try:  # pragma: no cover - exercised via whichever path the env has
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sp_dijkstra
except ImportError:  # pragma: no cover
    _csr_matrix = None
    _sp_dijkstra = None

_M_OVERLAY_BUILDS = REGISTRY.counter("metro.overlay_builds")
_M_OVERLAY_BUILD_S = REGISTRY.timer("metro.overlay_build_s")


@dataclass
class RegionOverlay:
    """One region's contracted view, valid for a specific graph version.

    Attributes:
        region: index into the partition's region list.
        borders: member buildings with at least one cross-region edge,
            ascending id order (``D`` rows/columns align with this).
        border_local: building id → row index in ``D``.
        D: ``(B, B)`` float64 exact intra-region border-to-border
            shortest-path weights; ``inf`` where the region's interior
            does not connect the pair.
        subgraph: the region's intra adjacency (edges whose both
            endpoints live in the region), used for terminal Dijkstra
            and leg expansion.
        cross: original cross-region edges ``(border, other, weight)``
            leaving this region; ``other`` is by construction a border
            of its own region.
        built_version: the owning graph's version when built; caches
            derived from this overlay key on it.
    """

    region: int
    borders: tuple[int, ...]
    border_local: dict[int, int]
    D: np.ndarray
    subgraph: dict[int, dict[int, float]]
    cross: list[tuple[int, int, float]] = field(default_factory=list)
    built_version: int = 0

    def __len__(self) -> int:
        return len(self.subgraph)


def _border_matrix(
    members: list[int],
    borders: tuple[int, ...],
    subgraph: dict[int, dict[int, float]],
) -> np.ndarray:
    """Exact border-to-border distances over the intra subgraph."""
    n_borders = len(borders)
    if n_borders == 0:
        return np.zeros((0, 0), dtype=np.float64)
    if _sp_dijkstra is not None and len(members) > 2:
        local = {b: i for i, b in enumerate(members)}
        rows: list[int] = []
        cols: list[int] = []
        weights: list[float] = []
        for u in members:
            iu = local[u]
            for v, w in subgraph[u].items():
                rows.append(iu)
                cols.append(local[v])
                weights.append(w)
        mat = _csr_matrix(
            (weights, (rows, cols)), shape=(len(members), len(members))
        )
        src = [local[b] for b in borders]
        dist = _sp_dijkstra(mat, directed=True, indices=src)
        return np.ascontiguousarray(dist[:, src])
    # Pure-Python fallback: one early-exiting Dijkstra per border.
    D = np.full((n_borders, n_borders), np.inf, dtype=np.float64)
    border_set = set(borders)
    for i, b in enumerate(borders):
        dist, _, _ = sssp_tree(subgraph.__getitem__, b, border_set)
        for j, other in enumerate(borders):
            d = dist.get(other)
            if d is not None:
                D[i, j] = d
    return D


def build_overlay(
    graph,
    partition: RegionPartition,
    region_idx: int,
    built_version: int | None = None,
) -> RegionOverlay:
    """Contract one region of ``graph`` against the current partition.

    Membership is live: the partition's assignment filtered by graph
    presence, so demolished buildings drop out and later insertions
    (folded in via :meth:`RegionPartition.assign_building`) join.
    """
    t0 = time.perf_counter()
    region_of = partition.region_of
    members = sorted(
        b for b in partition.live_members(region_idx) if b in graph
    )
    subgraph: dict[int, dict[int, float]] = {}
    cross: list[tuple[int, int, float]] = []
    borders: list[int] = []
    for u in members:
        intra: dict[int, float] = {}
        is_border = False
        for v, w in graph.neighbors(u).items():
            if region_of.get(v) == region_idx:
                intra[v] = w
            else:
                cross.append((u, v, w))
                is_border = True
        subgraph[u] = intra
        if is_border:
            borders.append(u)
    border_tuple = tuple(borders)  # ascending: members were sorted
    D = _border_matrix(members, border_tuple, subgraph)
    overlay = RegionOverlay(
        region=region_idx,
        borders=border_tuple,
        border_local={b: i for i, b in enumerate(border_tuple)},
        D=D,
        subgraph=subgraph,
        cross=cross,
        built_version=built_version if built_version is not None else graph.version,
    )
    _M_OVERLAY_BUILDS.inc()
    _M_OVERLAY_BUILD_S.observe(time.perf_counter() - t0)
    return overlay


__all__ = ["RegionOverlay", "build_overlay"]
