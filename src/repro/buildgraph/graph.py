"""The map-derived building graph (§3 step 1) — performance-engineered.

Vertices are buildings; an edge predicts that two buildings' APs can
hear each other, which the paper approximates from the map alone:
footprint-to-footprint distance at most the transmission range (minus a
configurable safety margin).  Edge weights are centroid distance raised
to ``weight_exponent`` (3.0 in the paper, so routes prefer many short
hops through dense blocks over single long leaps across sparse ones).

Construction never scans all O(n²) building pairs: centroids go into
the existing :class:`repro.geometry.GridIndex` spatial hash and each
building only examines the O(1)-cell neighbourhood that could possibly
be in range.  A cheap bbox-gap lower bound prunes most candidates
before the exact polygon distance is computed.

Planning is heap A* with a *consistent* heuristic (see
``_heuristic_scale``), a bounded LRU route cache keyed by
``(src, dst, graph version)``, and batched many-to-many planning that
reuses one single-source Dijkstra tree per distinct source.  All work
counters are surfaced through :meth:`BuildingGraph.stats` so benchmarks
can regress on *work done*, not just wall time.
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..geometry import GridIndex, Point, Polygon
from ..obs import REGISTRY
from .lru import LRUCache
from .planner import NoRouteError, extract_route, heap_search, sssp_tree

# Registry instruments, resolved once at import: the per-call cost of
# publishing is a single attribute add, cheap enough for the plan()
# hot path (the search timers only fire on cache misses, which are
# dominated by the search itself).
_M_BUILDS = REGISTRY.counter("buildgraph.builds")
_M_BUILD_S = REGISTRY.timer("buildgraph.build_s")
_M_PLAN_CALLS = REGISTRY.counter("buildgraph.plan_calls")
_M_SEARCH_S = REGISTRY.timer("buildgraph.route_search_s")
_M_SSSP_S = REGISTRY.timer("buildgraph.sssp_s")
_M_EXPANDED = REGISTRY.counter("buildgraph.nodes_expanded")
_M_INVALIDATIONS = REGISTRY.counter("buildgraph.cache_invalidations")

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps import light
    from ..city import Building, City

# The paper's evaluation settings (mirrors repro.mesh defaults).
DEFAULT_TRANSMISSION_RANGE = 50.0  # metres
DEFAULT_WEIGHT_EXPONENT = 3.0
DEFAULT_AP_DENSITY = 1.0 / 200.0  # APs per m^2 of building area
DEFAULT_ROUTE_CACHE_SIZE = 4096
# Density-derived connectivity margin: at density rho the mean
# nearest-AP spacing scales as 1/sqrt(rho), so the predictor backs the
# range off by that much before calling a footprint gap "connected"
# (DESIGN.md key decision 2; the calibration experiment quantifies it).
MARGIN_COEFFICIENT = 0.7

# Sentinel cached for pairs proven unroutable, so repeatedly asking for
# a cross-island route (common on river-split cities) stays O(1) too.
_NO_ROUTE = object()


def _bbox_gap(a: tuple[float, float, float, float],
              b: tuple[float, float, float, float]) -> float:
    """Distance between two axis-aligned boxes (0 when overlapping).

    A lower bound on the polygon-to-polygon distance, used to prune
    edge candidates before the exact O(edges²) segment test.
    """
    dx = max(b[0] - a[2], a[0] - b[2], 0.0)
    dy = max(b[1] - a[3], a[1] - b[3], 0.0)
    return math.hypot(dx, dy)


def _pt_seg_sq(px: float, py: float,
               ax: float, ay: float, bx: float, by: float) -> float:
    """Squared distance from point (px, py) to segment (a, b).

    Flat-float version of ``Segment.distance_to_point`` — the build
    hot loop calls this millions of times on large cities, so no
    intermediate Point objects and no sqrt.
    """
    dx = bx - ax
    dy = by - ay
    denom = dx * dx + dy * dy
    if denom > 0.0:
        t = ((px - ax) * dx + (py - ay) * dy) / denom
        if t < 0.0:
            t = 0.0
        elif t > 1.0:
            t = 1.0
        ax += t * dx
        ay += t * dy
    ex = px - ax
    ey = py - ay
    return ex * ex + ey * ey


def _segments_cross(ax, ay, bx, by, cx, cy, dx, dy) -> bool:
    """Proper-crossing test for segments (a,b) and (c,d)."""
    d1 = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    d2 = (bx - ax) * (dy - ay) - (by - ay) * (dx - ax)
    d3 = (dx - cx) * (ay - cy) - (dy - cy) * (ax - cx)
    d4 = (dx - cx) * (by - cy) - (dy - cy) * (bx - cx)
    return (d1 > 0) != (d2 > 0) and (d3 > 0) != (d4 > 0)


def _gap_within(ring_a: tuple[tuple[float, float], ...], poly_a: Polygon,
                ring_b: tuple[tuple[float, float], ...], poly_b: Polygon,
                threshold: float) -> bool:
    """Whether two footprints are within ``threshold`` metres.

    Early-exit equivalent of ``poly_a.distance_to_polygon(poly_b) <=
    threshold``: returns True on the *first* edge pair found within
    range instead of computing the exact minimum, with a per-edge bbox
    prune in between.  For non-crossing segments the minimum distance
    is attained at an endpoint-to-segment distance, so checking the
    four endpoint distances plus a proper-crossing test per pair is
    exact, not an approximation.
    """
    bb = poly_b.bbox
    if (ring_a[0][0] >= bb[0] and ring_a[0][1] >= bb[1]
            and ring_a[0][0] <= bb[2] and ring_a[0][1] <= bb[3]):
        # A vertex of A inside B's bbox: possible overlap/containment,
        # where edge distances alone can miss a zero gap.  Rare for
        # real footprints — take the exact slow path.
        return poly_a.distance_to_polygon(poly_b) <= threshold
    ba = poly_a.bbox
    if (ring_b[0][0] >= ba[0] and ring_b[0][1] >= ba[1]
            and ring_b[0][0] <= ba[2] and ring_b[0][1] <= ba[3]):
        return poly_a.distance_to_polygon(poly_b) <= threshold
    t_sq = threshold * threshold
    bx0 = bb[0] - threshold
    by0 = bb[1] - threshold
    bx1 = bb[2] + threshold
    by1 = bb[3] + threshold
    na = len(ring_a)
    nb = len(ring_b)
    for i in range(na):
        ax, ay = ring_a[i]
        a2x, a2y = ring_a[(i + 1) % na]
        # Edge of A entirely outside B's threshold-expanded bbox?
        if ((ax < bx0 and a2x < bx0) or (ax > bx1 and a2x > bx1)
                or (ay < by0 and a2y < by0) or (ay > by1 and a2y > by1)):
            continue
        for j in range(nb):
            cx, cy = ring_b[j]
            c2x, c2y = ring_b[(j + 1) % nb]
            if (_pt_seg_sq(cx, cy, ax, ay, a2x, a2y) <= t_sq
                    or _pt_seg_sq(c2x, c2y, ax, ay, a2x, a2y) <= t_sq
                    or _pt_seg_sq(ax, ay, cx, cy, c2x, c2y) <= t_sq
                    or _pt_seg_sq(a2x, a2y, cx, cy, c2x, c2y) <= t_sq):
                return True
            if _segments_cross(ax, ay, a2x, a2y, cx, cy, c2x, c2y):
                return True
    return False


class BuildingGraph:
    """Predicted inter-building connectivity with weighted planning.

    Args:
        city: the shared map; only building footprints are consulted.
        transmission_range: symmetric AP range cutoff in metres.
        weight_exponent: edge weight is centroid distance to this power
            (1.0 = geometric shortest path, 3.0 = the paper's setting).
        ap_density: expected APs per m² (only used with
            ``min_expected_aps`` to drop buildings too small to
            plausibly host an AP).
        connectivity_margin: metres subtracted from the range before
            the footprint-gap test; a conservative sender predicts
            fewer edges than the physical cutoff.  Defaults to the
            density-derived ``0.7 / sqrt(ap_density)`` (~10 m at the
            paper's 1 AP / 200 m²): gaps near the raw range have a
            near-zero *actual* AP-link rate at realistic densities, so
            predicting them as edges would wreck precision (see the
            calibration experiment).
        min_expected_aps: buildings whose ``area * ap_density`` falls
            below this are excluded from the graph entirely.
        route_cache_size: bound on the LRU route cache.

    Raises:
        ValueError: for non-positive range/exponent/density, negative
            margin or AP floor, or a cache bound below 1.
    """

    def __init__(
        self,
        city: "City",
        transmission_range: float = DEFAULT_TRANSMISSION_RANGE,
        weight_exponent: float = DEFAULT_WEIGHT_EXPONENT,
        ap_density: float = DEFAULT_AP_DENSITY,
        connectivity_margin: float | None = None,
        min_expected_aps: float = 0.0,
        route_cache_size: int = DEFAULT_ROUTE_CACHE_SIZE,
    ):
        if transmission_range <= 0:
            raise ValueError("transmission range must be positive")
        if weight_exponent <= 0:
            raise ValueError("weight exponent must be positive")
        if ap_density <= 0:
            raise ValueError("AP density must be positive")
        if connectivity_margin is None:
            connectivity_margin = min(
                MARGIN_COEFFICIENT / math.sqrt(ap_density), transmission_range
            )
        elif connectivity_margin < 0:
            raise ValueError("connectivity margin must be non-negative")
        if min_expected_aps < 0:
            raise ValueError("min expected APs must be non-negative")
        self.city = city
        self.transmission_range = float(transmission_range)
        self.weight_exponent = float(weight_exponent)
        self.ap_density = float(ap_density)
        self.connectivity_margin = float(connectivity_margin)
        self.min_expected_aps = float(min_expected_aps)

        self._adjacency: dict[int, dict[int, float]] = {}
        self._centroids: dict[int, Point] = {}
        self._polygons: dict[int, Polygon] = {}
        self._rings: dict[int, tuple[tuple[float, float], ...]] = {}
        self._radii: dict[int, float] = {}
        self._max_radius = 0.0
        self._version = 0
        self._route_cache: LRUCache = LRUCache(maxsize=route_cache_size)
        # Mutation listeners: called with fine-grained change events so
        # layered structures (the hierarchical overlay) can invalidate
        # only the regions a patch touched instead of everything.
        self._listeners: list = []
        #: Attached hierarchy router (set by
        #: ``repro.buildgraph.hierarchy.attach_hierarchy``); consumers
        #: like :class:`repro.core.BuildingRouter` plan through it
        #: when present.
        self.hierarchy = None
        self._extremes_dirty = True
        self._min_edge_m = 0.0
        self._max_edge_m = 0.0
        self._stats = {
            "builds": 0,
            "build_time_s": 0.0,
            "build_candidates_checked": 0,
            "build_exact_distance_checks": 0,
            "plan_calls": 0,
            "astar_runs": 0,
            "dijkstra_runs": 0,
            "sssp_runs": 0,
            "nodes_expanded": 0,
        }
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _edge_threshold(self) -> float:
        return self.transmission_range - self.connectivity_margin

    def _build(self) -> None:
        """Predict every edge via the spatial hash (never all pairs)."""
        t0 = time.perf_counter()
        threshold = self._edge_threshold()
        adjacency = self._adjacency
        centroids = self._centroids
        polygons = self._polygons
        rings = self._rings
        radii = self._radii
        for b in self.city.buildings:
            if b.area() * self.ap_density < self.min_expected_aps:
                continue
            c = b.centroid()
            adjacency[b.id] = {}
            centroids[b.id] = c
            polygons[b.id] = b.polygon
            rings[b.id] = tuple((v.x, v.y) for v in b.polygon.vertices)
            radii[b.id] = max((c.distance_to(v) for v in b.polygon.vertices),
                              default=0.0)
        self._max_radius = max(radii.values(), default=0.0)
        self._index: GridIndex[int] = GridIndex(cell_size=max(threshold, 1.0))
        for bid, c in centroids.items():
            self._index.insert(bid, c)
        if threshold >= 0:
            exponent = self.weight_exponent
            candidates = 0
            exact = 0
            for bid, c in centroids.items():
                # Two footprints with gap <= threshold have centroids no
                # farther apart than threshold + both footprint radii.
                reach = threshold + radii[bid] + self._max_radius
                for other in self._index.query_radius(c, reach):
                    if other <= bid:  # each unordered pair exactly once
                        continue
                    candidates += 1
                    box_a = polygons[bid].bbox
                    box_b = polygons[other].bbox
                    if _bbox_gap(box_a, box_b) > threshold:
                        continue
                    exact += 1
                    if not _gap_within(rings[bid], polygons[bid],
                                       rings[other], polygons[other], threshold):
                        continue
                    d = c.distance_to(centroids[other])
                    w = d ** exponent
                    adjacency[bid][other] = w
                    adjacency[other][bid] = w
            self._stats["build_candidates_checked"] += candidates
            self._stats["build_exact_distance_checks"] += exact
        self._stats["builds"] += 1
        build_s = time.perf_counter() - t0
        self._stats["build_time_s"] += build_s
        _M_BUILDS.inc()
        _M_BUILD_S.observe(build_s)
        self._extremes_dirty = True

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def __contains__(self, building_id: int) -> bool:
        return building_id in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[int]:
        return iter(self._adjacency)

    def node_count(self) -> int:
        """Number of buildings participating in the graph."""
        return len(self._adjacency)

    def edge_count(self) -> int:
        """Number of undirected predicted links."""
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def degree(self, building_id: int) -> int:
        """Number of predicted neighbours of one building."""
        return len(self._adjacency[building_id])

    def mean_degree(self) -> float:
        """Average degree (0 for an empty graph)."""
        if not self._adjacency:
            return 0.0
        return sum(len(nbrs) for nbrs in self._adjacency.values()) / len(self._adjacency)

    def neighbors(self, building_id: int) -> dict[int, float]:
        """``{neighbor id: edge weight}`` — a read-only view; do not mutate.

        Raises:
            KeyError: if the building is not in the graph.
        """
        return self._adjacency[building_id]

    def centroid(self, building_id: int) -> Point:
        """The routing anchor (footprint centroid) of a building.

        Raises:
            KeyError: if the building is not in the graph.
        """
        return self._centroids[building_id]

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation; keys the cache."""
        return self._version

    # ------------------------------------------------------------------
    # Mutation (explicit cache invalidation)
    # ------------------------------------------------------------------
    def add_mutation_listener(self, listener) -> None:
        """Subscribe to fine-grained mutation events.

        ``listener(kind, *ids)`` fires with kind ``"remove"`` (before
        the building leaves, so the listener can still inspect its
        edges), ``"add_link"`` (after the edge lands), or
        ``"add_building"`` (after insertion).  Listeners must not
        mutate the graph.
        """
        self._listeners.append(listener)

    def _notify(self, kind: str, *ids: int) -> None:
        for listener in self._listeners:
            listener(kind, *ids)

    def _mutated(self) -> None:
        self._version += 1
        self._route_cache.clear()
        self._extremes_dirty = True
        _M_INVALIDATIONS.inc()

    def _remove_building_no_bump(self, building_id: int) -> None:
        if self._listeners and building_id in self._adjacency:
            self._notify("remove", building_id)
        neighbors = self._adjacency.pop(building_id)
        for n in neighbors:
            del self._adjacency[n][building_id]
        del self._centroids[building_id]
        del self._polygons[building_id]
        del self._rings[building_id]
        del self._radii[building_id]
        self._index.remove(building_id)

    def remove_building(self, building_id: int) -> None:
        """Drop a building (e.g. destroyed/compromised) and its edges.

        Bumps :attr:`version` and invalidates the route cache.

        Raises:
            KeyError: if the building is not in the graph.
        """
        self._remove_building_no_bump(building_id)
        self._mutated()

    def _add_link_no_bump(
        self, building_a: int, building_b: int, weight: float | None
    ) -> None:
        if building_a == building_b:
            raise ValueError("a link needs two distinct buildings")
        if building_a not in self._adjacency:
            raise KeyError(building_a)
        if building_b not in self._adjacency:
            raise KeyError(building_b)
        if weight is None:
            d = self._centroids[building_a].distance_to(self._centroids[building_b])
            weight = d ** self.weight_exponent
        elif weight <= 0:
            raise ValueError("link weight must be positive")
        self._adjacency[building_a][building_b] = weight
        self._adjacency[building_b][building_a] = weight
        if self._listeners:
            self._notify("add_link", building_a, building_b)

    def add_link(
        self, building_a: int, building_b: int, weight: float | None = None
    ) -> None:
        """Announce a link the map alone would not predict.

        This models operator-deployed infrastructure — e.g. a chain of
        bridge APs spanning a connectivity gap — being advertised to
        senders so routes can cross it.  The weight defaults to centroid
        distance raised to ``weight_exponent``, the same formula as
        predicted edges; an existing edge's weight is overwritten.

        Bumps :attr:`version` and invalidates the route cache.

        Raises:
            KeyError: if either endpoint is missing from the graph.
            ValueError: for identical endpoints or a non-positive weight.
        """
        self._add_link_no_bump(building_a, building_b, weight)
        self._mutated()

    def patch(
        self,
        remove: Iterable[int] = (),
        add_links: Iterable[tuple[int, int]] = (),
    ) -> bool:
        """Apply one epoch's worth of mutations atomically.

        All removals and link announcements land under a **single**
        version bump (or none at all when both iterables are empty), so
        callers stepping a timeline invalidate the route/conduit caches
        exactly once per mutating step instead of once per casualty.
        Removals are applied before link announcements, so a patch may
        both demolish a neighbourhood and announce the replacement
        bridge in one step (links may not reference removed buildings).

        Returns:
            True when the graph mutated (and the version was bumped).

        Raises:
            KeyError: if a removal or link names an unknown building
                (removals already applied are not rolled back, but the
                version still bumps so caches stay coherent).
            ValueError: for a self-link.
        """
        remove = list(remove)
        add_links = list(add_links)
        if not remove and not add_links:
            return False
        try:
            for building_id in remove:
                self._remove_building_no_bump(building_id)
            for building_a, building_b in add_links:
                self._add_link_no_bump(building_a, building_b, None)
        finally:
            self._mutated()
        return True

    def add_building(self, building: "Building") -> None:
        """Insert a building and predict its edges via the spatial hash.

        Bumps :attr:`version` and invalidates the route cache.

        Raises:
            ValueError: on a duplicate id or a footprint below the
                ``min_expected_aps`` floor.
        """
        if building.id in self._adjacency:
            raise ValueError(f"building {building.id} already in graph")
        if building.area() * self.ap_density < self.min_expected_aps:
            raise ValueError(
                f"building {building.id} expects fewer than "
                f"{self.min_expected_aps} APs and would never join the graph"
            )
        c = building.centroid()
        ring = tuple((v.x, v.y) for v in building.polygon.vertices)
        radius = max((c.distance_to(v) for v in building.polygon.vertices), default=0.0)
        threshold = self._edge_threshold()
        nbrs: dict[int, float] = {}
        if threshold >= 0:
            reach = threshold + radius + self._max_radius
            for other in self._index.query_radius(c, reach):
                if _bbox_gap(building.polygon.bbox, self._polygons[other].bbox) > threshold:
                    continue
                if not _gap_within(ring, building.polygon, self._rings[other],
                                   self._polygons[other], threshold):
                    continue
                w = c.distance_to(self._centroids[other]) ** self.weight_exponent
                nbrs[other] = w
        self._adjacency[building.id] = nbrs
        for other, w in nbrs.items():
            self._adjacency[other][building.id] = w
        self._centroids[building.id] = c
        self._polygons[building.id] = building.polygon
        self._rings[building.id] = ring
        self._radii[building.id] = radius
        self._max_radius = max(self._max_radius, radius)
        self._index.insert(building.id, c)
        if self._listeners:
            self._notify("add_building", building.id)
        self._mutated()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _recompute_edge_extremes(self) -> None:
        lo = math.inf
        hi = 0.0
        centroids = self._centroids
        for u, nbrs in self._adjacency.items():
            cu = centroids[u]
            for v in nbrs:
                if v <= u:
                    continue
                d = cu.distance_to(centroids[v])
                if d < lo:
                    lo = d
                if d > hi:
                    hi = d
        self._min_edge_m = 0.0 if math.isinf(lo) else lo
        self._max_edge_m = hi
        self._extremes_dirty = False

    def _heuristic_scale(self) -> float:
        """Per-metre scale ``c`` making ``c * straight_line`` consistent.

        The naive "cubed straight-line distance" is NOT admissible for
        k > 1: splitting a leg into shorter hops shrinks the sum of
        cubes below the cube of the sum.  What does hold on any path:
        every hop satisfies m <= d_i <= L (the graph's extreme edge
        lengths), so d_i^k = d_i * d_i^(k-1) >= d_i * m^(k-1) when
        k >= 1 (resp. L^(k-1) when k < 1) and summing gives
        cost >= straight_line * c.  Consistency follows the same way,
        so A* needs no reopening.
        """
        k = self.weight_exponent
        if k == 1.0:
            return 1.0
        if self._extremes_dirty:
            self._recompute_edge_extremes()
        if k > 1.0:
            base = self._min_edge_m
        else:
            base = self._max_edge_m
        if base <= 0.0:
            return 0.0
        return base ** (k - 1.0)

    def _check_endpoint(self, building_id: int) -> None:
        if building_id not in self._adjacency:
            raise KeyError(building_id)

    def plan(self, src_building: int, dst_building: int) -> list[int]:
        """Minimum-weight route between two buildings (cached).

        Cache hits are O(1); misses run heap A* and store the result
        under ``(src, dst, version)``.  Unroutable pairs are cached
        too, so islands stay cheap to re-ask about.

        Raises:
            KeyError: if either endpoint is missing from the graph.
            NoRouteError: if the endpoints are on disconnected islands.
        """
        self._check_endpoint(src_building)
        self._check_endpoint(dst_building)
        self._stats["plan_calls"] += 1
        _M_PLAN_CALLS.inc()
        key = (src_building, dst_building, self._version)
        cached = self._route_cache.get(key)
        if cached is _NO_ROUTE:
            raise NoRouteError(
                f"no predicted path between buildings {src_building} "
                f"and {dst_building}"
            )
        if cached is not None:
            return list(cached)
        scale = self._heuristic_scale()
        if scale > 0.0:
            target = self._centroids[dst_building]
            centroids = self._centroids
            heuristic = lambda b: scale * centroids[b].distance_to(target)  # noqa: E731
            self._stats["astar_runs"] += 1
        else:
            heuristic = None
            self._stats["dijkstra_runs"] += 1
        t0 = time.perf_counter()
        route, expanded = heap_search(
            self._adjacency.__getitem__, src_building, dst_building, heuristic
        )
        _M_SEARCH_S.observe(time.perf_counter() - t0)
        self._stats["nodes_expanded"] += expanded
        _M_EXPANDED.inc(expanded)
        if route is None:
            self._route_cache.put(key, _NO_ROUTE)
            raise NoRouteError(
                f"no predicted path between buildings {src_building} "
                f"and {dst_building}"
            )
        self._route_cache.put(key, tuple(route))
        return route

    def plan_routes(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[list[int] | None]:
        """Batched many-to-many planning, one Dijkstra tree per source.

        Pairs are grouped by source; each distinct source with at least
        one uncached destination costs exactly one single-source
        Dijkstra expansion (``stats()['sssp_runs']``), shared across
        all its destinations.  Results land in the route cache, so a
        later :meth:`plan` of the same pair is a hit.

        Returns:
            Routes aligned with ``pairs``; ``None`` marks pairs that
            are unroutable or reference unknown buildings (batch
            callers skip rather than abort — per-pair exceptions would
            kill whole experiment sweeps).
        """
        self._stats["plan_calls"] += len(pairs)
        _M_PLAN_CALLS.inc(len(pairs))
        results: list[list[int] | None] = [None] * len(pairs)
        version = self._version
        pending: dict[int, list[int]] = {}
        for i, (src, dst) in enumerate(pairs):
            if src not in self._adjacency or dst not in self._adjacency:
                continue
            cached = self._route_cache.get((src, dst, version))
            if cached is _NO_ROUTE:
                continue
            if cached is not None:
                results[i] = list(cached)
                continue
            pending.setdefault(src, []).append(i)
        for src, indices in pending.items():
            targets = {pairs[i][1] for i in indices}
            t0 = time.perf_counter()
            _, parent, expanded = sssp_tree(
                self._adjacency.__getitem__, src, targets
            )
            _M_SSSP_S.observe(time.perf_counter() - t0)
            self._stats["sssp_runs"] += 1
            self._stats["nodes_expanded"] += expanded
            _M_EXPANDED.inc(expanded)
            for i in indices:
                dst = pairs[i][1]
                route = extract_route(parent, src, dst)
                key = (src, dst, version)
                if route is None:
                    self._route_cache.put(key, _NO_ROUTE)
                else:
                    self._route_cache.put(key, tuple(route))
                    results[i] = route
        return results

    # ------------------------------------------------------------------
    # Cache control and perf counters
    # ------------------------------------------------------------------
    def clear_route_cache(self) -> None:
        """Drop every cached route (counters are kept)."""
        self._route_cache.clear()

    def stats(self) -> dict[str, float]:
        """Work counters for perf regression (not wall-clock proxies).

        Includes build cost (spatial-hash candidates examined, exact
        polygon-distance checks, seconds), planner work (A*/Dijkstra
        runs, single-source batched runs, total nodes expanded) and the
        route cache's hit/miss/eviction counts.
        """
        out: dict[str, float] = dict(self._stats)
        out["nodes"] = self.node_count()
        out["edges"] = self.edge_count()
        out["version"] = self._version
        for k, v in self._route_cache.counters().items():
            out[f"route_cache_{k}"] = v
        approx = self._route_cache.approx_bytes()
        out["route_cache_approx_bytes"] = approx
        REGISTRY.gauge("buildgraph.route_cache.entries").set(len(self._route_cache))
        REGISTRY.gauge("buildgraph.route_cache.approx_bytes").set(approx)
        return out

    def reset_stats(self) -> None:
        """Zero every work counter (graph shape counters are derived)."""
        for k in self._stats:
            self._stats[k] = 0 if isinstance(self._stats[k], int) else 0.0
        self._route_cache.reset_counters()
