"""The building graph and its route planner (§3 steps 1–2).

The keystone of building routing: buildings are vertices, predicted
AP connectivity (footprint gap within transmission range) gives edges,
and cubed-centroid-distance weights make the planner prefer dense
blocks of short hops.  Engineered for the hot path:

- graph construction via the :class:`repro.geometry.GridIndex`
  spatial hash (never an O(n²) all-pairs scan),
- binary-heap Dijkstra with an A* fast path under a consistent
  scaled-straight-line heuristic,
- a bounded LRU route cache keyed by ``(src, dst, graph version)``
  with explicit invalidation on mutation,
- batched many-to-many planning that shares one single-source
  Dijkstra tree per source,
- work counters (``BuildingGraph.stats()``) so benchmarks regress on
  nodes expanded and cache hits, not just wall time,
- an optional metro-scale hierarchy (:mod:`.hierarchy`): region
  partitioning + border contraction so 100k+ building graphs plan in
  milliseconds, cost-identical to the flat planner.
"""

from .graph import (
    DEFAULT_AP_DENSITY,
    DEFAULT_ROUTE_CACHE_SIZE,
    DEFAULT_TRANSMISSION_RANGE,
    DEFAULT_WEIGHT_EXPONENT,
    BuildingGraph,
)
from .hierarchy import (
    DEFAULT_REGION_SIZE,
    MetroRouter,
    RegionPartition,
    attach_hierarchy,
    partition_regions,
)
from .lru import LRUCache
from .planner import (
    NoRouteError,
    heap_search,
    plan_building_route,
    plan_routes,
    route_length_m,
    sssp_tree,
)

__all__ = [
    "BuildingGraph",
    "LRUCache",
    "MetroRouter",
    "NoRouteError",
    "RegionPartition",
    "DEFAULT_AP_DENSITY",
    "DEFAULT_REGION_SIZE",
    "DEFAULT_ROUTE_CACHE_SIZE",
    "DEFAULT_TRANSMISSION_RANGE",
    "DEFAULT_WEIGHT_EXPONENT",
    "attach_hierarchy",
    "heap_search",
    "partition_regions",
    "plan_building_route",
    "plan_routes",
    "route_length_m",
    "sssp_tree",
]
