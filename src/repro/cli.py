"""Command-line interface: regenerate any table or figure.

Examples::

    python -m repro table1
    python -m repro fig6 --reach-pairs 200 --delivery-pairs 20
    python -m repro fig7 --city parkside --seed 3
    python -m repro ablation-width
    python -m repro all --quick
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    TrialRunner,
    compare_membership,
    export_all,
    format_calibration,
    format_capacity,
    run_calibration,
    run_capacity_sweep,
    format_replication,
    format_scaling,
    replicate_fig6,
    run_scaling,
    format_baselines,
    format_bridging,
    format_compromise,
    format_fig1,
    format_fig2,
    format_fig5,
    format_fig6,
    format_header_stats,
    format_sweep,
    format_table1,
    run_baseline_comparison,
    run_bridging,
    run_compromise_sweep,
    run_fig1,
    run_fig2,
    run_fig5,
    run_fig6,
    run_fig7,
    run_header_stats,
    run_table1,
    sweep_ap_density,
    sweep_conduit_width,
    sweep_weight_exponent,
)
from .measurement import run_study
from .obs import (
    DEFAULT_THRESHOLD_PCT,
    REGISTRY,
    close_trace,
    compare_files,
    set_trace_path,
    summarize_trace,
)
from .scenario import (
    ARCHETYPES,
    CongestionSpec,
    check_invariants,
    format_scenario,
    fuzz_specs,
    generate_scenario,
    make_scenario,
    run_scenario,
    scenario_names,
    spec_digest,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for independent trials (results are "
            "identical for any value; 1 = in-process)"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        default=None,
        help=(
            "stream observability span events to a JSONL file "
            "(summarize it afterwards with 'obs show OUT.jsonl')"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="citymesh",
        description="CityMesh reproduction: regenerate the paper's tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in [
        ("table1", "war-driving summary table"),
        ("fig1", "CDFs of MACs per scan and per-MAC spread"),
        ("fig2", "common APs vs measurement-pair distance"),
    ]:
        p = sub.add_parser(name, help=help_text)
        _add_common(p)
        if name == "fig1":
            p.add_argument("--plot", action="store_true", help="ASCII CDF charts")

    p = sub.add_parser("fig5", help="downtown footprints and AP mesh rendering")
    _add_common(p)
    p.add_argument("--blocks", type=int, default=6)

    p = sub.add_parser("fig6", help="reachability / deliverability / overhead per city")
    _add_common(p)
    p.add_argument("--reach-pairs", type=int, default=1000)
    p.add_argument("--delivery-pairs", type=int, default=50)
    p.add_argument("--cities", nargs="*", default=None)
    p.add_argument("--plot", action="store_true", help="ASCII bar charts")

    p = sub.add_parser("fig7", help="render one simulated delivery")
    _add_common(p)
    p.add_argument("--city", default="gridport")

    p = sub.add_parser("header", help="compressed-route header sizes")
    _add_common(p)
    p.add_argument("--pairs", type=int, default=150)

    p = sub.add_parser("ablation-width", help="conduit width sweep")
    _add_common(p)
    p = sub.add_parser("ablation-weights", help="edge-weight exponent sweep")
    _add_common(p)
    p = sub.add_parser("ablation-density", help="AP density sweep")
    _add_common(p)
    p = sub.add_parser("ablation-membership", help="building vs AP-position membership")
    _add_common(p)

    p = sub.add_parser("baselines", help="CityMesh vs flood/gossip/greedy/GPSR/AODV")
    _add_common(p)
    p.add_argument("--city", default="gridport")
    p.add_argument("--pairs", type=int, default=30)

    p = sub.add_parser("security", help="deliverability under compromised APs")
    _add_common(p)
    p.add_argument("--city", default="gridport")

    p = sub.add_parser("bridging", help="island bridging before/after")
    _add_common(p)
    p.add_argument("--cities", nargs="*", default=["riverton", "capitolia"])

    p = sub.add_parser("calibration", help="building-graph predictor precision/recall")
    _add_common(p)
    p.add_argument("--city", default="gridport")

    p = sub.add_parser("capacity", help="delivery rate vs offered load")
    _add_common(p)
    p.add_argument("--city", default="gridport")

    p = sub.add_parser("replicate", help="fig6 across seeds with error bars")
    _add_common(p)
    p.add_argument("--cities", nargs="*", default=["gridport", "riverton"])
    p.add_argument("--num-seeds", type=int, default=5)

    p = sub.add_parser("scaling", help="per-node control traffic vs network size (section 5)")
    _add_common(p)

    p = sub.add_parser(
        "metro", help="metro-scale hierarchical routing: partition + plan stats"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--preset",
        default="metro-20k",
        help="city preset (metro-20k, metro-100k, or any regular preset)",
    )
    p.add_argument(
        "--routes", type=int, default=200, help="random routes to plan"
    )
    p.add_argument(
        "--region-size",
        type=int,
        default=None,
        help="target buildings per region (default: library default)",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    p = sub.add_parser(
        "scenario", help="dynamic disaster timelines with fault injection"
    )
    scen = p.add_subparsers(dest="scenario_command", required=True)
    sp = scen.add_parser("run", help="step a canned scenario and report per epoch")
    _add_common(sp)
    sp.add_argument("name", choices=scenario_names(), help="canned scenario")
    sp.add_argument(
        "--json",
        action="store_true",
        help="emit the full ScenarioResult as deterministic JSON",
    )
    scen.add_parser("list", help="list the canned scenarios")
    sp = scen.add_parser(
        "generate",
        help="generate a seeded archetype timeline and step it end to end",
    )
    _add_common(sp)
    sp.add_argument(
        "--archetype",
        choices=ARCHETYPES,
        required=True,
        help="disaster shape to generate",
    )
    sp.add_argument("--city", default="gridport", help="preset city")
    sp.add_argument(
        "--epochs", type=int, default=None, help="timeline length (archetype default)"
    )
    sp.add_argument("--flows", type=int, default=16, help="static flows per epoch")
    sp.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="damage/churn/dwell scale, in (0, 3]",
    )
    sp.add_argument(
        "--mobile-flows",
        type=int,
        default=0,
        help="walkers whose endpoints follow seeded trajectories",
    )
    sp.add_argument(
        "--congestion-window",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "couple flows through the shared air: all flows inject "
            "within this window (smaller = more collisions)"
        ),
    )
    sp.add_argument(
        "--spec-only",
        action="store_true",
        help="print the generated spec JSON without running it",
    )
    sp.add_argument(
        "--json",
        action="store_true",
        help="emit the full ScenarioResult as deterministic JSON",
    )
    sp = scen.add_parser(
        "fuzz",
        help=(
            "run seeded random generated timelines, checking driver "
            "invariants and worker-count determinism (nonzero exit on "
            "any violation)"
        ),
    )
    _add_common(sp)
    sp.add_argument("--count", type=int, default=5, help="timelines to draw")
    sp.add_argument("--city", default="gridport", help="preset city")

    p = sub.add_parser("obs", help="observability: traces and metric snapshots")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    sp = obs_sub.add_parser(
        "show", help="summarize a --trace JSONL file (or dump the registry)"
    )
    sp.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="JSONL trace to summarize; omitted = live registry snapshot",
    )
    sp.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    p = sub.add_parser(
        "serve", help="run the always-on DFN service (postbox/geocast/directory)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787, help="0 = ephemeral")
    p.add_argument("--city", default="gridport", help="city preset the service hosts")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=8, help="postbox store shards")
    p.add_argument("--capacity", type=int, default=1024, help="messages per postbox")
    p.add_argument(
        "--queue-limit",
        type=int,
        default=4096,
        help="per-shard queue depth before 503 backpressure",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes accepting on a shared SO_REUSEPORT port "
            "(1 = classic single-process server)"
        ),
    )

    p = sub.add_parser(
        "loadgen", help="closed-loop load generator replaying a scenario timeline"
    )
    p.add_argument("name", choices=scenario_names(), help="scenario to replay")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--phones", type=int, default=200, help="simulated devices")
    p.add_argument("--connections", type=int, default=32, help="closed-loop workers")
    p.add_argument(
        "--target",
        default=None,
        metavar="HOST:PORT",
        help="a running 'repro serve' to hit over TCP (default: in-process)",
    )
    p.add_argument(
        "--procs",
        type=int,
        default=1,
        help=(
            "generator processes (forked) so the closed loop can "
            "saturate a multi-worker service; TCP targets only"
        ),
    )
    p.add_argument(
        "--dump-trace",
        default=None,
        metavar="OUT.json",
        help="write the deterministic trace JSON ('-' = stdout) and exit",
    )
    p.add_argument(
        "--dump-responses",
        default=None,
        metavar="OUT.json",
        help=(
            "record every [status, payload] response in replay order "
            "(deterministic only with --connections 1; the CI "
            "byte-identity guard diffs this between transports)"
        ),
    )
    p.add_argument("--json", action="store_true", help="machine-readable report")

    p = sub.add_parser("bench", help="benchmark tooling")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    cp = bench_sub.add_parser(
        "compare",
        help="schema-aware perf regression check between two bench records",
    )
    cp.add_argument("baseline", help="baseline perf JSON (e.g. BENCH_*.json)")
    cp.add_argument("current", help="freshly produced perf JSON")
    cp.add_argument(
        "--threshold",
        type=float,
        default=None,
        help=(
            "regression threshold in percent (default: "
            f"$BENCH_COMPARE_THRESHOLD or {DEFAULT_THRESHOLD_PCT:g})"
        ),
    )
    cp.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (CI smoke mode)",
    )
    cp.add_argument(
        "--verbose", action="store_true", help="print unchanged metrics too"
    )

    p = sub.add_parser("export", help="write every artefact as CSV/text files")
    _add_common(p)
    p.add_argument("--out", default="results")
    p.add_argument("--quick", action="store_true")

    p = sub.add_parser("all", help="run every experiment")
    _add_common(p)
    p.add_argument("--quick", action="store_true", help="reduced sample sizes")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "metro":
        return _run_metro(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "loadgen":
        return _run_loadgen(args)
    seed = getattr(args, "seed", 0)
    trace = getattr(args, "trace", None)
    if trace:
        set_trace_path(trace)
    try:
        with TrialRunner(workers=getattr(args, "workers", 1)) as runner:
            return _dispatch(args, seed, runner)
    finally:
        if trace:
            close_trace()


def _run_obs(args: argparse.Namespace) -> int:
    """``obs show``: trace summaries and registry snapshots."""
    import json as _json

    if args.trace is None:
        print(_json.dumps(REGISTRY.snapshot(), indent=2, sort_keys=True))
        return 0
    with open(args.trace) as fh:
        summary = summarize_trace(fh)
    if args.json:
        print(_json.dumps(summary, indent=2))
        return 0
    if not summary:
        print(f"{args.trace}: no span events")
        return 0
    print(f"{'span':<28} {'count':>7} {'total_s':>10} {'mean_s':>10} {'max_s':>10}")
    for name, row in summary.items():
        print(
            f"{name:<28} {row['count']:>7} {row['total_s']:>10.4f} "
            f"{row['mean_s']:>10.6f} {row['max_s']:>10.6f}"
        )
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    """``bench compare``: the schema-aware regression comparator."""
    import os as _os

    threshold = args.threshold
    if threshold is None:
        threshold = float(
            _os.environ.get("BENCH_COMPARE_THRESHOLD", DEFAULT_THRESHOLD_PCT)
        )
    return compare_files(
        args.baseline,
        args.current,
        threshold_pct=threshold,
        warn_only=args.warn_only,
        verbose=args.verbose,
    )


def _run_metro(args: argparse.Namespace) -> int:
    """``metro``: partition a city, attach the hierarchy, report stats."""
    import json as _json
    import random as _random
    import statistics
    import time as _time

    from .buildgraph import BuildingGraph, NoRouteError, attach_hierarchy
    from .city import make_city

    t0 = _time.perf_counter()
    city = make_city(args.preset, seed=args.seed)
    graph = BuildingGraph(city)
    build_s = _time.perf_counter() - t0
    kwargs = {}
    if args.region_size is not None:
        kwargs["target_region_size"] = args.region_size
    t0 = _time.perf_counter()
    router = attach_hierarchy(graph, seed=args.seed, **kwargs)
    partition_s = _time.perf_counter() - t0
    t0 = _time.perf_counter()
    router.build_overlays()
    overlay_s = _time.perf_counter() - t0
    rng = _random.Random(args.seed)
    ids = list(graph)
    latencies: list[float] = []
    unroutable = 0
    for _ in range(max(args.routes, 0)):
        src, dst = rng.sample(ids, 2)
        t0 = _time.perf_counter()
        try:
            router.plan(src, dst)
        except NoRouteError:
            unroutable += 1
        latencies.append(_time.perf_counter() - t0)
    stats = router.stats()
    out = {
        "preset": args.preset,
        "buildings": len(graph),
        "edges": graph.edge_count(),
        "regions": int(stats["regions"]),
        "borders": int(stats["borders"]),
        "graph_build_s": round(build_s, 4),
        "partition_s": round(partition_s, 4),
        "overlay_build_s": round(overlay_s, 4),
        "routes_planned": len(latencies),
        "unroutable": unroutable,
        "route_p50_ms": round(statistics.median(latencies) * 1e3, 3)
        if latencies
        else None,
        "route_max_ms": round(max(latencies) * 1e3, 3) if latencies else None,
        "overlay_settled": int(stats["overlay_settled"]),
        "route_cache_entries": int(stats["route_cache_entries"]),
        "route_cache_approx_bytes": int(stats["route_cache_approx_bytes"]),
    }
    if args.json:
        print(_json.dumps(out, indent=2, sort_keys=True))
        return 0
    width = max(len(k) for k in out)
    for k, v in out.items():
        print(f"{k:<{width}}  {v}")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """``serve``: the always-on service, until SIGINT/SIGTERM.

    ``--workers 1`` is the classic single-process server, byte-for-byte
    (the CI identity guard depends on that); ``--workers N`` runs the
    SO_REUSEPORT cluster supervisor.
    """
    import asyncio as _asyncio

    from .service import build_app, run_service

    if args.workers > 1:
        from .service import ClusterConfig, ClusterSupervisor

        supervisor = ClusterSupervisor(
            ClusterConfig(
                n_workers=args.workers,
                city_name=args.city,
                seed=args.seed,
                n_shards=args.shards,
                capacity=args.capacity,
                queue_limit=args.queue_limit,
            ),
            host=args.host,
            port=args.port,
        )
        supervisor.start()
        accept = "fd-passing" if supervisor.fdpass else "SO_REUSEPORT"
        print(
            f"repro serve: {args.city} (seed {args.seed}) on "
            f"http://{args.host}:{supervisor.port} — {args.workers} workers "
            f"({accept}), {args.shards} shards/worker, "
            f"capacity {args.capacity}/box; Ctrl-C to stop",
            flush=True,
        )
        return supervisor.serve()

    app = build_app(
        city_name=args.city,
        seed=args.seed,
        n_shards=args.shards,
        capacity=args.capacity,
        queue_limit=args.queue_limit,
    )

    def ready(server) -> None:
        print(
            f"repro serve: {args.city} (seed {args.seed}) on "
            f"http://{args.host}:{server.port} — {args.shards} shards, "
            f"capacity {args.capacity}/box; Ctrl-C to stop",
            flush=True,
        )

    try:
        _asyncio.run(
            run_service(app, host=args.host, port=args.port, ready=ready)
        )
    except KeyboardInterrupt:
        pass
    return 0


def _run_loadgen(args: argparse.Namespace) -> int:
    """``loadgen``: deterministic trace generation + closed-loop replay."""
    import asyncio as _asyncio
    import json as _json

    from .service import (
        InProcessClient,
        ServiceClient,
        build_app,
        format_report,
        generate_trace,
        run_loadgen,
        run_loadgen_procs,
    )

    spec = make_scenario(args.name, seed=args.seed)
    trace = generate_trace(spec, phones=args.phones)
    if args.dump_trace is not None:
        rendered = trace.to_json(indent=2)
        if args.dump_trace == "-":
            print(rendered)
        else:
            with open(args.dump_trace, "w") as fh:
                fh.write(rendered + "\n")
            print(f"wrote {len(trace.requests)} trace requests to {args.dump_trace}")
        return 0
    if args.procs > 1 and not args.target:
        print("loadgen: --procs needs a TCP --target", file=sys.stderr)
        return 2
    if args.procs > 1 and args.dump_responses:
        print("loadgen: --dump-responses needs --procs 1", file=sys.stderr)
        return 2

    capture: list | None = [] if args.dump_responses else None

    async def replay():
        if args.target:
            host, _, port = args.target.rpartition(":")
            # One throwaway probe learns the worker count so each
            # connection can dial its bucket's home worker (zero-hop
            # affinity); a single-worker target reports workers=1 and
            # the probe degrades to a no-op.
            probe = ServiceClient(host, int(port))
            try:
                _, health = await probe.request("GET", "/v1/healthz")
            finally:
                await probe.close()
            workers = int(health.get("workers", 1))

            def factory(index: int) -> ServiceClient:
                prefer = None
                if workers > 1 and args.connections % workers == 0:
                    prefer = index % workers
                return ServiceClient(host, int(port), prefer_worker=prefer)

            return await run_loadgen(
                trace, factory, connections=args.connections, capture=capture
            )
        app = build_app(city_name=spec.world.city_name, seed=args.seed)
        await app.start()
        try:
            return await run_loadgen(
                trace,
                lambda index: InProcessClient(app),
                connections=args.connections,
                capture=capture,
            )
        finally:
            await app.close()

    if args.procs > 1:
        host, _, port = args.target.rpartition(":")

        async def probe_workers() -> int:
            probe = ServiceClient(host, int(port))
            try:
                _, health = await probe.request("GET", "/v1/healthz")
            finally:
                await probe.close()
            return int(health.get("workers", 1))

        workers = _asyncio.run(probe_workers())
        report = run_loadgen_procs(
            trace,
            host,
            int(port),
            connections=args.connections,
            procs=args.procs,
            workers=workers,
        )
    else:
        report = _asyncio.run(replay())
    if capture is not None:
        with open(args.dump_responses, "w") as fh:
            _json.dump(capture, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
    if args.json:
        print(
            _json.dumps(
                {
                    "scenario": spec.name,
                    "city": spec.world.city_name,
                    "seed": args.seed,
                    "phones": args.phones,
                    "trace_requests": len(trace.requests),
                    "kind_counts": trace.kind_counts(),
                    "report": report.to_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(format_report(report, trace))
    return 0


def _dispatch(args: argparse.Namespace, seed: int, runner: TrialRunner) -> int:
    if args.command in ("table1", "fig1", "fig2"):
        datasets = run_study(seed=seed, runner=runner)
        if args.command == "table1":
            print(format_table1(run_table1(seed=seed, datasets=datasets)))
        elif args.command == "fig1":
            areas = run_fig1(seed=seed, datasets=datasets)
            print(format_fig1(areas))
            if args.plot:
                from .experiments import fig1_series
                from .viz import cdf_chart

                series = fig1_series(areas, points=60)
                print("\nFigure 1a: MACs per measurement")
                print(cdf_chart(
                    {a: s["macs_per_scan"] for a, s in series.items()},
                    x_label="MACs per scan",
                ))
                print("\nFigure 1b: per-MAC location spread")
                print(cdf_chart(
                    {a: s["spread_m"] for a, s in series.items()},
                    x_label="spread (m)",
                ))
        else:
            print(format_fig2(run_fig2(seed=seed, datasets=datasets)))
    elif args.command == "fig5":
        print(format_fig5(run_fig5(seed=seed, blocks=args.blocks)))
    elif args.command == "fig6":
        rows = run_fig6(
            seed=seed,
            cities=args.cities,
            reach_pairs=args.reach_pairs,
            delivery_pairs=args.delivery_pairs,
            workers=args.workers,
        )
        print(format_fig6(rows))
        if args.plot:
            from .viz import ascii_bar_chart

            print("\nreachability:")
            print(ascii_bar_chart([r.city for r in rows],
                                  [r.reachability for r in rows], max_value=1.0))
            print("\ndeliverability given reachability:")
            print(ascii_bar_chart([r.city for r in rows],
                                  [r.deliverability for r in rows], max_value=1.0))
    elif args.command == "fig7":
        print(run_fig7(seed=seed, city_name=args.city).art)
    elif args.command == "header":
        print(format_header_stats(run_header_stats(seed=seed, pairs=args.pairs)))
    elif args.command == "ablation-width":
        print(
            format_sweep(
                sweep_conduit_width(seed=seed, runner=runner),
                "width (m)",
                "Conduit width sweep",
            )
        )
    elif args.command == "ablation-weights":
        print(
            format_sweep(
                sweep_weight_exponent(seed=seed, runner=runner),
                "exponent",
                "Edge-weight exponent sweep",
            )
        )
    elif args.command == "ablation-density":
        print(
            format_sweep(
                sweep_ap_density(seed=seed, runner=runner),
                "m^2 per AP",
                "AP density sweep",
            )
        )
    elif args.command == "ablation-membership":
        c = compare_membership(seed=seed, runner=runner)
        print(
            f"building membership: {c.building_delivered}/{c.attempted} delivered, "
            f"median tx {c.building_median_tx}\n"
            f"AP-position membership: {c.position_delivered}/{c.attempted} delivered, "
            f"median tx {c.position_median_tx}"
        )
    elif args.command == "baselines":
        print(format_baselines(run_baseline_comparison(args.city, seed=seed, pairs=args.pairs)))
    elif args.command == "security":
        print(format_compromise(run_compromise_sweep(args.city, seed=seed)))
    elif args.command == "bridging":
        results = [run_bridging(city, seed=seed) for city in args.cities]
        print(format_bridging(results))
    elif args.command == "calibration":
        print(format_calibration(run_calibration(args.city, seed=seed)))
    elif args.command == "capacity":
        print(format_capacity(run_capacity_sweep(args.city, seed=seed, runner=runner)))
    elif args.command == "replicate":
        results = [
            replicate_fig6(city, seeds=tuple(range(seed, seed + args.num_seeds)))
            for city in args.cities
        ]
        print(format_replication(results))
    elif args.command == "scaling":
        print(format_scaling(run_scaling(runner=runner)))
    elif args.command == "scenario":
        if args.scenario_command == "list":
            for name in scenario_names():
                spec = make_scenario(name)
                print(f"{name:22s} {spec.world.city_name:10s} "
                      f"{spec.epochs} x {spec.epoch_hours:g} h  {spec.description}")
        elif args.scenario_command == "generate":
            import json as _json

            congestion = (
                CongestionSpec(window_s=args.congestion_window)
                if args.congestion_window is not None
                else None
            )
            spec = generate_scenario(
                args.archetype,
                seed,
                city=args.city,
                epochs=args.epochs,
                flows=args.flows,
                intensity=args.intensity,
                mobile_flows=args.mobile_flows,
                congestion=congestion,
            )
            if args.spec_only:
                print(_json.dumps(spec.to_dict(), indent=2, sort_keys=True))
                return 0
            result = run_scenario(spec, runner=runner)
            violations = check_invariants(result, spec)
            if args.json:
                print(result.to_json(indent=2))
            else:
                print(f"spec {spec_digest(spec)}: {spec.description}")
                print(format_scenario(result))
            if violations:
                for v in violations:
                    print(f"INVARIANT VIOLATION: {v}", file=sys.stderr)
                return 1
        elif args.scenario_command == "fuzz":
            failures = 0
            for spec in fuzz_specs(args.count, seed, city=args.city):
                result = run_scenario(spec, runner=runner)
                problems = check_invariants(result, spec)
                replay = run_scenario(spec)  # serial replay: worker gate
                if result.to_json(manifest=False) != replay.to_json(
                    manifest=False
                ):
                    problems.append(
                        "result not byte-identical to a serial replay"
                    )
                tag = "FAIL" if problems else "ok"
                print(
                    f"{tag:4s} {spec.name:28s} {spec_digest(spec)} "
                    f"flows={spec.flows}+{spec.mobile_flows}m "
                    f"cong={'y' if spec.congestion else 'n'} "
                    f"min_rate={result.min_delivery_rate:.2f}"
                )
                for problem in problems:
                    print(f"     {problem}", file=sys.stderr)
                failures += bool(problems)
            if failures:
                print(f"{failures} timeline(s) violated invariants", file=sys.stderr)
                return 1
            print(f"{args.count} generated timelines clean")
        else:
            result = run_scenario(make_scenario(args.name, seed=seed), runner=runner)
            if args.json:
                print(result.to_json(indent=2))
            else:
                print(format_scenario(result))
    elif args.command == "export":
        files = export_all(args.out, seed=seed, quick=args.quick)
        for path in files:
            print(path)
        print(f"wrote {len(files)} files to {args.out}")
    elif args.command == "all":
        quick = args.quick
        datasets = run_study(seed=seed, runner=runner)
        print(format_table1(run_table1(seed=seed, datasets=datasets)), "\n")
        print(format_fig1(run_fig1(seed=seed, datasets=datasets)), "\n")
        print(format_fig2(run_fig2(seed=seed, datasets=datasets)), "\n")
        print(format_fig5(run_fig5(seed=seed)), "\n")
        print(
            format_fig6(
                run_fig6(
                    seed=seed,
                    reach_pairs=100 if quick else 1000,
                    delivery_pairs=15 if quick else 50,
                    workers=args.workers,
                )
            ),
            "\n",
        )
        print(run_fig7(seed=seed).art, "\n")
        print(format_header_stats(run_header_stats(seed=seed, pairs=40 if quick else 150)), "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
