"""Text-art map rendering (Figures 5 and 7) and the raster canvas."""

from .plot import ascii_bar_chart, ascii_line_chart, cdf_chart
from .raster import AsciiCanvas
from .render import LEGEND_CITY, LEGEND_MESH, LEGEND_SIM, render_city, render_mesh, render_simulation

__all__ = [
    "AsciiCanvas",
    "ascii_bar_chart",
    "ascii_line_chart",
    "cdf_chart",
    "LEGEND_CITY",
    "LEGEND_MESH",
    "LEGEND_SIM",
    "render_city",
    "render_mesh",
    "render_simulation",
]
