"""Terminal plots: ASCII line charts and bar charts.

matplotlib is unavailable offline, so the figure CLIs can render their
series directly in the terminal: CDFs as staircase line charts
(Figure 1), per-city bars (Figure 6), and whisker strips (Figure 2).
"""

from __future__ import annotations

from typing import Sequence


def ascii_line_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 72,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot one or more (x, y) series as an ASCII chart.

    Each series gets a distinct marker; a legend line maps markers to
    series names.  Axes are linear and shared across series.

    Raises:
        ValueError: for empty input or degenerate dimensions.
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("nothing to plot")
    if width < 10 or height < 4:
        raise ValueError("chart too small")
    markers = "*o+x#@%&"
    all_points = [p for pts in series.values() for p in pts]
    min_x = min(p[0] for p in all_points)
    max_x = max(p[0] for p in all_points)
    min_y = min(p[1] for p in all_points)
    max_y = max(p[1] for p in all_points)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for marker, (name, points) in zip(markers, series.items()):
        legend.append(f"{marker} {name}")
        for x, y in points:
            col = int((x - min_x) / span_x * (width - 1))
            row = height - 1 - int((y - min_y) / span_y * (height - 1))
            grid[row][col] = marker

    lines = ["  ".join(legend)]
    for i, row in enumerate(grid):
        y_val = max_y - i / (height - 1) * span_y
        lines.append(f"{y_val:8.2f} |" + "".join(row).rstrip())
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10 + f"{min_x:<12.1f}{x_label:^{max(0, width - 24)}}{max_x:>12.1f}"
    )
    lines.append(f"(y: {y_label})")
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    max_value: float | None = None,
    value_format: str = "{:.2f}",
) -> str:
    """Horizontal bar chart with one row per label.

    Raises:
        ValueError: on mismatched inputs or an empty chart.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("nothing to plot")
    top = max_value if max_value is not None else max(values)
    if top <= 0:
        top = 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(value / top * width))
        lines.append(
            f"{label:<{label_width}} |{bar:<{width}}| " + value_format.format(value)
        )
    return "\n".join(lines)


def cdf_chart(
    series: dict[str, list[tuple[float, float]]],
    x_label: str,
    width: int = 72,
    height: int = 16,
) -> str:
    """Convenience wrapper for CDF series (y axis is the fraction)."""
    return ascii_line_chart(
        series, width=width, height=height, x_label=x_label, y_label="CDF"
    )
