"""A tiny ASCII raster canvas for map rendering.

matplotlib is unavailable in this environment, so Figures 5 and 7 are
rendered as text art: buildings as filled blocks, APs as dots, the
building route as a line of stars.  Pixels are character cells; the
vertical world-to-cell ratio is doubled because terminal glyphs are
roughly twice as tall as they are wide.
"""

from __future__ import annotations

from ..geometry import Point, Polygon


class AsciiCanvas:
    """A character raster mapped onto a world-coordinate window."""

    def __init__(
        self,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        width_chars: int = 100,
    ):
        if max_x <= min_x or max_y <= min_y:
            raise ValueError("canvas bounds must have positive extent")
        if width_chars < 2:
            raise ValueError("canvas too narrow")
        self.min_x = min_x
        self.min_y = min_y
        self.max_x = max_x
        self.max_y = max_y
        self.width = width_chars
        aspect = (max_y - min_y) / (max_x - min_x)
        # Character cells are ~2x taller than wide.
        self.height = max(2, round(width_chars * aspect / 2.0))
        self._cells = [[" "] * self.width for _ in range(self.height)]

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    def cell_of(self, p: Point) -> tuple[int, int] | None:
        """(row, col) of a world point, or None when outside the window."""
        if not (self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y):
            return None
        col = int((p.x - self.min_x) / (self.max_x - self.min_x) * (self.width - 1))
        # Row 0 is the top of the picture (largest y).
        row = int((self.max_y - p.y) / (self.max_y - self.min_y) * (self.height - 1))
        return (row, col)

    def world_of(self, row: int, col: int) -> Point:
        """World coordinates of a cell centre."""
        x = self.min_x + col / (self.width - 1) * (self.max_x - self.min_x)
        y = self.max_y - row / (self.height - 1) * (self.max_y - self.min_y)
        return Point(x, y)

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------
    def plot(self, p: Point, char: str) -> None:
        """Draw a single character at a world point (no-op off-canvas)."""
        cell = self.cell_of(p)
        if cell is not None:
            row, col = cell
            self._cells[row][col] = char

    def fill_polygon(self, polygon: Polygon, char: str) -> None:
        """Fill a polygon by testing the centres of candidate cells."""
        min_x, min_y, max_x, max_y = polygon.bbox
        top_left = self.cell_of(
            Point(max(min_x, self.min_x), min(max_y, self.max_y))
        )
        bottom_right = self.cell_of(
            Point(min(max_x, self.max_x), max(min_y, self.min_y))
        )
        if top_left is None or bottom_right is None:
            return
        for row in range(top_left[0], bottom_right[0] + 1):
            for col in range(top_left[1], bottom_right[1] + 1):
                if polygon.contains(self.world_of(row, col)):
                    self._cells[row][col] = char

    def line(self, a: Point, b: Point, char: str) -> None:
        """Draw a straight line by dense sampling."""
        steps = max(
            2,
            int(a.distance_to(b) / (self.max_x - self.min_x) * self.width * 2),
        )
        for i in range(steps + 1):
            self.plot(a.lerp(b, i / steps), char)

    def polyline(self, points: list[Point], char: str) -> None:
        """Draw connected line segments."""
        for a, b in zip(points, points[1:]):
            self.line(a, b, char)

    def render(self) -> str:
        """The canvas as a newline-joined string."""
        return "\n".join("".join(row).rstrip() for row in self._cells)
