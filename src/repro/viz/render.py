"""Map renderings: the text-art analogues of Figures 5 and 7.

Legend (documented in every rendering's header):

====  ==========================================================
char  meaning
====  ==========================================================
#     building footprint (Fig 5a's red footprints)
~     water            %%   park / quad          =    highway
.     AP (Fig 5b's white dots)
*     the building route chosen by CityMesh (Fig 7's green line)
o     AP that rebroadcast (Fig 7's light blue dots)
x     AP that heard the packet but stayed silent (Fig 7's red)
S/D   source / destination building centroid
====  ==========================================================
"""

from __future__ import annotations

from ..city import City
from ..core import RoutePlan
from ..mesh import APGraph
from ..sim import BroadcastResult
from .raster import AsciiCanvas

_OBSTACLE_CHARS = {"water": "~", "park": "%", "highway": "="}

LEGEND_CITY = "# building   ~ water   % park   = highway"
LEGEND_MESH = LEGEND_CITY + "   . AP"
LEGEND_SIM = (
    LEGEND_CITY + "   * route   o AP rebroadcast   x AP silent   S source   D dest"
)


def _canvas_for(city: City, width_chars: int) -> AsciiCanvas:
    min_x, min_y, max_x, max_y = city.bounds()
    pad_x = (max_x - min_x) * 0.02
    pad_y = (max_y - min_y) * 0.02
    return AsciiCanvas(
        min_x - pad_x, min_y - pad_y, max_x + pad_x, max_y + pad_y, width_chars
    )


def render_city(city: City, width_chars: int = 100) -> str:
    """Figure 5a: building footprints (and obstacle regions)."""
    canvas = _canvas_for(city, width_chars)
    for obstacle in city.obstacles:
        canvas.fill_polygon(obstacle.polygon, _OBSTACLE_CHARS.get(obstacle.kind, "?"))
    for building in city.buildings:
        canvas.fill_polygon(building.polygon, "#")
    return f"{city.name}  [{LEGEND_CITY}]\n{canvas.render()}"


def render_mesh(city: City, graph: APGraph, width_chars: int = 100) -> str:
    """Figure 5b: footprints plus the AP placement."""
    canvas = _canvas_for(city, width_chars)
    for obstacle in city.obstacles:
        canvas.fill_polygon(obstacle.polygon, _OBSTACLE_CHARS.get(obstacle.kind, "?"))
    for building in city.buildings:
        canvas.fill_polygon(building.polygon, "#")
    for ap in graph.aps:
        canvas.plot(ap.position, ".")
    return (
        f"{city.name}: {len(graph)} APs, {graph.edge_count()} links "
        f"(range {graph.transmission_range:.0f} m)  [{LEGEND_MESH}]\n{canvas.render()}"
    )


def render_simulation(
    city: City,
    graph: APGraph,
    plan: RoutePlan,
    result: BroadcastResult,
    width_chars: int = 110,
) -> str:
    """Figure 7: one simulated delivery, route and rebroadcast set."""
    canvas = _canvas_for(city, width_chars)
    for obstacle in city.obstacles:
        canvas.fill_polygon(obstacle.polygon, _OBSTACLE_CHARS.get(obstacle.kind, "?"))
    for building in city.buildings:
        canvas.fill_polygon(building.polygon, "#")
    # The chosen building route (green line in the paper's figure).
    route_centroids = [city.building(b).centroid() for b in plan.route]
    canvas.polyline(route_centroids, "*")
    # APs, coloured by their role in this simulation.
    for ap in graph.aps:
        if ap.id in result.transmitters:
            canvas.plot(ap.position, "o")
        elif ap.id in result.heard:
            canvas.plot(ap.position, "x")
    canvas.plot(city.building(plan.route[0]).centroid(), "S")
    canvas.plot(city.building(plan.route[-1]).centroid(), "D")
    status = "delivered" if result.delivered else "NOT delivered"
    return (
        f"{city.name}: {status}, {result.transmissions} transmissions, "
        f"{len(plan.waypoint_ids)} waypoints  [{LEGEND_SIM}]\n{canvas.render()}"
    )
