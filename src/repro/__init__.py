"""CityMesh: a reproduction of *The Case for Decentralized Fallback
Networks* (Lynch et al., HotNets 2024).

The package implements the paper's full system from scratch:

- :mod:`repro.geometry` — planar geometry and spatial indexing,
- :mod:`repro.osm` — OSM-XML building-footprint substrate,
- :mod:`repro.city` — synthetic city generators,
- :mod:`repro.mesh` — AP placement and the unit-disk AP graph,
- :mod:`repro.buildgraph` — the map-derived building graph,
- :mod:`repro.core` — building routing, conduit compression, header codec,
- :mod:`repro.sim` — discrete-event broadcast simulation,
- :mod:`repro.baselines` — flooding / gossip / greedy-geo / AODV baselines,
- :mod:`repro.measurement` — the §2 war-driving study,
- :mod:`repro.postbox` — postbox messaging and self-certifying names,
- :mod:`repro.security` — compromised-node experiments,
- :mod:`repro.experiments` — drivers regenerating every table and figure.
"""

from .buildgraph import BuildingGraph, NoRouteError, plan_building_route

__all__ = ["BuildingGraph", "NoRouteError", "plan_building_route"]

__version__ = "1.0.0"
