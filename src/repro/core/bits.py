"""Bit-level packing for CityMesh packet headers.

The paper reports header sizes in *bits* (median 175, 90th percentile
225 for the compressed source route), so the codec must pack building
ids at their exact bit width rather than rounding to bytes per field.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates values most-significant-bit first into a byte string."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write(self, value: int, width: int) -> None:
        """Append ``value`` using exactly ``width`` bits.

        Raises:
            ValueError: if the value does not fit or is negative.
        """
        if width <= 0:
            raise ValueError(f"bit width must be positive, got {width}")
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for i in range(width - 1, -1, -1):
            self._bits.append((value >> i) & 1)

    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._bits)

    def to_bytes(self) -> bytes:
        """The written bits padded with zeros to a whole byte count."""
        out = bytearray()
        acc = 0
        n = 0
        for bit in self._bits:
            acc = (acc << 1) | bit
            n += 1
            if n == 8:
                out.append(acc)
                acc = 0
                n = 0
        if n:
            out.append(acc << (8 - n))
        return bytes(out)


class BitReader:
    """Reads values most-significant-bit first from a byte string."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def read(self, width: int) -> int:
        """Read the next ``width`` bits as an unsigned integer.

        Raises:
            ValueError: when reading past the end of the data.
        """
        if width <= 0:
            raise ValueError(f"bit width must be positive, got {width}")
        if self._pos + width > len(self._data) * 8:
            raise ValueError("bit stream exhausted")
        value = 0
        for _ in range(width):
            byte = self._data[self._pos // 8]
            bit = (byte >> (7 - self._pos % 8)) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value

    def bits_remaining(self) -> int:
        """Bits not yet consumed (includes any padding)."""
        return len(self._data) * 8 - self._pos


def bits_needed(max_value: int) -> int:
    """Bits required to represent values in ``[0, max_value]``."""
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    return max(1, max_value.bit_length())
