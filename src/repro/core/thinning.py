"""Overhead reduction: stateless thinning of conduit rebroadcasts.

§4 measures a 13x transmission overhead "because currently all the APs
within a building rebroadcast, and there are other inefficiencies; we
are confident that this overhead can be reduced".  This module
implements the natural stateless reduction: an AP in a conduit
building rebroadcasts only when a **deterministic per-(AP, message)
hash** falls below a thinning probability ``p``.

Key properties:

- *stateless*: the decision needs only the AP's own id, the message id
  from the header, and ``p`` — no coordination, no neighbour state;
- *deterministic*: retransmissions of the same message pick the same
  rebroadcasters (no oscillation), while different messages sample
  different subsets (no persistent dead spots);
- *building-aware*: the first AP population is still selected by the
  paper's building-in-conduit rule, so the geometry guarantees are
  untouched — only the redundancy within each building is thinned.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..city import City
from ..geometry import ConduitPath
from ..mesh import AccessPoint


def thinning_hash(ap_id: int, message_id: int) -> float:
    """A uniform [0, 1) hash shared by every honest implementation."""
    digest = hashlib.sha256(
        ap_id.to_bytes(8, "big") + message_id.to_bytes(8, "big")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass
class ThinnedConduitPolicy:
    """Conduit membership with per-message probabilistic thinning.

    Args:
        conduits: the packet's decoded conduit chain.
        city: the shared map.
        message_id: the packet's message id (seeds the hash).
        p: rebroadcast probability for conduit-building APs.  ``p=1``
            is exactly the paper's behaviour.
    """

    conduits: ConduitPath
    city: City
    message_id: int
    p: float
    _memo: dict[int, bool] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.p <= 1:
            raise ValueError(f"thinning probability must be in (0, 1], got {self.p}")

    def should_rebroadcast(self, ap: AccessPoint) -> bool:
        verdict = self._memo.get(ap.building_id)
        if verdict is None:
            footprint = self.city.building(ap.building_id).polygon
            verdict = self.conduits.intersects_polygon(footprint)
            self._memo[ap.building_id] = verdict
        if not verdict:
            return False
        if self.p >= 1.0:
            return True
        return thinning_hash(ap.id, self.message_id) < self.p
