"""CityMesh packets and the compressed-route header codec.

The header carries everything an AP needs to make its stateless
rebroadcast decision: the conduit width and the waypoint building ids.
Building ids are packed at the exact bit width needed for the city's id
space, which is what makes the paper's 175-bit median headers possible.

Header layout (bit-aligned):

====  =====================================================
bits  field
====  =====================================================
4     version (currently 1)
8     conduit width in metres (1-255)
6     bits-per-building-id minus 1 (so ids may use 1-64 bits)
8     waypoint count (1-255)
k*n   waypoint building ids, n = waypoint count, k = id bits
64    message id
====  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from .bits import BitReader, BitWriter, bits_needed

HEADER_VERSION = 1
MAX_WAYPOINTS = 255
_FIXED_HEADER_BITS = 4 + 8 + 6 + 8 + 64


class HeaderError(ValueError):
    """Raised when a header cannot be encoded or decoded."""


@dataclass(frozen=True)
class PacketHeader:
    """The routing header of a CityMesh packet."""

    waypoints: tuple[int, ...]
    width_m: int
    message_id: int
    id_bits: int

    @property
    def source_building(self) -> int:
        return self.waypoints[0]

    @property
    def destination_building(self) -> int:
        return self.waypoints[-1]

    def route_bits(self) -> int:
        """Bits spent on the compressed source route itself.

        This is the quantity §4 reports (median 175 / 90%ile 225 bits):
        the waypoint ids plus the count and id-width fields needed to
        delimit them.
        """
        return 8 + 6 + self.id_bits * len(self.waypoints)

    def total_bits(self) -> int:
        """Full header size in bits, including version/width/message id."""
        return _FIXED_HEADER_BITS + self.id_bits * len(self.waypoints)


def encode_header(
    waypoints: list[int] | tuple[int, ...],
    width_m: float,
    message_id: int,
    max_building_id: int,
) -> bytes:
    """Encode a routing header.

    Args:
        waypoints: waypoint building ids, source first, destination last.
        width_m: conduit width; rounded to whole metres for encoding.
        message_id: 64-bit message identifier (for duplicate detection).
        max_building_id: the largest building id in the city map —
            fixes the per-id bit width both sides derive from their map.

    Raises:
        HeaderError: on empty or oversized waypoint lists, ids outside
            the map's id space, or out-of-range width.
    """
    if not waypoints:
        raise HeaderError("a header needs at least one waypoint")
    if len(waypoints) > MAX_WAYPOINTS:
        raise HeaderError(f"too many waypoints ({len(waypoints)} > {MAX_WAYPOINTS})")
    width_int = round(width_m)
    if not 1 <= width_int <= 255:
        raise HeaderError(f"conduit width {width_m} m not encodable (1-255)")
    if not 0 <= message_id < (1 << 64):
        raise HeaderError("message id must fit in 64 bits")
    id_bits = bits_needed(max_building_id)
    if id_bits > 64:
        raise HeaderError("building id space exceeds 64 bits")
    writer = BitWriter()
    writer.write(HEADER_VERSION, 4)
    writer.write(width_int, 8)
    writer.write(id_bits - 1, 6)
    writer.write(len(waypoints), 8)
    for wp in waypoints:
        if wp < 0 or wp > max_building_id:
            raise HeaderError(
                f"waypoint id {wp} outside map id space [0, {max_building_id}]"
            )
        writer.write(wp, id_bits)
    writer.write(message_id, 64)
    return writer.to_bytes()


def decode_header(data: bytes) -> PacketHeader:
    """Decode a routing header produced by :func:`encode_header`.

    Raises:
        HeaderError: on truncated data or an unknown version.
    """
    reader = BitReader(data)
    try:
        version = reader.read(4)
        if version != HEADER_VERSION:
            raise HeaderError(f"unsupported header version {version}")
        width = reader.read(8)
        id_bits = reader.read(6) + 1
        count = reader.read(8)
        if count == 0:
            raise HeaderError("header contains zero waypoints")
        waypoints = tuple(reader.read(id_bits) for _ in range(count))
        message_id = reader.read(64)
    except ValueError as exc:
        raise HeaderError(f"truncated header: {exc}") from exc
    return PacketHeader(
        waypoints=waypoints, width_m=width, message_id=message_id, id_bits=id_bits
    )


@dataclass(frozen=True)
class Packet:
    """A full CityMesh packet: routing header plus opaque payload."""

    header: PacketHeader
    payload: bytes = b""

    @property
    def message_id(self) -> int:
        return self.header.message_id

    def size_bits(self) -> int:
        """Total over-the-air size in bits."""
        return self.header.total_bits() + 8 * len(self.payload)
