"""Route compression: buildings -> waypoints (the Figure 4 algorithm).

The planner returns an explicit building route; encoding every id would
blow up the header and over-constrain forwarding.  The compression
algorithm instead selects *waypoint buildings*: starting at the first
building, it extends a conduit of width ``W`` to the latest building in
the route such that the conduit still covers every intermediate
building it skips, then repeats from there.  The conduits traced
between consecutive waypoints become the packet's forwarding region.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import ConduitPath, ConduitRect, Point

DEFAULT_CONDUIT_WIDTH = 50.0  # metres; "comparable to the Wi-Fi range" (§3)


@dataclass(frozen=True)
class CompressedRoute:
    """The outcome of route compression.

    Attributes:
        waypoints: indices into the original route marking the
            waypoint buildings (always includes first and last).
        width: conduit width W in metres.
    """

    waypoints: tuple[int, ...]
    width: float

    @property
    def waypoint_count(self) -> int:
        return len(self.waypoints)


def compress_route(centroids: list[Point], width: float = DEFAULT_CONDUIT_WIDTH) -> CompressedRoute:
    """Select waypoint buildings along a route of building centroids.

    Implements §3 step 2: place the starting edge of the first conduit
    on the first building's centroid, find the *latest* building whose
    conduit covers all preceding buildings in the route, make it a
    waypoint, and repeat until the destination.

    Args:
        centroids: centroid of each building along the planned route.
        width: conduit width W (should be comparable to the Wi-Fi
            transmission range).

    Returns:
        The selected waypoint indices (first and last always included).

    Raises:
        ValueError: for an empty route or non-positive width.
    """
    if not centroids:
        raise ValueError("cannot compress an empty route")
    if width <= 0:
        raise ValueError(f"conduit width must be positive, got {width}")
    n = len(centroids)
    if n == 1:
        return CompressedRoute(waypoints=(0,), width=width)

    waypoints = [0]
    current = 0
    while current < n - 1:
        # Find the latest j > current whose conduit covers everything
        # in between.
        chosen = current + 1
        for j in range(current + 1, n):
            rect = ConduitRect(centroids[current], centroids[j], width)
            if all(rect.contains(centroids[k]) for k in range(current + 1, j)):
                chosen = j
        waypoints.append(chosen)
        current = chosen
    return CompressedRoute(waypoints=tuple(waypoints), width=width)


def conduits_for_waypoints(
    waypoint_centroids: list[Point], width: float
) -> ConduitPath:
    """Reconstruct the forwarding region from waypoint centroids.

    This is the AP-side operation (§3 step 3): each AP looks the
    waypoint ids up in its own map copy, rebuilds the conduits with the
    predefined width, and checks whether it falls inside.
    """
    return ConduitPath.from_waypoints(waypoint_centroids, width)


def compression_ratio(route_length: int, compressed: CompressedRoute) -> float:
    """How many route buildings each encoded waypoint stands for."""
    if compressed.waypoint_count == 0:
        raise ValueError("compressed route has no waypoints")
    return route_length / compressed.waypoint_count
