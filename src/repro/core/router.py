"""End-to-end building routing: plan, compress, encode, and the
AP-side stateless rebroadcast decision.

``BuildingRouter`` is the sender-side component (§3 step 2): it plans a
route over the building graph, compresses it into waypoints, and emits
an encoded packet header.  ``ConduitMembership`` is the AP-side
component (§3 step 3): given only the header and the AP's own map copy
and position, decide whether to rebroadcast.  No state about other
nodes is ever consulted — that is the paper's core claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..buildgraph import BuildingGraph, LRUCache, NoRouteError, plan_building_route
from ..city import City
from ..geometry import ConduitPath, Point
from ..obs import REGISTRY
from .compression import DEFAULT_CONDUIT_WIDTH, compress_route, conduits_for_waypoints
from .packet import Packet, PacketHeader, decode_header, encode_header


@dataclass(frozen=True)
class RoutePlan:
    """Everything the sender derives for one message."""

    route: tuple[int, ...]
    waypoint_ids: tuple[int, ...]
    conduits: ConduitPath
    header_bytes: bytes
    header: PacketHeader

    @property
    def route_bits(self) -> int:
        """Size of the compressed source route in bits (the §4 metric)."""
        return self.header.route_bits()


class BuildingRouter:
    """Sender-side source routing over the building graph.

    Args:
        city: the shared city map (every node caches the same map).
        graph: a prebuilt building graph; built from ``city`` with
            default parameters when omitted.
        conduit_width: conduit width W in metres (50 in the paper).
        rng: used only to draw message ids; defaults to ``Random(0)``.
        max_building_id: size of the id space used to encode waypoint
            ids.  Defaults to the largest id in ``city``; pass a larger
            value to model a device that caches a whole metropolitan
            map of which the simulated region is only a section (real
            cities have ~10^5 buildings, i.e. ~17-bit ids, which is the
            regime behind the paper's 175-bit median headers).
    """

    def __init__(
        self,
        city: City,
        graph: BuildingGraph | None = None,
        conduit_width: float = DEFAULT_CONDUIT_WIDTH,
        rng: random.Random | None = None,
        max_building_id: int | None = None,
    ):
        if conduit_width <= 0:
            raise ValueError("conduit width must be positive")
        self.city = city
        self.graph = graph if graph is not None else BuildingGraph(city)
        self.conduit_width = conduit_width
        self._rng = rng if rng is not None else random.Random(0)
        local_max = max((b.id for b in city.buildings), default=0)
        if max_building_id is not None and max_building_id < local_max:
            raise ValueError(
                f"max_building_id {max_building_id} smaller than the city's "
                f"largest id {local_max}"
            )
        self._max_building_id = max_building_id if max_building_id is not None else local_max

    def _planner(self):
        """The planning backend: the attached metro hierarchy if any.

        A :class:`~repro.buildgraph.MetroRouter` attached via
        ``attach_hierarchy`` exposes the same ``plan``/``plan_routes``
        surface as the flat graph, so everything downstream (route
        compression, batch planning, scenario replanning) is agnostic
        to which one answered.
        """
        hierarchy = getattr(self.graph, "hierarchy", None)
        return hierarchy if hierarchy is not None else self.graph

    def plan(
        self,
        src_building: int,
        dst_building: int,
        message_id: int | None = None,
    ) -> RoutePlan:
        """Plan, compress, and encode a route between two buildings.

        Raises:
            KeyError: if either building is missing from the graph.
            repro.buildgraph.NoRouteError: if the map predicts no path.
        """
        route = plan_building_route(self._planner(), src_building, dst_building)
        centroids = [self.graph.centroid(b) for b in route]
        compressed = compress_route(centroids, width=self.conduit_width)
        waypoint_ids = tuple(route[i] for i in compressed.waypoints)
        waypoint_centroids = [centroids[i] for i in compressed.waypoints]
        conduits = conduits_for_waypoints(waypoint_centroids, self.conduit_width)
        if message_id is None:
            message_id = self._rng.getrandbits(64)
        header_bytes = encode_header(
            waypoint_ids,
            width_m=self.conduit_width,
            message_id=message_id,
            max_building_id=self._max_building_id,
        )
        return RoutePlan(
            route=tuple(route),
            waypoint_ids=waypoint_ids,
            conduits=conduits,
            header_bytes=header_bytes,
            header=decode_header(header_bytes),
        )

    def make_packet(
        self,
        src_building: int,
        dst_building: int,
        payload: bytes = b"",
        message_id: int | None = None,
    ) -> tuple[Packet, RoutePlan]:
        """Convenience: plan a route and wrap a payload into a packet."""
        plan = self.plan(src_building, dst_building, message_id=message_id)
        return Packet(header=plan.header, payload=payload), plan

    def plan_batch(
        self, pairs: list[tuple[int, int]]
    ) -> dict[tuple[int, int], RoutePlan]:
        """Plan many pairs at once, sharing planner work across them.

        The graph's batched planner runs one single-source Dijkstra
        tree per distinct source and warms the route cache, so the
        per-pair :meth:`plan` calls below hit in O(1).  Unroutable or
        unknown pairs are simply omitted from the result (batch
        callers skip failed pairs rather than abort the sweep).
        """
        batched = getattr(self._planner(), "plan_routes", None)
        if callable(batched):
            batched(pairs)
        plans: dict[tuple[int, int], RoutePlan] = {}
        for src, dst in pairs:
            if (src, dst) in plans:
                continue
            try:
                plans[(src, dst)] = self.plan(src, dst)
            except (NoRouteError, KeyError):
                continue
        return plans


class ConduitMembership:
    """AP-side stateless rebroadcast decision.

    Every AP holds the same city map.  Upon receiving a packet it
    decodes the waypoint ids, looks their centroids up in the map,
    reconstructs the conduits, and rebroadcasts iff its own position
    falls inside any of them.  The reconstruction is cached per
    waypoint tuple because every AP in the mesh sees the same packet;
    the cache is a bounded LRU so a long-lived AP under many distinct
    flows cannot grow without limit.

    When constructed with a ``graph``, the cache is additionally keyed
    off :attr:`BuildingGraph.version`: any mutation (``patch``,
    ``add_link``, ``remove_building``) drops every cached conduit path
    on the next lookup, so a membership check never answers from
    geometry computed against a pre-mutation map.
    """

    DEFAULT_CACHE_SIZE = 4096

    def __init__(
        self,
        city: City,
        cache_size: int = DEFAULT_CACHE_SIZE,
        graph: BuildingGraph | None = None,
    ):
        self.city = city
        self.graph = graph
        self._seen_version = graph.version if graph is not None else 0
        self._cache: LRUCache[tuple[tuple[int, ...], float], ConduitPath] = (
            LRUCache(maxsize=cache_size)
        )

    def conduits_of(self, header: PacketHeader) -> ConduitPath:
        """Reconstruct (or fetch cached) conduits for a header.

        Raises:
            KeyError: if a waypoint id is not in this node's map copy
                (map version skew — the packet cannot be routed here).
        """
        if self.graph is not None and self.graph.version != self._seen_version:
            self._cache.clear()
            self._seen_version = self.graph.version
        key = (header.waypoints, float(header.width_m))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        centroids = [self.city.building(b).centroid() for b in header.waypoints]
        path = conduits_for_waypoints(centroids, float(header.width_m))
        self._cache.put(key, path)
        return path

    def should_rebroadcast(self, header: PacketHeader, position: Point) -> bool:
        """§3 step 3: is this AP inside any conduit of the packet?"""
        return self.conduits_of(header).contains(position)

    def stats(self) -> dict[str, float]:
        """Cache accounting, published to the ``core.conduit_cache``
        gauges so long-running scenarios can watch AP-side memory."""
        out: dict[str, float] = {}
        for k, v in self._cache.counters().items():
            out[f"conduit_cache_{k}"] = v
        approx = self._cache.approx_bytes()
        out["conduit_cache_approx_bytes"] = approx
        REGISTRY.gauge("core.conduit_cache.entries").set(len(self._cache))
        REGISTRY.gauge("core.conduit_cache.approx_bytes").set(approx)
        return out
