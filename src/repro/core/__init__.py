"""CityMesh core: the paper's building-routing contribution.

Route planning over the building graph, Figure-4 route compression,
the bit-exact packet header codec, and the AP-side stateless
rebroadcast decision.
"""

from .bits import BitReader, BitWriter, bits_needed
from .compression import (
    DEFAULT_CONDUIT_WIDTH,
    CompressedRoute,
    compress_route,
    compression_ratio,
    conduits_for_waypoints,
)
from .packet import (
    HEADER_VERSION,
    MAX_WAYPOINTS,
    HeaderError,
    Packet,
    PacketHeader,
    decode_header,
    encode_header,
)
from .router import BuildingRouter, ConduitMembership, RoutePlan
from .thinning import ThinnedConduitPolicy, thinning_hash

__all__ = [
    "BitReader",
    "BitWriter",
    "BuildingRouter",
    "CompressedRoute",
    "ConduitMembership",
    "DEFAULT_CONDUIT_WIDTH",
    "HEADER_VERSION",
    "HeaderError",
    "MAX_WAYPOINTS",
    "Packet",
    "PacketHeader",
    "RoutePlan",
    "ThinnedConduitPolicy",
    "bits_needed",
    "compress_route",
    "compression_ratio",
    "conduits_for_waypoints",
    "decode_header",
    "encode_header",
    "thinning_hash",
]
