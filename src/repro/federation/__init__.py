"""Inter-networking of regional DFNs (§1's inter-region agenda)."""

from .model import Federation, InterRegionLink, Region, make_region
from .transit import TransitLeg, TransitReport, send_interregion

__all__ = [
    "Federation",
    "InterRegionLink",
    "Region",
    "TransitLeg",
    "TransitReport",
    "make_region",
    "send_interregion",
]
