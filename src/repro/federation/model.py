"""Inter-networking DFNs: regions, gateways, and the region graph.

§1 poses: "we pose that DFNs are urban in scope; therefore, how do we
form an inter-network of DFNs across regions?" and asks what role
satellite links should play.  The model here: each urban **region**
runs its own CityMesh; a few buildings per region host **gateways**
(satellite terminals or surviving long-haul fiber) wired to gateways
in other regions.  Inter-region routing is ordinary shortest-path over
the tiny region graph; each leg inside a region is a normal CityMesh
delivery to the gateway's building.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..buildgraph import BuildingGraph
from ..city import City
from ..core import BuildingRouter
from ..mesh import APGraph


@dataclass
class Region:
    """One urban DFN: a city plus its mesh, router, and gateways."""

    name: str
    city: City
    graph: APGraph
    router: BuildingRouter
    gateway_buildings: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        for b in self.gateway_buildings:
            if not self.city.has_building(b):
                raise ValueError(f"gateway building {b} not in region {self.name!r}")

    def add_gateway(self, building_id: int) -> None:
        """Register a building as hosting a long-haul gateway.

        Raises:
            KeyError: if the building is not in this region's map.
        """
        self.city.building(building_id)  # raises KeyError if unknown
        if building_id not in self.gateway_buildings:
            self.gateway_buildings.append(building_id)


@dataclass(frozen=True)
class InterRegionLink:
    """A long-haul link between two specific gateways.

    ``latency_s`` models the satellite/fiber hop; ``kind`` is
    informational ("satellite", "fiber", "microwave").
    """

    region_a: str
    gateway_a: int
    region_b: str
    gateway_b: int
    latency_s: float = 0.6  # GEO-satellite-ish default
    kind: str = "satellite"

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("link latency must be non-negative")
        if self.region_a == self.region_b:
            raise ValueError("inter-region links must join distinct regions")

    def endpoint_in(self, region: str) -> tuple[str, int] | None:
        """(other region, local gateway) if this link touches ``region``."""
        if self.region_a == region:
            return (self.region_b, self.gateway_a)
        if self.region_b == region:
            return (self.region_a, self.gateway_b)
        return None

    def far_gateway(self, from_region: str) -> tuple[str, int]:
        """The (region, gateway building) on the far side.

        Raises:
            ValueError: if the link does not touch ``from_region``.
        """
        if self.region_a == from_region:
            return (self.region_b, self.gateway_b)
        if self.region_b == from_region:
            return (self.region_a, self.gateway_a)
        raise ValueError(f"link does not touch region {from_region!r}")


@dataclass
class Federation:
    """A set of regional DFNs joined by long-haul links."""

    regions: dict[str, Region] = field(default_factory=dict)
    links: list[InterRegionLink] = field(default_factory=list)

    def add_region(self, region: Region) -> None:
        """Register a region.

        Raises:
            ValueError: on a duplicate region name.
        """
        if region.name in self.regions:
            raise ValueError(f"duplicate region name {region.name!r}")
        self.regions[region.name] = region

    def add_link(self, link: InterRegionLink) -> None:
        """Register a long-haul link.

        Raises:
            KeyError: if either region is unknown.
            ValueError: if either endpoint is not a registered gateway.
        """
        for region_name, gateway in (
            (link.region_a, link.gateway_a),
            (link.region_b, link.gateway_b),
        ):
            region = self.regions[region_name]
            if gateway not in region.gateway_buildings:
                raise ValueError(
                    f"building {gateway} is not a gateway of region {region_name!r}"
                )
        self.links.append(link)

    def region_path(self, src_region: str, dst_region: str) -> list[InterRegionLink] | None:
        """The fewest-links path between regions (None if disconnected).

        Raises:
            KeyError: for unknown region names.
        """
        if src_region not in self.regions or dst_region not in self.regions:
            raise KeyError("unknown region name")
        if src_region == dst_region:
            return []
        # BFS over regions, remembering the link used to enter each.
        parent: dict[str, tuple[str, InterRegionLink]] = {}
        queue = deque([src_region])
        seen = {src_region}
        while queue:
            current = queue.popleft()
            for link in self.links:
                touch = link.endpoint_in(current)
                if touch is None:
                    continue
                other, _ = touch
                if other in seen:
                    continue
                parent[other] = (current, link)
                if other == dst_region:
                    path = []
                    node = other
                    while node != src_region:
                        prev, via = parent[node]
                        path.append(via)
                        node = prev
                    return list(reversed(path))
                seen.add(other)
                queue.append(other)
        return None


def make_region(
    name: str,
    city: City,
    graph: APGraph,
    gateway_buildings: list[int],
    building_graph: BuildingGraph | None = None,
) -> Region:
    """Convenience constructor wiring a router for the region."""
    router = BuildingRouter(city, graph=building_graph)
    return Region(
        name=name,
        city=city,
        graph=graph,
        router=router,
        gateway_buildings=list(gateway_buildings),
    )
