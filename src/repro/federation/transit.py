"""Inter-region message transit: CityMesh legs stitched by gateways.

A message from (region A, building x) to (region B, building y) is
delivered as: CityMesh unicast x -> A's gateway, long-haul hop to B's
gateway, CityMesh unicast gateway -> y (with more middle legs when the
region path is longer).  Each intra-region leg is a full event-based
simulation, so regional outages and conduit failures surface here too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..buildgraph import NoRouteError
from ..security import resilient_send
from ..sim import ConduitPolicy, simulate_broadcast
from .model import Federation, Region


@dataclass(frozen=True)
class TransitLeg:
    """One hop of an inter-region delivery."""

    kind: str  # "mesh" or "long-haul"
    region: str
    src_building: int
    dst_building: int
    delivered: bool
    transmissions: int
    latency_s: float


@dataclass
class TransitReport:
    """Outcome of one inter-region delivery."""

    delivered: bool
    legs: list[TransitLeg] = field(default_factory=list)

    @property
    def mesh_transmissions(self) -> int:
        """Total CityMesh broadcasts across all intra-region legs."""
        return sum(leg.transmissions for leg in self.legs if leg.kind == "mesh")

    @property
    def total_latency_s(self) -> float:
        """Accumulated latency across all legs."""
        return sum(leg.latency_s for leg in self.legs)


RETRY_TIMEOUT_S = 2.0  # sender-side retransmission timer per attempt


def _mesh_leg(
    region: Region,
    src_building: int,
    dst_building: int,
    rng: random.Random,
    attempts: int = 3,
) -> TransitLeg:
    """One CityMesh unicast inside a region, with sender retransmission.

    Gateways (and senders) retry a missing end-to-end acknowledgement
    up to ``attempts`` times; rebroadcast jitter re-randomises each
    attempt, so transient conduit failures usually clear.
    """
    if src_building == dst_building:
        return TransitLeg("mesh", region.name, src_building, dst_building, True, 0, 0.0)
    src_aps = region.graph.aps_in_building(src_building)
    if not src_aps:
        return TransitLeg("mesh", region.name, src_building, dst_building, False, 0, 0.0)
    try:
        plan = region.router.plan(src_building, dst_building)
    except (NoRouteError, KeyError):
        return TransitLeg("mesh", region.name, src_building, dst_building, False, 0, 0.0)
    # First shot: the plain conduit broadcast.
    policy = ConduitPolicy(plan.conduits, region.city)
    result = simulate_broadcast(region.graph, src_aps[0], dst_building, policy, rng)
    if result.delivered:
        return TransitLeg(
            kind="mesh",
            region=region.name,
            src_building=src_building,
            dst_building=dst_building,
            delivered=True,
            transmissions=result.transmissions,
            latency_s=result.delivery_time_s or 0.0,
        )
    # Retries widen the conduit and detour the route — the same
    # mitigation gateways need against blackholes works against
    # mispredicted hops (see repro.security.resilient).
    report = resilient_send(
        region.city,
        region.graph,
        region.router,
        src_aps[0],
        dst_building,
        rng,
        compromised=frozenset(),
        max_attempts=max(1, attempts - 1),
    )
    return TransitLeg(
        kind="mesh",
        region=region.name,
        src_building=src_building,
        dst_building=dst_building,
        delivered=report.delivered,
        transmissions=result.transmissions + report.total_transmissions,
        latency_s=RETRY_TIMEOUT_S * report.attempts,
    )


def send_interregion(
    federation: Federation,
    src_region: str,
    src_building: int,
    dst_region: str,
    dst_building: int,
    rng: random.Random,
) -> TransitReport:
    """Deliver one message across the federation.

    Raises:
        KeyError: for unknown region names.
    """
    report = TransitReport(delivered=False)
    path = federation.region_path(src_region, dst_region)
    if path is None:
        return report  # regions disconnected: nothing to even attempt

    current_region = federation.regions[src_region]
    current_building = src_building
    for link in path:
        _, local_gateway = link.endpoint_in(current_region.name)  # type: ignore[misc]
        leg = _mesh_leg(current_region, current_building, local_gateway, rng)
        report.legs.append(leg)
        if not leg.delivered:
            return report
        far_region_name, far_gateway = link.far_gateway(current_region.name)
        report.legs.append(
            TransitLeg(
                kind="long-haul",
                region=f"{current_region.name}->{far_region_name}",
                src_building=local_gateway,
                dst_building=far_gateway,
                delivered=True,
                transmissions=0,
                latency_s=link.latency_s,
            )
        )
        current_region = federation.regions[far_region_name]
        current_building = far_gateway

    final = _mesh_leg(current_region, current_building, dst_building, rng)
    report.legs.append(final)
    report.delivered = final.delivered
    return report
