"""Fallback-period applications (§1's application-delivery agenda):
emergency broadcast, geospatial messaging, offline payments, and
decentralized name resolution."""

from .directory import Directory, DirectoryNode, DirectoryRecord, rendezvous_building
from .emergency import Alert, BroadcastCoverage, RegionPolicy, broadcast_alert
from .geocast import GeocastPolicy, GeocastResult, geocast
from .payments import Cheque, Ledger, PaymentError, Wallet

__all__ = [
    "Alert",
    "BroadcastCoverage",
    "Cheque",
    "Directory",
    "DirectoryNode",
    "DirectoryRecord",
    "GeocastPolicy",
    "GeocastResult",
    "Ledger",
    "PaymentError",
    "RegionPolicy",
    "Wallet",
    "broadcast_alert",
    "geocast",
    "rendezvous_building",
]
