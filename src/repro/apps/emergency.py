"""Emergency broadcast: one-to-all dissemination during an outage.

§2 lists "look[ing] for emergency updates" among the disaster uses a
DFN must support.  An emergency broadcast inverts CityMesh's unicast
pattern: the authority floods a signed alert to *every* AP, optionally
scoped to a geographic region (evacuation zones).  Scoped alerts reuse
the conduit machinery — membership is "inside the alert region" rather
than "inside a route conduit".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..city import City
from ..geometry import Polygon
from ..mesh import APGraph, AccessPoint
from ..postbox import KeyPair, PublicKey, verify
from ..sim import SimParams, simulate_broadcast


@dataclass(frozen=True)
class Alert:
    """A signed emergency alert.

    ``region`` of None means city-wide; otherwise only APs whose
    building intersects the region rebroadcast (and only people there
    are expected to care).
    """

    body: bytes
    issuer: PublicKey
    signature: bytes
    region: Polygon | None = None

    @staticmethod
    def issue(
        issuer: KeyPair, body: bytes, region: Polygon | None = None
    ) -> "Alert":
        """Create and sign an alert."""
        return Alert(
            body=body,
            issuer=issuer.public,
            signature=issuer.sign(body),
            region=region,
        )

    def is_authentic(self) -> bool:
        """Verify the issuer's signature (no CA required: the issuer's
        key is pre-distributed like any postbox address)."""
        return verify(self.issuer, self.body, self.signature)


@dataclass
class RegionPolicy:
    """Rebroadcast iff the AP's building intersects the alert region.

    City-wide alerts (region None) degrade to flooding, which is the
    correct emergency behaviour.
    """

    city: City
    region: Polygon | None
    _memo: dict[int, bool] | None = None

    def should_rebroadcast(self, ap: AccessPoint) -> bool:
        if self.region is None:
            return True
        if self._memo is None:
            self._memo = {}
        verdict = self._memo.get(ap.building_id)
        if verdict is None:
            footprint = self.city.building(ap.building_id).polygon
            verdict = _polygons_intersect(footprint, self.region)
            self._memo[ap.building_id] = verdict
        return verdict


def _polygons_intersect(a: Polygon, b: Polygon) -> bool:
    if a.contains(b.vertices[0]) or b.contains(a.vertices[0]):
        return True
    return any(ea.intersects(eb) for ea in a.edges() for eb in b.edges())


@dataclass(frozen=True)
class BroadcastCoverage:
    """How far an alert reached."""

    delivered_buildings: int
    target_buildings: int
    transmissions: int
    heard_aps: int

    @property
    def coverage(self) -> float:
        """Fraction of target buildings with at least one alerted AP."""
        if self.target_buildings == 0:
            return 0.0
        return self.delivered_buildings / self.target_buildings


def broadcast_alert(
    city: City,
    graph: APGraph,
    alert: Alert,
    origin_ap: int,
    rng: random.Random,
    params: SimParams | None = None,
) -> BroadcastCoverage:
    """Disseminate an alert and measure building-level coverage.

    Raises:
        ValueError: for an alert whose signature does not verify —
            honest APs refuse to propagate unauthenticated alerts.
    """
    if not alert.is_authentic():
        raise ValueError("alert signature invalid: refusing to propagate")
    policy = RegionPolicy(city=city, region=alert.region)
    # Destination building 0 never matches: we want the full spread.
    result = simulate_broadcast(
        graph, origin_ap, dest_building=-1, policy=policy, rng=rng, params=params
    )
    heard_buildings = {graph.aps[ap].building_id for ap in result.heard}
    if alert.region is None:
        targets = [b for b in city.buildings if graph.aps_in_building(b.id)]
    else:
        targets = [
            b
            for b in city.buildings
            if graph.aps_in_building(b.id)
            and _polygons_intersect(b.polygon, alert.region)
        ]
    delivered = sum(1 for b in targets if b.id in heard_buildings)
    return BroadcastCoverage(
        delivered_buildings=delivered,
        target_buildings=len(targets),
        transmissions=result.transmissions,
        heard_aps=len(result.heard),
    )
