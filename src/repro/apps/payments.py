"""Offline payments: signed cheques with postbox-side reconciliation.

§2 lists "access to a banking application for money" among disaster
needs; §1 requires it to work "without the need for real-time access"
to central servers.  The scheme here is deliberately minimal and
matches what a fallback network can actually guarantee:

- a payer issues a **cheque**: a signed (payer, payee, amount, serial)
  tuple the payee can hold and later deposit,
- double-spends are *detectable, not preventable*: each payer's serial
  numbers must be strictly increasing, so a payer who re-uses or
  back-dates a serial is exposed the moment any two of their cheques
  meet at a reconciliation point (a postbox or, post-outage, the bank),
- a :class:`Ledger` performs that reconciliation and tracks balances.

This is the offline-payments trust model used by real disconnected
systems (detect-and-punish), not a consensus protocol — a DFN cannot
run city-wide consensus and the paper does not ask for one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..postbox import KeyPair, PublicKey, name_of, verify


class PaymentError(ValueError):
    """Raised for malformed or dishonest payment artefacts."""


@dataclass(frozen=True)
class Cheque:
    """A signed offline payment promise."""

    payer: PublicKey
    payee_name: str
    amount_cents: int
    serial: int
    signature: bytes

    @property
    def payer_name(self) -> str:
        return name_of(self.payer)

    def signed_body(self) -> bytes:
        """The byte string the signature covers."""
        return _cheque_body(self.payer, self.payee_name, self.amount_cents, self.serial)

    def is_authentic(self) -> bool:
        """Whether the payer's signature verifies."""
        return verify(self.payer, self.signed_body(), self.signature)


def _cheque_body(payer: PublicKey, payee_name: str, amount_cents: int, serial: int) -> bytes:
    return b"|".join(
        [
            b"citymesh-cheque-v1",
            payer.to_bytes(),
            payee_name.encode(),
            str(amount_cents).encode(),
            str(serial).encode(),
        ]
    )


@dataclass
class Wallet:
    """A participant's payment identity: keys plus a serial counter."""

    keypair: KeyPair
    next_serial: int = 1

    @property
    def name(self) -> str:
        return name_of(self.keypair.public)

    def write_cheque(self, payee_name: str, amount_cents: int) -> Cheque:
        """Issue a cheque to a payee (by self-certifying name).

        Raises:
            PaymentError: for non-positive amounts.
        """
        if amount_cents <= 0:
            raise PaymentError("cheque amount must be positive")
        serial = self.next_serial
        self.next_serial += 1
        body = _cheque_body(self.keypair.public, payee_name, amount_cents, serial)
        return Cheque(
            payer=self.keypair.public,
            payee_name=payee_name,
            amount_cents=amount_cents,
            serial=serial,
            signature=self.keypair.sign(body),
        )

    def double_spend(self, payee_name: str, amount_cents: int, serial: int) -> Cheque:
        """Forge a cheque reusing an old serial (for testing detection)."""
        body = _cheque_body(self.keypair.public, payee_name, amount_cents, serial)
        return Cheque(
            payer=self.keypair.public,
            payee_name=payee_name,
            amount_cents=amount_cents,
            serial=serial,
            signature=self.keypair.sign(body),
        )


@dataclass
class Ledger:
    """A reconciliation point: accepts deposits, detects double-spends.

    Balances may go negative — the ledger records what happened; debt
    collection is out of band (§1's detect-and-punish model).
    """

    balances: dict[str, int] = field(default_factory=dict)
    _seen_serials: dict[str, dict[int, Cheque]] = field(default_factory=dict)
    flagged: set[str] = field(default_factory=set)

    def deposit(self, cheque: Cheque) -> bool:
        """Deposit a cheque.

        Returns True when credited; False when rejected (bad signature
        or a detected double-spend, which also flags the payer).

        The *first* use of a serial is honoured even if the payer is
        later flagged — honest payees who accepted a cheque in good
        faith keep their money; the cheat is the one punished.
        """
        if not cheque.is_authentic():
            return False
        payer = cheque.payer_name
        serials = self._seen_serials.setdefault(payer, {})
        existing = serials.get(cheque.serial)
        if existing is not None:
            if existing != cheque:
                # Same serial, different content: proof of double-spend.
                self.flagged.add(payer)
            return False
        serials[cheque.serial] = cheque
        self.balances[payer] = self.balances.get(payer, 0) - cheque.amount_cents
        self.balances[cheque.payee_name] = (
            self.balances.get(cheque.payee_name, 0) + cheque.amount_cents
        )
        return True

    def merge(self, other: "Ledger") -> None:
        """Reconcile with another ledger (e.g. another postbox's).

        Deposits every cheque the other ledger has seen; double-spends
        that were invisible to each ledger alone surface here.
        """
        for serials in other._seen_serials.values():
            for cheque in serials.values():
                self.deposit(cheque)
        self.flagged |= other.flagged

    def balance_of(self, name: str) -> int:
        """Net cents for a participant (0 if never seen)."""
        return self.balances.get(name, 0)

    def is_flagged(self, name: str) -> bool:
        """Whether a participant has a proven double-spend."""
        return name in self.flagged
