"""Decentralized name resolution: a DNS stand-in for fallback periods.

§1 asks "what features are required to enable existing applications to
recover from lack of access to cloud servers and Internet services
(e.g., DNS)".  The postbox layer already removes the CA; this module
removes the directory: a *rendezvous* scheme maps any self-certifying
name to a deterministic home building, where a directory record
(name -> postbox address, signed by the name's own key) can be stored
and queried.  Every node computes the same mapping from the shared
city map, so lookups need no coordination — just one CityMesh unicast
to the rendezvous building.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..city import City
from ..postbox import KeyPair, PostboxAddress, verify


def rendezvous_building(city: City, name: str, replicas: int = 1) -> list[int]:
    """The building(s) responsible for storing a name's record.

    Uses highest-random-weight (rendezvous) hashing over building ids,
    so every node with the same map picks the same buildings, and the
    assignment survives incremental map changes with minimal churn.

    Raises:
        ValueError: for an empty city or non-positive replica count.
    """
    if replicas < 1:
        raise ValueError("need at least one replica")
    if not city.buildings:
        raise ValueError("cannot compute rendezvous in an empty city")
    scored = sorted(
        city.buildings,
        key=lambda b: hashlib.sha256(
            f"{name}|{b.id}".encode()
        ).digest(),
        reverse=True,
    )
    return [b.id for b in scored[:replicas]]


@dataclass(frozen=True)
class DirectoryRecord:
    """A signed binding: name -> current postbox address."""

    address: PostboxAddress
    sequence: int
    signature: bytes

    def signed_body(self) -> bytes:
        return b"citymesh-dir-v1|" + self.address.to_bytes() + b"|" + str(self.sequence).encode()

    def is_authentic(self) -> bool:
        """Self-certifying check: signed by the key the name hashes to."""
        return verify(self.address.public_key, self.signed_body(), self.signature)

    @staticmethod
    def create(owner: KeyPair, address: PostboxAddress, sequence: int) -> "DirectoryRecord":
        """Sign a binding with the owner's key.

        Raises:
            ValueError: if the address does not belong to the owner's key.
        """
        if address.public_key != owner.public:
            raise ValueError("address key does not match the signing key")
        body = b"citymesh-dir-v1|" + address.to_bytes() + b"|" + str(sequence).encode()
        return DirectoryRecord(address=address, sequence=sequence, signature=owner.sign(body))


@dataclass
class DirectoryNode:
    """The directory store running at one rendezvous building's AP."""

    building_id: int
    _records: dict[str, DirectoryRecord] = field(default_factory=dict)

    def publish(self, record: DirectoryRecord) -> bool:
        """Store a record.

        Rejects forged records and stale sequence numbers (an attacker
        cannot roll a victim's postbox back to an old building).
        """
        if not record.is_authentic():
            return False
        name = record.address.name
        current = self._records.get(name)
        if current is not None and current.sequence >= record.sequence:
            return False
        self._records[name] = record
        return True

    def lookup(self, name: str) -> DirectoryRecord | None:
        """The freshest known record for a name, if any."""
        return self._records.get(name)

    def record_count(self) -> int:
        """Number of names stored here."""
        return len(self._records)


@dataclass
class Directory:
    """The city-wide directory: rendezvous mapping plus per-building nodes.

    This object simulates the aggregate behaviour; in a deployment the
    ``DirectoryNode``s live on the rendezvous buildings' APs and are
    reached via ordinary CityMesh unicast.
    """

    city: City
    replicas: int = 2
    _nodes: dict[int, DirectoryNode] = field(default_factory=dict)

    def _node(self, building_id: int) -> DirectoryNode:
        node = self._nodes.get(building_id)
        if node is None:
            node = DirectoryNode(building_id=building_id)
            self._nodes[building_id] = node
        return node

    def publish(self, record: DirectoryRecord) -> list[int]:
        """Publish to every replica; returns the buildings that stored it."""
        stored = []
        for building_id in rendezvous_building(
            self.city, record.address.name, self.replicas
        ):
            if self._node(building_id).publish(record):
                stored.append(building_id)
        return stored

    def lookup(self, name: str) -> DirectoryRecord | None:
        """Query replicas in rendezvous order; freshest record wins."""
        best: DirectoryRecord | None = None
        for building_id in rendezvous_building(self.city, name, self.replicas):
            record = self._node(building_id).lookup(name)
            if record is not None and (best is None or record.sequence > best.sequence):
                best = record
        return best

    def record_count(self) -> int:
        """Total records stored across every rendezvous node (replicas
        of one name count once per node holding them)."""
        return sum(node.record_count() for node in self._nodes.values())
