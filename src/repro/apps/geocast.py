"""Geospatial messaging (geocast): deliver to a place, not a person.

§1 lists "geospatial messaging" among the applications a DFN should
re-enable — e.g. "anyone near the shelter on 5th street".  CityMesh
makes this natural: the sender plans a building route to the building
nearest the target point, and the *last* conduit is replaced by a
delivery disc of radius R around the target.  APs inside the disc both
rebroadcast and deliver to their attached users.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..buildgraph import NoRouteError
from ..city import City
from ..core import BuildingRouter
from ..geometry import ConduitPath, ConduitRect, Point
from ..mesh import APGraph, AccessPoint
from ..sim import SimParams, simulate_broadcast


@dataclass
class GeocastPolicy:
    """Rebroadcast iff inside the route conduits or the delivery disc."""

    city: City
    conduits: ConduitPath
    target: Point
    radius: float
    _memo: dict[int, bool] | None = None

    def should_rebroadcast(self, ap: AccessPoint) -> bool:
        if self._memo is None:
            self._memo = {}
        verdict = self._memo.get(ap.building_id)
        if verdict is None:
            building = self.city.building(ap.building_id)
            verdict = (
                building.polygon.distance_to_point(self.target) <= self.radius
                or self.conduits.intersects_polygon(building.polygon)
            )
            self._memo[ap.building_id] = verdict
        return verdict


@dataclass(frozen=True)
class GeocastResult:
    """Outcome of one geocast."""

    delivered: bool
    covered_buildings: int
    target_buildings: int
    transmissions: int

    @property
    def coverage(self) -> float:
        """Fraction of in-disc buildings that heard the message."""
        if self.target_buildings == 0:
            return 0.0
        return self.covered_buildings / self.target_buildings


def geocast(
    city: City,
    graph: APGraph,
    router: BuildingRouter,
    source_building: int,
    target: Point,
    radius: float,
    rng: random.Random,
    params: SimParams | None = None,
) -> GeocastResult:
    """Send a message to every building within ``radius`` of ``target``.

    Args:
        city: shared map.
        graph: ground-truth AP mesh.
        router: the sender's router (provides graph + conduit width).
        source_building: where the sender is.
        target: geographic destination point.
        radius: delivery disc radius in metres.
        rng: jitter randomness.
        params: simulation knobs.

    Raises:
        ValueError: for a non-positive radius, or a target with no
            mapped building anywhere near it.
    """
    if radius <= 0:
        raise ValueError("geocast radius must be positive")
    anchor = city.nearest_building(target)
    if anchor is None:
        raise ValueError("no building anywhere near the geocast target")
    try:
        plan = router.plan(source_building, anchor.id)
        conduits = plan.conduits
    except (NoRouteError, KeyError):
        # No predicted route: fall back to a degenerate conduit at the
        # source so at least local neighbours hear it.
        centroid = city.building(source_building).centroid()
        conduits = ConduitPath([ConduitRect(centroid, centroid, router.conduit_width)])

    targets = [
        b
        for b in city.buildings
        if graph.aps_in_building(b.id)
        and b.polygon.distance_to_point(target) <= radius
    ]
    policy = GeocastPolicy(city=city, conduits=conduits, target=target, radius=radius)
    src_aps = graph.aps_in_building(source_building)
    if not src_aps:
        return GeocastResult(False, 0, len(targets), 0)
    result = simulate_broadcast(
        graph, src_aps[0], dest_building=-1, policy=policy, rng=rng, params=params
    )
    heard_buildings = {graph.aps[ap].building_id for ap in result.heard}
    covered = sum(1 for b in targets if b.id in heard_buildings)
    return GeocastResult(
        delivered=covered > 0,
        covered_buildings=covered,
        target_buildings=len(targets),
        transmissions=result.transmissions,
    )
