"""Beacon scanning: turning trajectories into measurement records.

Each measurement is what the paper's Pineapple / TP-Link rig recorded:
a GPS location plus the list of BSSIDs whose beacon frames were heard
there.  Detection follows the :class:`~repro.sim.radio.FadingDetection`
model — reliable close in, probabilistic out to a maximum range, which
is what makes per-AP location *spread* (Fig 1b) meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..geometry import GridIndex, Point
from ..mesh import AccessPoint
from ..sim import FadingDetection
from .trajectory import Trajectory


def mac_address(ap_id: int) -> str:
    """A synthetic locally-administered BSSID for an AP id.

    Deterministic and collision-free for ids below 2^24; the leading
    ``02:`` octet marks the address as locally administered.
    """
    if not 0 <= ap_id < (1 << 24):
        raise ValueError(f"AP id {ap_id} outside the 24-bit BSSID pool")
    return "02:c1:70:{:02x}:{:02x}:{:02x}".format(
        (ap_id >> 16) & 0xFF, (ap_id >> 8) & 0xFF, ap_id & 0xFF
    )


@dataclass(frozen=True)
class Scan:
    """One measurement: a location, a timestamp, and the BSSIDs heard."""

    index: int
    time_s: float
    position: Point
    heard: frozenset[int]

    @property
    def mac_count(self) -> int:
        """Number of distinct MAC addresses seen in this measurement."""
        return len(self.heard)


@dataclass
class ScanDataset:
    """All measurements from one survey area."""

    area: str
    scans: list[Scan]
    ap_count: int

    def measurement_count(self) -> int:
        """Table 1's '# Measurements' column."""
        return len(self.scans)

    def unique_aps(self) -> set[int]:
        """Ids of all APs heard at least once."""
        seen: set[int] = set()
        for scan in self.scans:
            seen |= scan.heard
        return seen

    def unique_ap_count(self) -> int:
        """Table 1's '# Unique APs' column."""
        return len(self.unique_aps())


def run_survey(
    area: str,
    aps: list[AccessPoint],
    trajectory: Trajectory,
    detection: FadingDetection,
    rng: random.Random,
    rate_hz: float = 0.3,
) -> ScanDataset:
    """Walk a trajectory and record beacon scans.

    Args:
        area: dataset label ("downtown", "campus", …).
        aps: ground-truth APs of the surveyed area.
        trajectory: the survey path.
        detection: radio detection model (beacons are heard much
            farther than usable data range).
        rng: randomness for per-scan detection sampling.
        rate_hz: scan rate; the paper used 0.2-0.4 Hz.
    """
    index: GridIndex[int] = GridIndex(cell_size=max(detection.max_range, 1.0))
    positions = {ap.id: ap.position for ap in aps}
    for ap in aps:
        index.insert(ap.id, ap.position)
    scans: list[Scan] = []
    for i, (t, pos) in enumerate(trajectory.sample(rate_hz)):
        heard = frozenset(
            ap_id
            for ap_id in index.query_radius(pos, detection.max_range)
            if detection.detects(pos, positions[ap_id], rng)
        )
        scans.append(Scan(index=i, time_s=t, position=pos, heard=heard))
    return ScanDataset(area=area, scans=scans, ap_count=len(aps))
