"""The four-area war-driving study of §2 (Table 1, Figures 1-2).

The paper surveyed downtown Boston, the MIT campus, a residential
area, and the Charles river banks.  We survey the synthetic analogues:
a downtown grid, the campus preset, the residential preset, and a
river city walked along both banks.  Radio detection parameters differ
per area (open water carries beacons much farther than an urban
canyon), which is what produces the paper's spread ordering
(campus smallest, river largest).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..city import City, campus, grid_downtown, residential, river_city
from ..geometry import Point
from ..mesh import place_aps
from ..sim import FadingDetection
from .scanner import ScanDataset, run_survey
from .trajectory import Trajectory, grid_walk, line_walk, random_walk


@dataclass(frozen=True)
class AreaSpec:
    """Everything needed to survey one area."""

    name: str
    city: City
    trajectory: Trajectory
    detection: FadingDetection
    ap_density: float
    rate_hz: float


def _downtown_spec(seed: int) -> AreaSpec:
    city = grid_downtown(seed=seed, blocks_x=10, blocks_y=10, name="downtown")
    min_x, min_y, max_x, max_y = city.bounds()
    pitch = 104.0  # walk every street of the 90+14 m grid
    trajectory = grid_walk(min_x - 7, min_y - 7, max_x + 7, max_y + 7, pitch)
    return AreaSpec(
        name="downtown",
        city=city,
        trajectory=trajectory,
        # Dense commercial deployments beacon on many BSSIDs: the
        # *effective* beacon density is far above the routed-AP density.
        ap_density=1.0 / 26.0,
        detection=FadingDetection(reliable_range=30.0, max_range=85.0),
        rate_hz=0.35,
    )


def _campus_spec(seed: int) -> AreaSpec:
    city = campus(seed=seed, name="campus")
    min_x, min_y, max_x, max_y = city.bounds()
    extent = max(max_x - min_x, max_y - min_y)
    rng = random.Random(seed + 1)
    trajectory = random_walk(
        Point((min_x + max_x) / 2, (min_y + max_y) / 2), extent, legs=20, rng=rng
    )
    return AreaSpec(
        name="campus",
        city=city,
        trajectory=trajectory,
        # Institutional networks: fewer, managed radios deep in thick
        # buildings, heard over a short range only.
        ap_density=1.0 / 10.0,
        detection=FadingDetection(reliable_range=12.0, max_range=50.0),
        rate_hz=0.3,
    )


def _residential_spec(seed: int) -> AreaSpec:
    city = residential(seed=seed, blocks_x=6, blocks_y=6, name="residential")
    min_x, min_y, max_x, max_y = city.bounds()
    trajectory = grid_walk(min_x, min_y, max_x, max_y, street_pitch=134.0 * 2)
    return AreaSpec(
        name="residential",
        city=city,
        trajectory=trajectory,
        # Every household runs an AP (often several BSSIDs), but houses
        # are small: high count per area, modest per scan.
        ap_density=1.0 / 18.0,
        detection=FadingDetection(reliable_range=25.0, max_range=95.0),
        rate_hz=0.25,
    )


def _river_spec(seed: int) -> AreaSpec:
    city = river_city(seed=seed, bridges=0, blocks_x=14, blocks_y=6, name="river")
    min_x, min_y, max_x, max_y = city.bounds()
    mid_y = (min_y + max_y) / 2.0
    # Walk along both banks (the paper biked the Charles river banks);
    # the river itself is 150 m wide, so the far bank's APs are heard
    # only thanks to open-water propagation.
    north = line_walk(Point(min_x, mid_y + 85), Point(max_x, mid_y + 85))
    south = line_walk(Point(max_x, mid_y - 85), Point(min_x, mid_y - 85))
    trajectory = Trajectory(north.waypoints + south.waypoints, speed_mps=1.7)  # bike
    return AreaSpec(
        name="river",
        city=city,
        trajectory=trajectory,
        ap_density=1.0 / 105.0,
        detection=FadingDetection(reliable_range=50.0, max_range=150.0),
        rate_hz=0.3,
    )


_AREA_BUILDERS = {
    "downtown": _downtown_spec,
    "campus": _campus_spec,
    "residential": _residential_spec,
    "river": _river_spec,
}

AREA_NAMES = tuple(_AREA_BUILDERS)


def area_specs(seed: int = 0) -> list[AreaSpec]:
    """The four §2 survey areas in Table 1 order."""
    return [builder(seed) for builder in _AREA_BUILDERS.values()]


def _area_seed(seed: int, name: str) -> int:
    """Stable per-area RNG seed (``hash()`` is randomised per process,
    which would make parallel surveys worker-dependent)."""
    digest = hashlib.blake2b(f"{seed}:{name}".encode(), digest_size=4).digest()
    return int.from_bytes(digest, "big")


def survey_area(seed: int, name: str) -> ScanDataset:
    """Run one area's survey, self-contained and deterministically
    seeded — the unit of work a parallel study fans out."""
    spec = _AREA_BUILDERS[name](seed)
    rng = random.Random(_area_seed(seed, name))
    aps = place_aps(spec.city, density=spec.ap_density, rng=rng)
    return run_survey(
        area=spec.name,
        aps=aps,
        trajectory=spec.trajectory,
        detection=spec.detection,
        rng=rng,
        rate_hz=spec.rate_hz,
    )


def _survey_task(task: tuple[int, str]) -> ScanDataset:
    """Picklable single-argument wrapper for TrialRunner.map."""
    return survey_area(*task)


def run_study(seed: int = 0, runner=None) -> list[ScanDataset]:
    """Run the full four-area measurement study.

    ``runner`` (a :class:`repro.experiments.parallel.TrialRunner`)
    fans the four independent area surveys out over workers; the
    datasets come back in Table 1 order regardless of worker count.
    """
    tasks = [(seed, name) for name in AREA_NAMES]
    if runner is None:
        return [_survey_task(task) for task in tasks]
    return runner.map(_survey_task, tasks)
