"""The §2 war-driving measurement study and its analysis pipeline."""

from .crowdsourced import SurveyComparison, compare_survey_methods, crowdsourced_survey
from .analysis import (
    ap_sighting_locations,
    common_ap_bins,
    common_ap_pairs,
    location_spread,
    macs_per_scan_cdf,
    spread_cdf,
    table1_row,
)
from .scanner import Scan, ScanDataset, mac_address, run_survey
from .study import AREA_NAMES, AreaSpec, area_specs, run_study, survey_area
from .trajectory import (
    Trajectory,
    buildings_along,
    grid_walk,
    line_walk,
    random_walk,
)

__all__ = [
    "AreaSpec",
    "Scan",
    "SurveyComparison",
    "ScanDataset",
    "Trajectory",
    "ap_sighting_locations",
    "area_specs",
    "buildings_along",
    "common_ap_bins",
    "common_ap_pairs",
    "compare_survey_methods",
    "crowdsourced_survey",
    "grid_walk",
    "line_walk",
    "location_spread",
    "mac_address",
    "macs_per_scan_cdf",
    "random_walk",
    "AREA_NAMES",
    "run_study",
    "survey_area",
    "run_survey",
    "spread_cdf",
    "table1_row",
]
