"""Crowdsourced survey simulation: why the paper collected its own data.

Footnote 1 of §2: "AP survey databases, like wigle.net, are
sporadically collected via crowdsourcing and thus are non-uniform, and
often lack precise locations."  This module simulates exactly those
two defects — popularity-biased sampling (contributors cluster around
a few hotspots) and imprecise recorded locations (GPS noise) — so the
distortion they inject into the §2 statistics can be measured against
a systematic survey of the same ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..geometry import GridIndex, Point
from ..mesh import AccessPoint
from ..sim import FadingDetection
from .scanner import Scan, ScanDataset


def crowdsourced_survey(
    area: str,
    aps: list[AccessPoint],
    bounds: tuple[float, float, float, float],
    detection: FadingDetection,
    rng: random.Random,
    samples: int = 500,
    hotspots: int = 4,
    hotspot_sigma_m: float = 120.0,
    gps_noise_sigma_m: float = 25.0,
) -> ScanDataset:
    """Simulate a wigle-style crowdsourced AP survey.

    Sample locations are drawn from a mixture of Gaussians centred on a
    few random hotspots (where contributors actually go) instead of a
    systematic sweep, and each scan's *recorded* position carries GPS
    noise while detection happens at the *true* position.

    Args:
        area: dataset label.
        aps: ground-truth APs.
        bounds: ``(min_x, min_y, max_x, max_y)`` of the survey area.
        detection: radio detection model.
        rng: randomness source.
        samples: number of crowdsourced measurements.
        hotspots: number of contributor hotspots.
        hotspot_sigma_m: spatial spread of contributions per hotspot.
        gps_noise_sigma_m: standard deviation of recorded-location error.

    Raises:
        ValueError: for non-positive samples or hotspot counts.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    if hotspots < 1:
        raise ValueError("need at least one hotspot")
    min_x, min_y, max_x, max_y = bounds
    centers = [
        Point(rng.uniform(min_x, max_x), rng.uniform(min_y, max_y))
        for _ in range(hotspots)
    ]
    index: GridIndex[int] = GridIndex(cell_size=max(detection.max_range, 1.0))
    positions = {ap.id: ap.position for ap in aps}
    for ap in aps:
        index.insert(ap.id, ap.position)

    scans: list[Scan] = []
    for i in range(samples):
        center = centers[rng.randrange(hotspots)]
        true = Point(
            min(max(rng.gauss(center.x, hotspot_sigma_m), min_x), max_x),
            min(max(rng.gauss(center.y, hotspot_sigma_m), min_y), max_y),
        )
        heard = frozenset(
            ap_id
            for ap_id in index.query_radius(true, detection.max_range)
            if detection.detects(true, positions[ap_id], rng)
        )
        recorded = Point(
            rng.gauss(true.x, gps_noise_sigma_m),
            rng.gauss(true.y, gps_noise_sigma_m),
        )
        scans.append(Scan(index=i, time_s=float(i), position=recorded, heard=heard))
    return ScanDataset(area=area, scans=scans, ap_count=len(aps))


@dataclass(frozen=True)
class SurveyComparison:
    """Systematic vs crowdsourced statistics on the same ground truth."""

    systematic_measurements: int
    crowdsourced_measurements: int
    systematic_unique_aps: int
    crowdsourced_unique_aps: int
    systematic_median_spread: float
    crowdsourced_median_spread: float
    coverage_systematic: float
    coverage_crowdsourced: float


def compare_survey_methods(seed: int = 0) -> SurveyComparison:
    """Run both survey styles over one downtown and compare the §2 stats.

    The crowdsourced survey gets the *same number of measurements* as
    the systematic walk, so every difference is methodology, not effort.
    """
    from ..city import grid_downtown
    from ..mesh import place_aps
    from .analysis import spread_cdf
    from .scanner import run_survey
    from .trajectory import grid_walk

    rng = random.Random(seed)
    city = grid_downtown(seed=seed, blocks_x=8, blocks_y=8)
    aps = place_aps(city, density=1 / 40, rng=rng)
    detection = FadingDetection(reliable_range=30.0, max_range=90.0)
    min_x, min_y, max_x, max_y = city.bounds()

    systematic = run_survey(
        "systematic",
        aps,
        grid_walk(min_x, min_y, max_x, max_y, street_pitch=104.0),
        detection,
        random.Random(seed + 1),
        rate_hz=0.35,
    )
    crowd = crowdsourced_survey(
        "crowdsourced",
        aps,
        (min_x, min_y, max_x, max_y),
        detection,
        random.Random(seed + 2),
        samples=systematic.measurement_count(),
    )
    return SurveyComparison(
        systematic_measurements=systematic.measurement_count(),
        crowdsourced_measurements=crowd.measurement_count(),
        systematic_unique_aps=systematic.unique_ap_count(),
        crowdsourced_unique_aps=crowd.unique_ap_count(),
        systematic_median_spread=spread_cdf(systematic).median(),
        crowdsourced_median_spread=spread_cdf(crowd).median(),
        coverage_systematic=systematic.unique_ap_count() / len(aps),
        coverage_crowdsourced=crowd.unique_ap_count() / len(aps),
    )
