"""Survey trajectories: where the war-driver walks or bikes.

The paper's §2 study collected beacon frames "by walking or bicycling"
through four areas with a sampling frequency of 0.2–0.4 Hz.  A
trajectory here is a polyline of waypoints plus a speed; sampling it at
the scan rate yields the measurement positions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..geometry import Point


@dataclass(frozen=True)
class Trajectory:
    """A survey path: waypoints walked at constant speed."""

    waypoints: tuple[Point, ...]
    speed_mps: float

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a trajectory needs at least two waypoints")
        if self.speed_mps <= 0:
            raise ValueError("speed must be positive")

    def length_m(self) -> float:
        """Total path length in metres."""
        return sum(
            a.distance_to(b) for a, b in zip(self.waypoints, self.waypoints[1:])
        )

    def duration_s(self) -> float:
        """Time to traverse the whole path."""
        return self.length_m() / self.speed_mps

    def position_at(self, t: float) -> Point:
        """Position after walking for ``t`` seconds (clamped to the end)."""
        if t <= 0:
            return self.waypoints[0]
        remaining = t * self.speed_mps
        for a, b in zip(self.waypoints, self.waypoints[1:]):
            leg = a.distance_to(b)
            if remaining <= leg:
                return a.lerp(b, remaining / leg) if leg > 0 else a
            remaining -= leg
        return self.waypoints[-1]

    def sample(self, rate_hz: float) -> list[tuple[float, Point]]:
        """(time, position) samples at a fixed scan rate over the path.

        Raises:
            ValueError: for a non-positive rate.
        """
        if rate_hz <= 0:
            raise ValueError("sampling rate must be positive")
        period = 1.0 / rate_hz
        duration = self.duration_s()
        # Index-based sampling: ``t = i * period`` keeps each sample
        # time exact to one rounding, where the old ``t += period``
        # accumulated error over the walk and could skip (or duplicate)
        # the final boundary sample on long paths.
        samples = []
        i = 0
        while True:
            t = i * period
            if t > duration:
                break
            samples.append((t, self.position_at(t)))
            i += 1
        return samples

    def epoch_positions(self, epochs: int) -> list[Point]:
        """Positions at ``epochs`` evenly spaced instants over the walk.

        The whole trajectory is stretched across the sampled window:
        index 0 is the start, index ``epochs - 1`` the final waypoint.
        This is how a scenario timeline reads a walker — one position
        per epoch, start to finish, whatever the epoch duration.

        Raises:
            ValueError: for a non-positive epoch count.
        """
        if epochs < 1:
            raise ValueError("need at least one epoch position")
        if epochs == 1:
            return [self.waypoints[0]]
        duration = self.duration_s()
        return [
            self.position_at(duration * i / (epochs - 1)) for i in range(epochs)
        ]


def grid_walk(
    min_x: float,
    min_y: float,
    max_x: float,
    max_y: float,
    street_pitch: float,
    speed_mps: float = 1.4,
    serpentine: bool = True,
) -> Trajectory:
    """A serpentine walk along the streets of a gridded area.

    Sweeps horizontal streets spaced ``street_pitch`` apart, alternating
    direction like a survey lawnmower pattern.
    """
    if street_pitch <= 0:
        raise ValueError("street pitch must be positive")
    waypoints: list[Point] = []
    y = min_y
    forward = True
    while y <= max_y:
        if forward:
            waypoints.append(Point(min_x, y))
            waypoints.append(Point(max_x, y))
        else:
            waypoints.append(Point(max_x, y))
            waypoints.append(Point(min_x, y))
        if serpentine:
            forward = not forward
        y += street_pitch
    if len(waypoints) < 2:
        raise ValueError("area too small for the given street pitch")
    return Trajectory(tuple(waypoints), speed_mps)


def line_walk(a: Point, b: Point, speed_mps: float = 1.4, passes: int = 1) -> Trajectory:
    """A straight out-and-back path (e.g. along a river bank)."""
    if passes < 1:
        raise ValueError("passes must be at least 1")
    waypoints = []
    for i in range(passes):
        waypoints.extend([a, b] if i % 2 == 0 else [b, a])
    return Trajectory(tuple(waypoints), speed_mps)


def random_walk(
    start: Point,
    extent: float,
    legs: int,
    rng: random.Random,
    speed_mps: float = 1.4,
    leg_length: tuple[float, float] = (80.0, 250.0),
) -> Trajectory:
    """A meandering walk confined to a square area (campus strolls)."""
    if legs < 1:
        raise ValueError("need at least one leg")
    waypoints = [start]
    current = start
    for _ in range(legs):
        for _ in range(20):
            dx = rng.uniform(-leg_length[1], leg_length[1])
            dy = rng.uniform(-leg_length[1], leg_length[1])
            candidate = Point(current.x + dx, current.y + dy)
            dist = current.distance_to(candidate)
            if (
                leg_length[0] <= dist <= leg_length[1]
                and 0 <= candidate.x <= extent
                and 0 <= candidate.y <= extent
            ):
                waypoints.append(candidate)
                current = candidate
                break
        else:
            break
    if len(waypoints) < 2:
        raise ValueError("failed to generate a random walk")
    return Trajectory(tuple(waypoints), speed_mps)


def buildings_along(
    trajectory: Trajectory,
    city,
    epochs: int,
    candidates: "Sequence[int] | None" = None,
) -> list[int]:
    """The building a walker is at, one per epoch of a timeline.

    Samples the trajectory at ``epochs`` evenly spaced instants (the
    walk stretched over the whole timeline) and maps each position to
    its nearest building — restricted to ``candidates`` when given, so
    a scenario can snap walkers to AP-bearing buildings only (a mobile
    postbox user is useless in a building with no AP).

    Args:
        trajectory: the walk.
        city: a :class:`repro.city.City` (only ``nearest_building`` /
            ``building`` are used, so any spatially indexed city works).
        epochs: timeline length; one building id per epoch is returned.
        candidates: optional building ids to snap to; ``None`` snaps to
            any city building.

    Raises:
        ValueError: for an empty candidate list or a city with no
            buildings near the walk.
    """
    positions = trajectory.epoch_positions(epochs)
    if candidates is None:
        track: list[int] = []
        for p in positions:
            building = city.nearest_building(p)
            if building is None:
                raise ValueError(f"no building anywhere near {p}")
            track.append(building.id)
        return track
    if not candidates:
        raise ValueError("candidate building list is empty")
    centroids = [(b, city.building(b).centroid()) for b in candidates]
    track = []
    for p in positions:
        best_id, _ = min(
            centroids, key=lambda item: (item[1].distance_to(p), item[0])
        )
        track.append(best_id)
    return track
