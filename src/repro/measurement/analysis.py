"""Analysis of war-driving datasets: the §2 statistics.

These functions compute exactly what the paper's Figures 1-2 and
Table 1 report, and they are what one would run unchanged on real scan
logs.
"""

from __future__ import annotations

import numpy as np

from ..analysis import Cdf, WhiskerBin, whisker_bins
from ..geometry import GridIndex, Point
from .scanner import ScanDataset


def macs_per_scan_cdf(dataset: ScanDataset) -> Cdf:
    """Figure 1a: CDF of the number of MACs seen at each measurement.

    Raises:
        ValueError: for a dataset with no scans.
    """
    return Cdf.from_samples([scan.mac_count for scan in dataset.scans])


def ap_sighting_locations(dataset: ScanDataset) -> dict[int, list[Point]]:
    """Locations at which each AP was heard (APs never heard omitted)."""
    sightings: dict[int, list[Point]] = {}
    for scan in dataset.scans:
        for ap_id in scan.heard:
            sightings.setdefault(ap_id, []).append(scan.position)
    return sightings


def location_spread(points: list[Point]) -> float:
    """Maximum distance between any two sighting locations.

    The paper's spread metric: "the maximum distance between any two of
    the locations", an estimate of the transmission-region diameter.
    Uses the convex hull for large point sets (the diameter is attained
    at hull vertices), falling back to the quadratic scan for small
    ones.

    Raises:
        ValueError: for an empty point list.
    """
    if not points:
        raise ValueError("spread of zero sightings is undefined")
    if len(points) == 1:
        return 0.0
    pts = points
    if len(pts) > 40:
        arr = np.array([(p.x, p.y) for p in pts])
        try:
            from scipy.spatial import ConvexHull

            hull = ConvexHull(arr)
            pts = [Point(*arr[v]) for v in hull.vertices]
        except Exception:
            pts = points  # degenerate (collinear) inputs: brute force
    best = 0.0
    for i, a in enumerate(pts):
        for b in pts[i + 1:]:
            d = a.distance_sq_to(b)
            if d > best:
                best = d
    return best**0.5


def spread_cdf(dataset: ScanDataset, min_sightings: int = 2) -> Cdf:
    """Figure 1b: CDF of per-MAC location spread.

    APs heard fewer than ``min_sightings`` times contribute no spread
    estimate (a single sighting has spread 0 by construction and would
    just pile mass at zero).
    """
    spreads = [
        location_spread(points)
        for points in ap_sighting_locations(dataset).values()
        if len(points) >= min_sightings
    ]
    if not spreads:
        raise ValueError("no AP was sighted often enough to estimate spread")
    return Cdf.from_samples(spreads)


def common_ap_pairs(
    dataset: ScanDataset,
    max_distance: float = 500.0,
    stride: int = 1,
) -> list[tuple[float, int]]:
    """(distance L, # common APs) for measurement pairs within range.

    The paper records, for each pair of measurements, their distance
    and the number of APs observed at both locations (Figure 2).  Pairs
    farther apart than ``max_distance`` are skipped (they share nothing
    and would dominate the pair count); ``stride`` subsamples the scans
    for tractability on large surveys.
    """
    if stride < 1:
        raise ValueError("stride must be at least 1")
    scans = dataset.scans[::stride]
    index: GridIndex[int] = GridIndex(cell_size=max(max_distance, 1.0))
    for i, scan in enumerate(scans):
        index.insert(i, scan.position)
    pairs: list[tuple[float, int]] = []
    for i, scan in enumerate(scans):
        for j in index.query_radius(scan.position, max_distance):
            if j <= i:
                continue
            other = scans[j]
            common = len(scan.heard & other.heard)
            pairs.append((scan.position.distance_to(other.position), common))
    return pairs


def common_ap_bins(
    dataset: ScanDataset,
    bin_width: float = 50.0,
    max_distance: float = 500.0,
    stride: int = 1,
) -> list[WhiskerBin]:
    """Figure 2: whisker percentiles of common-AP counts per distance bin."""
    pairs = common_ap_pairs(dataset, max_distance=max_distance, stride=stride)
    return whisker_bins(pairs, bin_width=bin_width, max_value=max_distance)


def table1_row(dataset: ScanDataset) -> tuple[str, int, int]:
    """One Table 1 row: (area, # measurements, # unique APs)."""
    return (dataset.area, dataset.measurement_count(), dataset.unique_ap_count())
