"""End-to-end messaging over CityMesh: the full §3 workflow.

``MessagingService`` wires the four steps together on top of a
simulated mesh: (1) out-of-band postbox addresses, (2) seal + plan +
encode, (3) conduit broadcast through the AP mesh, (4) postbox storage
and owner retrieval.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..buildgraph import NoRouteError
from ..city import City
from ..core import BuildingRouter
from ..geometry import Point
from ..mesh import APGraph
from ..sim import BroadcastResult, ConduitPolicy, simulate_broadcast
from .crypto import KeyPair
from .message import OpenedMessage, open_message
from .message import seal as seal_message
from .names import PostboxAddress
from .store import Postbox, PostboxFullError


@dataclass
class Participant:
    """One user of the fallback network (e.g. Alice or Bob)."""

    keypair: KeyPair
    address: PostboxAddress
    postbox: Postbox

    @staticmethod
    def create(building_id: int, rng: random.Random, key_bits: int = 512) -> "Participant":
        """Generate keys and a postbox for a user homed in a building."""
        keypair = KeyPair.generate(rng, bits=key_bits)
        address = PostboxAddress.for_key(keypair.public, building_id)
        return Participant(
            keypair=keypair,
            address=address,
            postbox=Postbox(owner_name=address.name),
        )


@dataclass(frozen=True)
class SendReport:
    """What happened to one message."""

    delivered: bool
    transmissions: int
    delivery_time_s: float | None
    route_bits: int | None


@dataclass
class MessagingService:
    """The CityMesh network from the application's point of view."""

    city: City
    graph: APGraph
    router: BuildingRouter
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def send(
        self,
        sender: Participant,
        recipient: PostboxAddress,
        recipient_postbox: Postbox,
        plaintext: bytes,
        urgent: bool = False,
    ) -> SendReport:
        """Seal, route, and broadcast one message (§3 steps 2-4).

        The sender injects from an AP of their own building; delivery
        places the sealed bytes into the recipient's postbox.

        Raises:
            PostboxFullError: the broadcast reached the recipient's
                postbox AP but the box was at capacity.  This is a
                typed backpressure signal, not a routing failure — the
                message was *not* silently dropped as a successful
                send, and the caller should retry later or surface the
                saturation to the sender.
        """
        sealed = seal_message(sender.keypair, recipient, plaintext, self.rng)
        src_aps = self.graph.aps_in_building(sender.address.building_id)
        if not src_aps:
            return SendReport(False, 0, None, None)
        try:
            plan = self.router.plan(
                sender.address.building_id, recipient.building_id
            )
        except (NoRouteError, KeyError):
            return SendReport(False, 0, None, None)
        policy = ConduitPolicy(plan.conduits, self.city)
        result: BroadcastResult = simulate_broadcast(
            self.graph,
            src_aps[0],
            recipient.building_id,
            policy,
            self.rng,
        )
        if result.delivered:
            stored = recipient_postbox.deliver(
                sealed, now_s=result.delivery_time_s or 0.0, urgent=urgent
            )
            if not stored:
                raise PostboxFullError(
                    recipient_postbox.owner_name, recipient_postbox.capacity
                )
        return SendReport(
            delivered=result.delivered,
            transmissions=result.transmissions,
            delivery_time_s=result.delivery_time_s,
            route_bits=plan.route_bits,
        )

    def deliver_pushes(self, participant: Participant) -> list[SendReport]:
        """Forward pushed messages towards the owner's cached location.

        §3 step 4: "the postbox may also implement push notifications
        for the immediate forwarding of urgent messages … Bob's postbox
        caches location updates from his device."  Each pending push is
        routed from the postbox's building to the building nearest the
        cached location as an ordinary CityMesh unicast.  The push
        *records* are consumed here either way; a push that is
        confirmed delivered is also removed from the postbox's pending
        set (:meth:`~repro.postbox.Postbox.confirm_push`), so the owner
        never receives the same message again at the next check — while
        a failed push leaves the stored copy safe for normal retrieval.
        """
        postbox = participant.postbox
        pushes = postbox.take_pushes()
        if not pushes:
            return []
        location = postbox.last_known_location
        if location is None:
            return []
        target = self.city.nearest_building(location)
        if target is None:
            return []
        home = participant.address.building_id
        src_aps = self.graph.aps_in_building(home)
        reports: list[SendReport] = []
        for push in pushes:
            if target.id == home:
                postbox.confirm_push(push)
                reports.append(SendReport(True, 0, 0.0, None))
                continue
            if not src_aps:
                reports.append(SendReport(False, 0, None, None))
                continue
            try:
                plan = self.router.plan(home, target.id)
            except (NoRouteError, KeyError):
                reports.append(SendReport(False, 0, None, None))
                continue
            policy = ConduitPolicy(plan.conduits, self.city)
            result = simulate_broadcast(
                self.graph, src_aps[0], target.id, policy, self.rng
            )
            if result.delivered:
                postbox.confirm_push(push)
            reports.append(
                SendReport(
                    delivered=result.delivered,
                    transmissions=result.transmissions,
                    delivery_time_s=result.delivery_time_s,
                    route_bits=plan.route_bits,
                )
            )
        return reports

    @staticmethod
    def retrieve(
        participant: Participant, now_s: float, location: Point
    ) -> list[OpenedMessage]:
        """Owner-side retrieval: fetch, verify, and decrypt (§3 step 4).

        Messages that fail verification are dropped silently (a real
        client would log them); only authentic plaintexts are returned.
        """
        opened = []
        for stored in participant.postbox.check(now_s, location):
            try:
                opened.append(open_message(participant.keypair, stored.sealed))
            except ValueError:
                continue
        return opened
