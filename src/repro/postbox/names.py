"""Self-certifying names (§1's security element, after SFS [42]).

An identity's name is the hash of its public key, exchanged out of
band (the paper suggests a QR code).  Anyone holding the public key
can verify it matches the name with no certificate authority in the
loop — which is the property a fallback network needs when the CA
infrastructure is unreachable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .crypto import PublicKey

NAME_BYTES = 16  # 128-bit names, ample for collision resistance here


def name_of(public_key: PublicKey) -> str:
    """The self-certifying name of a public key (hex string)."""
    digest = hashlib.sha256(public_key.to_bytes()).digest()
    return digest[:NAME_BYTES].hex()


def verify_name(public_key: PublicKey, name: str) -> bool:
    """Whether ``name`` is genuinely the hash of ``public_key``."""
    return name_of(public_key) == name


@dataclass(frozen=True)
class PostboxAddress:
    """What Bob hands Alice out of band (§3 step 1): his
    self-certifying name, his public key, and the building id of his
    postbox AP.  Small enough for a QR code."""

    name: str
    public_key: PublicKey
    building_id: int

    def __post_init__(self) -> None:
        if not verify_name(self.public_key, self.name):
            raise ValueError("address name does not match the public key")

    @staticmethod
    def for_key(public_key: PublicKey, building_id: int) -> "PostboxAddress":
        """Build an address, deriving the name from the key."""
        return PostboxAddress(
            name=name_of(public_key), public_key=public_key, building_id=building_id
        )

    def to_bytes(self) -> bytes:
        """Compact serialisation (the QR-code payload)."""
        key = self.public_key.to_bytes()
        return (
            self.building_id.to_bytes(8, "big")
            + len(key).to_bytes(2, "big")
            + key
        )

    @staticmethod
    def from_bytes(data: bytes) -> "PostboxAddress":
        """Parse a serialised address, re-deriving and checking the name.

        Raises:
            ValueError: on malformed input.
        """
        if len(data) < 10:
            raise ValueError("truncated postbox address")
        building_id = int.from_bytes(data[:8], "big")
        key_len = int.from_bytes(data[8:10], "big")
        if len(data) != 10 + key_len:
            raise ValueError("truncated postbox address key")
        public_key = PublicKey.from_bytes(data[10:])
        return PostboxAddress.for_key(public_key, building_id)
