"""The postbox: store-and-forward message storage at the destination AP.

§3 step 4: the postbox "acts as a reliable intermediary for message
storage and forwarding and also handles message integrity checks and
decryption", supports periodic retrieval, and can push urgent messages
using cached location updates from the owner's device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import Point


@dataclass(frozen=True)
class StoredMessage:
    """One sealed message awaiting retrieval."""

    sealed: bytes
    arrival_time_s: float
    urgent: bool = False


@dataclass
class PushPreferences:
    """Owner-defined push behaviour (§3 step 4)."""

    push_urgent: bool = True
    push_all: bool = False

    def wants_push(self, message: StoredMessage) -> bool:
        """Whether this message should be pushed immediately."""
        return self.push_all or (self.push_urgent and message.urgent)


@dataclass
class Postbox:
    """Message storage for one owner at their postbox AP.

    The postbox never holds keys: it stores sealed bytes and leaves
    integrity checking and decryption to the owner's device (which is
    what makes a compromised postbox AP a nuisance rather than a
    confidentiality breach).
    """

    owner_name: str
    capacity: int = 1024
    retention_s: float = 7 * 24 * 3600.0
    _messages: list[StoredMessage] = field(default_factory=list)
    _last_known_location: Point | None = None
    _last_check_time_s: float = 0.0
    preferences: PushPreferences = field(default_factory=PushPreferences)
    pushed: list[StoredMessage] = field(default_factory=list)

    def deliver(self, sealed: bytes, now_s: float, urgent: bool = False) -> bool:
        """Accept a sealed message (False when the box is full).

        Urgent messages trigger a push record when the preferences
        allow it and the owner has checked in at least once (so a
        location is cached to push towards).

        Push-vs-retrieve semantics: a pushed message **stays pending**
        (a push may fail in transit — the stored copy is the safety
        net) until the push is *confirmed* delivered via
        :meth:`confirm_push`, at which point it leaves the pending set
        so the next :meth:`check` does not hand the owner a second
        copy.  The owner therefore sees each message exactly once on
        the success path and at least once always.
        """
        self.expire(now_s)
        if len(self._messages) >= self.capacity:
            return False
        message = StoredMessage(sealed=sealed, arrival_time_s=now_s, urgent=urgent)
        self._messages.append(message)
        if self._last_known_location is not None and self.preferences.wants_push(message):
            self.pushed.append(message)
        return True

    def check(self, now_s: float, location: Point) -> list[StoredMessage]:
        """Owner retrieval (§3 step 4): returns and clears pending
        messages, caching the device's location for future pushes.

        Messages whose push was confirmed (:meth:`confirm_push`) were
        already removed from pending and are not returned again."""
        self.expire(now_s)
        self._last_known_location = location
        self._last_check_time_s = now_s
        pending = self._messages
        self._messages = []
        return pending

    def take_pushes(self) -> list[StoredMessage]:
        """Drain the pending push records (the forwarder's work queue).

        Draining does *not* remove the messages from the pending set —
        call :meth:`confirm_push` for each push that actually reached
        the owner.
        """
        pushes = list(self.pushed)
        self.pushed.clear()
        return pushes

    def confirm_push(self, message: StoredMessage) -> bool:
        """Record that a pushed message reached the owner.

        Removes that exact message (identity, not equality — duplicate
        sealed bytes are distinct messages) from the pending set so the
        next :meth:`check` does not deliver it a second time.  Returns
        False when the message was already retrieved or expired.
        """
        for i, pending in enumerate(self._messages):
            if pending is message:
                del self._messages[i]
                return True
        return False

    def pending_count(self) -> int:
        """Messages currently waiting."""
        return len(self._messages)

    def expire(self, now_s: float) -> int:
        """Drop messages older than the retention window.

        Returns:
            The number of messages dropped.
        """
        before = len(self._messages)
        self._messages = [
            m for m in self._messages if now_s - m.arrival_time_s <= self.retention_s
        ]
        return before - len(self._messages)

    @property
    def last_known_location(self) -> Point | None:
        """The owner's most recently cached location, if any."""
        return self._last_known_location
