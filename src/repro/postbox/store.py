"""The postbox: store-and-forward message storage at the destination AP.

§3 step 4: the postbox "acts as a reliable intermediary for message
storage and forwarding and also handles message integrity checks and
decryption", supports periodic retrieval, and can push urgent messages
using cached location updates from the owner's device.

Hot-path complexity matters here: the always-on service layer
(:mod:`repro.service`) drives sustained send/check/confirm traffic
through these boxes, so the pending set is an **id-keyed insertion-
ordered map** — :meth:`Postbox.confirm_push` is an O(1) lookup instead
of an identity scan, and :meth:`Postbox.expire` pops expired messages
from the *front* of the map (arrivals are monotone in ``now_s``, so the
front is always the oldest) instead of rebuilding the whole list on
every delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geometry import Point
from ..obs import REGISTRY

#: Messages dropped by retention expiry, process-wide.
_M_EXPIRED = REGISTRY.counter("postbox.store.expired")
#: Deliveries rejected because the box was at capacity, process-wide.
_M_FULL = REGISTRY.counter("postbox.store.full_rejections")


class PostboxFullError(Exception):
    """A delivery was rejected because the postbox is at capacity.

    Raised by callers that must surface saturation as a typed
    backpressure signal (the messaging service, the async service
    layer) instead of a silent ``False``-and-drop.
    """

    def __init__(self, owner_name: str, capacity: int):
        super().__init__(
            f"postbox for {owner_name!r} is full ({capacity} pending messages)"
        )
        self.owner_name = owner_name
        self.capacity = capacity


@dataclass(frozen=True)
class StoredMessage:
    """One sealed message awaiting retrieval.

    ``msg_id`` is assigned by the receiving :class:`Postbox` (unique
    within that box, monotone in arrival order); it is excluded from
    equality so two copies of the same sealed bytes still compare the
    way they always did, and it is what wire protocols use to confirm
    a push without holding the object itself.
    """

    sealed: bytes
    arrival_time_s: float
    urgent: bool = False
    msg_id: int = field(default=0, compare=False)


@dataclass
class PushPreferences:
    """Owner-defined push behaviour (§3 step 4)."""

    push_urgent: bool = True
    push_all: bool = False

    def wants_push(self, message: StoredMessage) -> bool:
        """Whether this message should be pushed immediately."""
        return self.push_all or (self.push_urgent and message.urgent)


@dataclass
class Postbox:
    """Message storage for one owner at their postbox AP.

    The postbox never holds keys: it stores sealed bytes and leaves
    integrity checking and decryption to the owner's device (which is
    what makes a compromised postbox AP a nuisance rather than a
    confidentiality breach).

    Internally the pending set is ``msg_id -> StoredMessage`` in
    insertion (= arrival) order.  All operations the service hot path
    touches — deliver, check, confirm — are O(1) amortised; expiry is
    O(dropped), not O(pending).
    """

    owner_name: str
    capacity: int = 1024
    retention_s: float = 7 * 24 * 3600.0
    _pending: dict[int, StoredMessage] = field(default_factory=dict)
    _next_id: int = 1
    _last_known_location: Point | None = None
    _last_check_time_s: float = 0.0
    preferences: PushPreferences = field(default_factory=PushPreferences)
    pushed: list[StoredMessage] = field(default_factory=list)

    def deliver(self, sealed: bytes, now_s: float, urgent: bool = False) -> bool:
        """Accept a sealed message (False when the box is full).

        Urgent messages trigger a push record when the preferences
        allow it and the owner has checked in at least once (so a
        location is cached to push towards).

        Push-vs-retrieve semantics: a pushed message **stays pending**
        (a push may fail in transit — the stored copy is the safety
        net) until the push is *confirmed* delivered via
        :meth:`confirm_push`, at which point it leaves the pending set
        so the next :meth:`check` does not hand the owner a second
        copy.  The owner therefore sees each message exactly once on
        the success path and at least once always.
        """
        return self.deliver_message(sealed, now_s, urgent=urgent) is not None

    def deliver_message(
        self, sealed: bytes, now_s: float, urgent: bool = False
    ) -> StoredMessage | None:
        """:meth:`deliver`, returning the stored message (None if full).

        The service layer uses this form: the returned ``msg_id`` is
        what a remote client later quotes to confirm a push.
        """
        self.expire(now_s)
        if len(self._pending) >= self.capacity:
            _M_FULL.inc()
            return None
        message = StoredMessage(
            sealed=sealed, arrival_time_s=now_s, urgent=urgent, msg_id=self._next_id
        )
        self._next_id += 1
        self._pending[message.msg_id] = message
        if self._last_known_location is not None and self.preferences.wants_push(message):
            self.pushed.append(message)
        return message

    def check(self, now_s: float, location: Point) -> list[StoredMessage]:
        """Owner retrieval (§3 step 4): returns and clears pending
        messages, caching the device's location for future pushes.

        Messages whose push was confirmed (:meth:`confirm_push`) were
        already removed from pending and are not returned again."""
        self.expire(now_s)
        self._last_known_location = location
        self._last_check_time_s = now_s
        pending = list(self._pending.values())
        self._pending.clear()
        return pending

    def take_pushes(self) -> list[StoredMessage]:
        """Drain the pending push records (the forwarder's work queue).

        Draining does *not* remove the messages from the pending set —
        call :meth:`confirm_push` for each push that actually reached
        the owner.
        """
        pushes = list(self.pushed)
        self.pushed.clear()
        return pushes

    def confirm_push(self, message: StoredMessage) -> bool:
        """Record that a pushed message reached the owner.

        Removes that exact message (identity, not equality — duplicate
        sealed bytes are distinct messages) from the pending set so the
        next :meth:`check` does not deliver it a second time.  Returns
        False when the message was already retrieved or expired.
        """
        if self._pending.get(message.msg_id) is message:
            del self._pending[message.msg_id]
            return True
        return False

    def confirm_push_id(self, msg_id: int) -> bool:
        """Confirm a push by its wire id (the service-layer path).

        Same exactly-once contract as :meth:`confirm_push`, keyed by
        ``msg_id`` because a remote client never holds the object.
        """
        return self._pending.pop(msg_id, None) is not None

    def pending_count(self) -> int:
        """Messages currently waiting."""
        return len(self._pending)

    def expire(self, now_s: float) -> int:
        """Drop messages older than the retention window.

        Arrival times are monotone (every caller stamps ``now_s`` from
        a forward-moving clock), so expired messages are always a
        prefix of the insertion-ordered pending map: pop from the front
        until the first fresh message and stop.

        Returns:
            The number of messages dropped.
        """
        dropped = 0
        cutoff = now_s - self.retention_s
        while self._pending:
            msg_id, message = next(iter(self._pending.items()))
            if message.arrival_time_s >= cutoff:
                break
            del self._pending[msg_id]
            dropped += 1
        if dropped:
            _M_EXPIRED.inc(dropped)
        return dropped

    @property
    def last_known_location(self) -> Point | None:
        """The owner's most recently cached location, if any."""
        return self._last_known_location
