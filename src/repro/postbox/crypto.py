"""Simulation-grade public-key cryptography, from scratch.

The DFN security agenda (§1) requires message and origin authenticity
and confidentiality "without the need for real-time access to
centralized certificate authorities".  This module provides the
primitives: textbook RSA over Miller-Rabin primes for signatures and
key transport, plus a SHA-256-based stream cipher and HMAC for the
payload (a hybrid scheme).

.. warning::
   This is a *reproduction artefact*, not production cryptography:
   default keys are 512 bits, padding is full-domain hashing rather
   than PSS/OAEP, and no side-channel hardening exists.  It is exactly
   strong enough to make the protocol flows real in simulation.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
import random
from dataclasses import dataclass

_E = 65537
_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 24) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    """A random prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size too small")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if candidate % _E == 1:
            continue  # keep e coprime with p-1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    def to_bytes(self) -> bytes:
        """Canonical serialisation (hashed by self-certifying names)."""
        n_bytes = self.n.to_bytes((self.n.bit_length() + 7) // 8, "big")
        e_bytes = self.e.to_bytes((self.e.bit_length() + 7) // 8, "big")
        return (
            len(n_bytes).to_bytes(2, "big")
            + n_bytes
            + len(e_bytes).to_bytes(2, "big")
            + e_bytes
        )

    @staticmethod
    def from_bytes(data: bytes) -> "PublicKey":
        """Inverse of :meth:`to_bytes`.

        Raises:
            ValueError: on malformed input.
        """
        if len(data) < 4:
            raise ValueError("truncated public key")
        n_len = int.from_bytes(data[:2], "big")
        if len(data) < 2 + n_len + 2:
            raise ValueError("truncated public key modulus")
        n = int.from_bytes(data[2 : 2 + n_len], "big")
        e_off = 2 + n_len
        e_len = int.from_bytes(data[e_off : e_off + 2], "big")
        if len(data) != e_off + 2 + e_len:
            raise ValueError("truncated public key exponent")
        e = int.from_bytes(data[e_off + 2 :], "big")
        return PublicKey(n=n, e=e)


@dataclass(frozen=True)
class KeyPair:
    """An RSA keypair."""

    public: PublicKey
    _d: int

    @staticmethod
    def generate(rng: random.Random, bits: int = 512) -> "KeyPair":
        """Generate a keypair (default 512-bit modulus: simulation grade).

        Raises:
            ValueError: for moduli under 128 bits (the hybrid transport
                needs room for a 256-bit session key… so practically
                ``bits >= 288``; 128 is the hard floor for signatures).
        """
        if bits < 128:
            raise ValueError("modulus too small even for simulation")
        while True:
            p = _random_prime(bits // 2, rng)
            q = _random_prime(bits - bits // 2, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            try:
                d = pow(_E, -1, phi)
            except ValueError:
                continue
            return KeyPair(public=PublicKey(n=n, e=_E), _d=d)

    # ------------------------------------------------------------------
    # Signatures (full-domain hash)
    # ------------------------------------------------------------------
    def sign(self, message: bytes) -> bytes:
        """Sign ``message`` (hash-then-RSA)."""
        h = _fdh(message, self.public.n)
        sig = pow(h, self._d, self.public.n)
        return sig.to_bytes((self.public.n.bit_length() + 7) // 8, "big")

    def decrypt_key(self, wrapped: bytes) -> bytes:
        """Unwrap a session key wrapped with :func:`encrypt_key`.

        Raises:
            ValueError: on a malformed wrap.
        """
        c = int.from_bytes(wrapped, "big")
        if c >= self.public.n:
            raise ValueError("wrapped key out of range")
        m = pow(c, self._d, self.public.n)
        raw = m.to_bytes((self.public.n.bit_length() + 7) // 8, "big")
        if not raw.endswith(b"\x01"):
            raise ValueError("bad session-key padding")
        return raw[-33:-1]


def verify(public: PublicKey, message: bytes, signature: bytes) -> bool:
    """Verify a signature produced by :meth:`KeyPair.sign`."""
    if len(signature) != (public.n.bit_length() + 7) // 8:
        return False
    sig = int.from_bytes(signature, "big")
    if sig >= public.n:
        return False
    return pow(sig, public.e, public.n) == _fdh(message, public.n)


def encrypt_key(public: PublicKey, session_key: bytes, rng: random.Random) -> bytes:
    """Wrap a 32-byte session key under an RSA public key.

    Layout of the plaintext integer: random padding ∥ key ∥ 0x01, kept
    strictly below the modulus.

    Raises:
        ValueError: for session keys that are not 32 bytes.
    """
    if len(session_key) != 32:
        raise ValueError("session keys are 32 bytes")
    n_bytes = (public.n.bit_length() + 7) // 8
    pad_len = n_bytes - 32 - 1 - 1  # leading zero + key + 0x01
    if pad_len < 0:
        raise ValueError("modulus too small for key transport")
    padding = bytes(rng.getrandbits(8) for _ in range(pad_len))
    plain = b"\x00" + padding + session_key + b"\x01"
    m = int.from_bytes(plain, "big")
    c = pow(m, public.e, public.n)
    return c.to_bytes(n_bytes, "big")


def _fdh(message: bytes, n: int) -> int:
    """Full-domain hash of ``message`` into Z_n."""
    out = b""
    counter = 0
    target_len = (n.bit_length() + 7) // 8
    while len(out) < target_len:
        out += hashlib.sha256(message + counter.to_bytes(4, "big")).digest()
        counter += 1
    return int.from_bytes(out[:target_len], "big") % n


# ----------------------------------------------------------------------
# Symmetric layer: SHA-256 counter-mode stream + HMAC tag
# ----------------------------------------------------------------------
def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        counter += 1
    return bytes(out[:length])


def symmetric_encrypt(key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
    """Stream-encrypt ``plaintext`` (XOR with a SHA-256 keystream)."""
    stream = _keystream(key, nonce, len(plaintext))
    return bytes(a ^ b for a, b in zip(plaintext, stream))


symmetric_decrypt = symmetric_encrypt  # XOR stream ciphers are involutions


def mac_tag(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 authentication tag."""
    return hmac_mod.new(key, data, hashlib.sha256).digest()


def mac_verify(key: bytes, data: bytes, tag: bytes) -> bool:
    """Constant-time comparison of an HMAC tag."""
    return hmac_mod.compare_digest(mac_tag(key, data), tag)
