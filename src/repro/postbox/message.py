"""Sealed end-to-end messages: encrypt-then-MAC-then-sign.

Alice seals a message for Bob using his public key (from the postbox
address) and signs it with her own key, so Bob gets confidentiality,
integrity, and origin authenticity with zero online infrastructure —
the application-layer guarantees §1 asks for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .crypto import (
    KeyPair,
    PublicKey,
    encrypt_key,
    mac_tag,
    mac_verify,
    symmetric_decrypt,
    symmetric_encrypt,
    verify,
)
from .names import PostboxAddress, name_of

_NONCE_BYTES = 16


class MessageFormatError(ValueError):
    """Raised for malformed or tampered sealed messages."""


@dataclass(frozen=True)
class OpenedMessage:
    """A successfully opened message."""

    sender_name: str
    sender_key: PublicKey
    plaintext: bytes


def seal(
    sender: KeyPair,
    recipient: PostboxAddress,
    plaintext: bytes,
    rng: random.Random,
) -> bytes:
    """Seal ``plaintext`` for the recipient.

    Layout::

        sender_key_len(2) sender_key
        nonce(16)
        wrapped_key_len(2) wrapped_key
        ct_len(4) ciphertext
        tag(32)
        signature  (over everything above, by the sender)
    """
    session_key = bytes(rng.getrandbits(8) for _ in range(32))
    nonce = bytes(rng.getrandbits(8) for _ in range(_NONCE_BYTES))
    ciphertext = symmetric_encrypt(session_key, nonce, plaintext)
    wrapped = encrypt_key(recipient.public_key, session_key, rng)
    sender_key = sender.public.to_bytes()
    body = (
        len(sender_key).to_bytes(2, "big")
        + sender_key
        + nonce
        + len(wrapped).to_bytes(2, "big")
        + wrapped
        + len(ciphertext).to_bytes(4, "big")
        + ciphertext
        + mac_tag(session_key, nonce + ciphertext)
    )
    return body + sender.sign(body)


def open_message(recipient: KeyPair, data: bytes) -> OpenedMessage:
    """Open a sealed message addressed to ``recipient``.

    Raises:
        MessageFormatError: on truncation, a bad signature, a failed
            MAC, or a session key that does not unwrap.
    """
    try:
        off = 0
        sender_key_len = int.from_bytes(data[off : off + 2], "big")
        off += 2
        sender_key = PublicKey.from_bytes(data[off : off + sender_key_len])
        off += sender_key_len
        nonce = data[off : off + _NONCE_BYTES]
        off += _NONCE_BYTES
        wrapped_len = int.from_bytes(data[off : off + 2], "big")
        off += 2
        wrapped = data[off : off + wrapped_len]
        off += wrapped_len
        ct_len = int.from_bytes(data[off : off + 4], "big")
        off += 4
        ciphertext = data[off : off + ct_len]
        off += ct_len
        tag = data[off : off + 32]
        off += 32
        body = data[:off]
        signature = data[off:]
        if len(nonce) != _NONCE_BYTES or len(tag) != 32 or len(ciphertext) != ct_len:
            raise MessageFormatError("truncated sealed message")
    except (IndexError, ValueError) as exc:
        raise MessageFormatError(f"malformed sealed message: {exc}") from exc

    if not verify(sender_key, body, signature):
        raise MessageFormatError("sender signature verification failed")
    try:
        session_key = recipient.decrypt_key(wrapped)
    except ValueError as exc:
        raise MessageFormatError(f"session key unwrap failed: {exc}") from exc
    if not mac_verify(session_key, nonce + ciphertext, tag):
        raise MessageFormatError("message authentication failed")
    plaintext = symmetric_decrypt(session_key, nonce, ciphertext)
    return OpenedMessage(
        sender_name=name_of(sender_key), sender_key=sender_key, plaintext=plaintext
    )
