"""Postbox messaging: self-certifying names, sealed messages,
store-and-forward postboxes, and the end-to-end service."""

from .crypto import (
    KeyPair,
    PublicKey,
    encrypt_key,
    mac_tag,
    mac_verify,
    symmetric_decrypt,
    symmetric_encrypt,
    verify,
)
from .message import MessageFormatError, OpenedMessage, open_message, seal
from .names import NAME_BYTES, PostboxAddress, name_of, verify_name
from .service import MessagingService, Participant, SendReport
from .store import Postbox, PostboxFullError, PushPreferences, StoredMessage

__all__ = [
    "KeyPair",
    "MessageFormatError",
    "MessagingService",
    "NAME_BYTES",
    "OpenedMessage",
    "Participant",
    "Postbox",
    "PostboxAddress",
    "PostboxFullError",
    "PublicKey",
    "PushPreferences",
    "SendReport",
    "StoredMessage",
    "encrypt_key",
    "mac_tag",
    "mac_verify",
    "name_of",
    "open_message",
    "seal",
    "symmetric_decrypt",
    "symmetric_encrypt",
    "verify",
    "verify_name",
]
