"""Columnar (structure-of-arrays) geometry kernels.

The conduit-membership predicate — does a building footprint overlap a
conduit rectangle? — is the hottest geometric test in the system: every
broadcast evaluates it once per building on the packet's route region.
The scalar path (:meth:`repro.geometry.ConduitRect.intersects_polygon`)
walks Python ``Point`` objects edge by edge; this module evaluates the
*same* predicate over every footprint of a city at once from flat numpy
arrays.

Equivalence contract
--------------------

:func:`path_overlap_mask` is **bit-for-bit identical** to calling
``path.intersects_polygon(polygon)`` per polygon.  That holds because

- every per-rectangle scalar (corners, ``denom``, ``denom ** 0.5``) is
  computed by the *scalar* code path and broadcast into the arrays, so
  ``math.hypot``/``x ** 0.5`` rounding is shared, not re-derived;
- the remaining vector arithmetic (``+ - * /``, ``abs``, comparisons,
  ``np.sqrt`` vs ``** 0.5``, ``np.hypot`` vs ``math.hypot``) is IEEE-754
  double precision with identical expression shapes, so each lane
  reproduces the scalar result exactly;
- the bounding-box prefilter is conservative: it keeps every polygon
  whose bbox comes within ``_BBOX_MARGIN`` of the rectangle's bbox,
  a superset of anything the exact clauses (which use 1e-9/1e-12
  boundary slop) can accept;
- degenerate (zero-length) conduit rectangles fall back to the scalar
  predicate outright.

``tests/test_columnar_geometry.py`` holds the property suite pinning
this contract down, including collinear/touching adversarial cases.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .conduit import ConduitPath, ConduitRect
    from .polygon import Polygon

# Slop added around the rectangle bbox during prefiltering.  The exact
# clauses accept points up to 1e-9 (polygon boundary test) or 1e-12
# (collinear on-segment test) outside the true shapes; 1e-6 dominates
# both with room to spare and costs nothing.
_BBOX_MARGIN = 1e-6


class PolygonColumns:
    """Flat arrays over a fixed sequence of polygons.

    Vertices are concatenated into ``vx``/``vy`` with CSR-style
    ``offsets`` (``offsets[i]:offsets[i+1]`` is polygon ``i``'s ring),
    plus per-polygon bounding boxes.  Edge arrays pair each vertex with
    its ring successor, so edge ``j`` of the concatenated arrays is a
    real polygon edge (rings wrap within their own slice).
    """

    __slots__ = (
        "count",
        "offsets",
        "vx",
        "vy",
        "ex",
        "ey",
        "min_x",
        "min_y",
        "max_x",
        "max_y",
        "owner",
    )

    def __init__(self, polygons: Sequence["Polygon"]):
        self.count = len(polygons)
        counts = np.fromiter(
            (len(p.vertices) for p in polygons), dtype=np.int64, count=self.count
        )
        self.offsets = np.zeros(self.count + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])
        total = int(self.offsets[-1])
        vx = np.empty(total, dtype=np.float64)
        vy = np.empty(total, dtype=np.float64)
        pos = 0
        for p in polygons:
            for v in p.vertices:
                vx[pos] = v.x
                vy[pos] = v.y
                pos += 1
        self.vx = vx
        self.vy = vy
        # Ring successor of each vertex (wrapping within each polygon):
        # shift left by one, then pull each ring's first vertex back to
        # close it.
        nxt = np.arange(1, total + 1, dtype=np.int64)
        if self.count:
            nxt[self.offsets[1:] - 1] = self.offsets[:-1]
        self.ex = vx[nxt]
        self.ey = vy[nxt]
        bboxes = np.fromiter(
            (c for p in polygons for c in p.bbox),
            dtype=np.float64,
            count=4 * self.count,
        ).reshape(self.count, 4)
        self.min_x = bboxes[:, 0]
        self.min_y = bboxes[:, 1]
        self.max_x = bboxes[:, 2]
        self.max_y = bboxes[:, 3]
        #: id of each vertex's owning polygon, aligned with ``vx``.
        self.owner = np.repeat(np.arange(self.count, dtype=np.int64), counts)

    def __len__(self) -> int:
        return self.count


def _rect_bbox(corners) -> tuple[float, float, float, float]:
    xs = [c.x for c in corners]
    ys = [c.y for c in corners]
    return min(xs), min(ys), max(xs), max(ys)


def _contains_lanes(
    rect: "ConduitRect", px: np.ndarray, py: np.ndarray
) -> np.ndarray:
    """Vectorized ``rect.contains(Point(px, py))`` for a non-degenerate rect.

    Mirrors the scalar arithmetic exactly: per-rect scalars (``denom``
    and its square root) come from the same Python expressions the
    scalar path evaluates.
    """
    dx = rect.end.x - rect.start.x
    dy = rect.end.y - rect.start.y
    denom = dx * dx + dy * dy
    half_w = rect.width / 2.0
    root = denom**0.5
    vx = px - rect.start.x
    vy = py - rect.start.y
    t = (vx * dx + vy * dy) / denom
    lateral = np.abs(vx * dy - vy * dx) / root
    return (t >= 0.0) & (t <= 1.0) & (lateral <= half_w)


def _point_in_polygon_lanes(
    cols: PolygonColumns, rows: np.ndarray, cx: float, cy: float
) -> np.ndarray:
    """``polygon.contains(Point(cx, cy))`` for each polygon row in ``rows``.

    Replicates the scalar test clause by clause: bbox gate, boundary
    proximity (distance to any edge < 1e-9), then even-odd ray casting.
    Returns a bool array aligned with ``rows``.
    """
    inside_bbox = (
        (cols.min_x[rows] <= cx)
        & (cx <= cols.max_x[rows])
        & (cols.min_y[rows] <= cy)
        & (cy <= cols.max_y[rows])
    )
    result = np.zeros(len(rows), dtype=bool)
    if not inside_bbox.any():
        return result
    active = rows[inside_bbox]
    # Edge lanes for the active polygons.
    starts = cols.offsets[active]
    ends = cols.offsets[active + 1]
    lane_counts = ends - starts
    lane_rows = np.repeat(np.arange(len(active)), lane_counts)
    lanes = _ranges(starts, lane_counts)
    ax, ay = cols.vx[lanes], cols.vy[lanes]
    bx, by = cols.ex[lanes], cols.ey[lanes]

    # Boundary clause: Segment(a, b).distance_to_point(p) < 1e-9.
    # project_param -> clamp -> lerp -> hypot, with the scalar guard for
    # degenerate edges (denom == 0 -> t = 0).
    dx = bx - ax
    dy = by - ay
    denom = dx * dx + dy * dy
    safe = np.where(denom == 0.0, 1.0, denom)
    t = ((cx - ax) * dx + (cy - ay) * dy) / safe
    t = np.where(denom == 0.0, 0.0, t)
    t = np.minimum(1.0, np.maximum(0.0, t))
    qx = ax + (bx - ax) * t
    qy = ay + (by - ay) * t
    on_boundary = np.hypot(qx - cx, qy - cy) < 1e-9
    # Ray-cast clause: (ay > cy) != (by > cy), cx < x_cross.  The scalar
    # loop pairs vertex i with its *predecessor* j; over the whole ring
    # that is the same edge set as (vertex, successor), and the
    # crossing expression is symmetric in which endpoint is "vi": it
    # divides by (vi.y - vj.y) with vi as the endpoint tested first.
    # Match it exactly: scalar vi = verts[i], vj = predecessor; our
    # (a, b) pair has b = successor(a), so vi = b, vj = a.
    toggles = (by > cy) != (ay > cy)
    denom_y = np.where(toggles, by - ay, 1.0)
    x_cross = ax + (cy - ay) * (bx - ax) / denom_y
    crossing = toggles & (cx < x_cross)

    boundary_hit = np.bincount(
        lane_rows[on_boundary], minlength=len(active)
    ).astype(bool)
    cross_count = np.bincount(lane_rows[crossing], minlength=len(active))
    result[inside_bbox] = boundary_hit | ((cross_count % 2) == 1)
    return result


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i]+counts[i])`` lanes."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Standard CSR trick: cumulative offsets minus repeated starts.
    reps = np.repeat(np.arange(len(starts)), counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    return starts[reps] + within


def _segments_intersect_lanes(
    p1x, p1y, p2x, p2y, q1x, q1y, q2x, q2y
) -> np.ndarray:
    """Vectorized ``Segment(p1, p2).intersects(Segment(q1, q2))``.

    Lane-for-lane replica of the scalar orientation/collinearity test,
    including the 1e-12 bbox slop of ``_on_segment``.
    """

    def orient(ax, ay, bx, by, cx, cy):
        return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)

    def on_segment(ax, ay, bx, by, px, py):
        return (
            (np.minimum(ax, bx) - 1e-12 <= px)
            & (px <= np.maximum(ax, bx) + 1e-12)
            & (np.minimum(ay, by) - 1e-12 <= py)
            & (py <= np.maximum(ay, by) + 1e-12)
        )

    # Scalar: self = poly edge (p), other = rect edge (q);
    # d1 = orient(other.a, other.b, self.a) etc.
    d1 = orient(q1x, q1y, q2x, q2y, p1x, p1y)
    d2 = orient(q1x, q1y, q2x, q2y, p2x, p2y)
    d3 = orient(p1x, p1y, p2x, p2y, q1x, q1y)
    d4 = orient(p1x, p1y, p2x, p2y, q2x, q2y)
    proper = (
        ((d1 > 0) != (d2 > 0))
        & ((d3 > 0) != (d4 > 0))
        & (d1 != 0)
        & (d2 != 0)
        & (d3 != 0)
        & (d4 != 0)
    )
    touch = (
        ((d1 == 0) & on_segment(q1x, q1y, q2x, q2y, p1x, p1y))
        | ((d2 == 0) & on_segment(q1x, q1y, q2x, q2y, p2x, p2y))
        | ((d3 == 0) & on_segment(p1x, p1y, p2x, p2y, q1x, q1y))
        | ((d4 == 0) & on_segment(p1x, p1y, p2x, p2y, q2x, q2y))
    )
    return proper | touch


def rect_overlap_mask(
    cols: PolygonColumns,
    rect: "ConduitRect",
    skip: np.ndarray | None = None,
) -> np.ndarray:
    """``rect.intersects_polygon(p)`` for every polygon, as a bool array.

    ``skip`` (bool array) marks polygons whose verdict is already known
    true; they are neither tested nor reported (callers OR masks across
    rects, so skipping only saves work).
    """
    out = np.zeros(cols.count, dtype=bool)
    if cols.count == 0:
        return out
    if (rect.end - rect.start).norm_sq() == 0.0:
        # Degenerate disc conduits are rare (single-waypoint routes)
        # and full of hypot-rounding subtleties; the scalar fallback in
        # path_overlap_mask owns them.
        raise ValueError("degenerate rect: use path_overlap_mask")
    corners = rect.corners()
    rminx, rminy, rmaxx, rmaxy = _rect_bbox(corners)
    candidates = (
        (cols.max_x >= rminx - _BBOX_MARGIN)
        & (cols.min_x <= rmaxx + _BBOX_MARGIN)
        & (cols.max_y >= rminy - _BBOX_MARGIN)
        & (cols.min_y <= rmaxy + _BBOX_MARGIN)
    )
    if skip is not None:
        candidates &= ~skip
    rows = np.nonzero(candidates)[0]
    if len(rows) == 0:
        return out

    # Clause A: any polygon vertex inside the rect.  This decides almost
    # every true verdict (footprints genuinely inside the conduit), so
    # clauses B and C only run on the rows it leaves undecided.
    starts = cols.offsets[rows]
    counts = cols.offsets[rows + 1] - starts
    lane_rows = np.repeat(np.arange(len(rows)), counts)
    lanes = _ranges(starts, counts)
    vert_in = _contains_lanes(rect, cols.vx[lanes], cols.vy[lanes])
    verdict = np.bincount(
        lane_rows[vert_in], minlength=len(rows)
    ).astype(bool)

    undecided = ~verdict
    if undecided.any():
        sub_rows = rows[undecided]
        # Clause B: any rect corner inside the polygon.
        sub = np.zeros(len(sub_rows), dtype=bool)
        for c in corners:
            sub |= _point_in_polygon_lanes(cols, sub_rows, c.x, c.y)

        # Clause C: any polygon edge crosses any rect edge.  The scalar
        # loop tests poly_edge x rect_edge pairs; OR over pairs is
        # order-independent, so one broadcast pass over all four rect
        # edges at once (rect edges down axis 0, poly-edge lanes along
        # axis 1) suffices.
        still = ~sub
        if still.any():
            srows = sub_rows[still]
            sstarts = cols.offsets[srows]
            scounts = cols.offsets[srows + 1] - sstarts
            slane_rows = np.repeat(np.arange(len(srows)), scounts)
            slanes = _ranges(sstarts, scounts)
            ax, ay = cols.vx[slanes], cols.vy[slanes]
            bx, by = cols.ex[slanes], cols.ey[slanes]
            col = lambda vals: np.asarray(vals, dtype=np.float64)[:, None]
            q1x = col([c.x for c in corners])
            q1y = col([c.y for c in corners])
            q2x = col([corners[(i + 1) % 4].x for i in range(4)])
            q2y = col([corners[(i + 1) % 4].y for i in range(4)])
            hit = _segments_intersect_lanes(
                ax, ay, bx, by, q1x, q1y, q2x, q2y
            ).any(axis=0)
            sub[still] |= np.bincount(
                slane_rows[hit], minlength=len(srows)
            ).astype(bool)
        verdict[undecided] = sub

    out[rows] = verdict
    return out


def path_overlap_mask(
    cols: PolygonColumns,
    path: "ConduitPath",
    polygons: Sequence["Polygon"] | None = None,
) -> np.ndarray:
    """``path.intersects_polygon(p)`` for every polygon, as a bool array.

    Degenerate rects (zero-length legs) are evaluated with the scalar
    predicate over bbox-prefiltered candidates; everything else runs
    columnar.  ``polygons`` must be supplied when the path contains a
    degenerate rect (the scalar fallback needs the objects back).
    """
    out = np.zeros(cols.count, dtype=bool)
    for rect in path.rects:
        if (rect.end - rect.start).norm_sq() == 0.0:
            # Scalar fallback for the degenerate disc case.
            half = rect.width / 2.0 + _BBOX_MARGIN
            candidates = (
                (cols.max_x >= rect.start.x - half)
                & (cols.min_x <= rect.start.x + half)
                & (cols.max_y >= rect.start.y - half)
                & (cols.min_y <= rect.start.y + half)
                & ~out
            )
            rows = np.nonzero(candidates)[0]
            if len(rows) and polygons is None:
                raise ValueError(
                    "degenerate conduit rect needs the polygon objects "
                    "for the scalar fallback"
                )
            for r in rows:
                if rect.intersects_polygon(polygons[int(r)]):
                    out[r] = True
            continue
        out |= rect_overlap_mask(cols, rect, skip=out)
    return out
