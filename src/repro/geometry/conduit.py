"""Oriented conduit rectangles (Figure 4 of the paper).

A *conduit* is the rectangle of width ``W`` superimposed over one leg of
a compressed building route: it runs from one waypoint building's
centroid to the next, and an AP rebroadcasts a packet iff it sits inside
one of the packet's conduits.  The membership test is therefore the
single hottest geometric predicate in the whole system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .point import Point
from .segment import Segment


@dataclass(frozen=True, slots=True)
class ConduitRect:
    """One conduit leg: the set of points within ``width/2`` laterally of
    the segment ``start -> end`` and within its longitudinal extent.

    Endpoints are included (a point exactly on a waypoint centroid is in
    both adjacent conduits, which keeps consecutive conduits connected).
    """

    start: Point
    end: Point
    width: float

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"conduit width must be positive, got {self.width}")

    @property
    def length(self) -> float:
        """Longitudinal extent L of the conduit."""
        return self.start.distance_to(self.end)

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside this conduit rectangle (inclusive)."""
        d = self.end - self.start
        denom = d.norm_sq()
        half_w = self.width / 2.0
        if denom == 0.0:
            # Degenerate conduit: a disc of radius width/2 at the waypoint.
            return p.distance_to(self.start) <= half_w
        v = p - self.start
        t = v.dot(d) / denom
        if t < 0.0 or t > 1.0:
            return False
        # Lateral offset = |cross| / |d|.
        lateral = abs(v.cross(d)) / (denom**0.5)
        return lateral <= half_w

    def distance_to(self, p: Point) -> float:
        """Distance from ``p`` to the conduit (0 if inside)."""
        if self.contains(p):
            return 0.0
        axial = Segment(self.start, self.end).distance_to_point(p)
        return max(0.0, axial - self.width / 2.0)

    def intersects_polygon(self, polygon) -> bool:
        """Whether a polygon footprint overlaps this conduit.

        True when any polygon vertex is inside the conduit, any conduit
        corner is inside the polygon, or any pair of edges crosses.
        ``polygon`` is a :class:`repro.geometry.Polygon` (typed loosely
        to avoid a circular import).
        """
        if any(self.contains(v) for v in polygon.vertices):
            return True
        corners = self.corners()
        if any(polygon.contains(c) for c in corners):
            return True
        rect_edges = [
            Segment(corners[i], corners[(i + 1) % 4]) for i in range(4)
        ]
        for poly_edge in polygon.edges():
            for rect_edge in rect_edges:
                if poly_edge.intersects(rect_edge):
                    return True
        return False

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four rectangle corners (for rendering and debugging)."""
        d = self.end - self.start
        if d.norm_sq() == 0.0:
            h = self.width / 2.0
            return (
                Point(self.start.x - h, self.start.y - h),
                Point(self.start.x + h, self.start.y - h),
                Point(self.start.x + h, self.start.y + h),
                Point(self.start.x - h, self.start.y + h),
            )
        n = d.normalized().perpendicular() * (self.width / 2.0)
        return (self.start + n, self.end + n, self.end - n, self.start - n)


@dataclass(frozen=True)
class ConduitPath:
    """A chain of conduits: the decompressed geographic route region."""

    rects: tuple[ConduitRect, ...]

    def __init__(self, rects: Sequence[ConduitRect]):
        object.__setattr__(self, "rects", tuple(rects))

    @staticmethod
    def from_waypoints(waypoints: Sequence[Point], width: float) -> "ConduitPath":
        """Build the conduit chain connecting consecutive waypoints.

        A single waypoint yields one degenerate (disc) conduit so that a
        source-equals-destination route still has a nonempty region.
        """
        if not waypoints:
            raise ValueError("at least one waypoint is required")
        if len(waypoints) == 1:
            return ConduitPath([ConduitRect(waypoints[0], waypoints[0], width)])
        return ConduitPath(
            [
                ConduitRect(a, b, width)
                for a, b in zip(waypoints, waypoints[1:])
            ]
        )

    def contains(self, p: Point) -> bool:
        """Whether ``p`` is inside any conduit of the chain."""
        return any(r.contains(p) for r in self.rects)

    def intersects_polygon(self, polygon) -> bool:
        """Whether a footprint overlaps any conduit of the chain."""
        return any(r.intersects_polygon(polygon) for r in self.rects)

    def total_length(self) -> float:
        """Sum of conduit lengths (route length after compression)."""
        return sum(r.length for r in self.rects)

    def waypoints(self) -> list[Point]:
        """The waypoint centroids the chain was built from."""
        if not self.rects:
            return []
        pts = [self.rects[0].start]
        pts.extend(r.end for r in self.rects)
        return pts


def covers_all(start: Point, end: Point, width: float, points: Iterable[Point]) -> bool:
    """Whether the conduit ``start -> end`` of ``width`` contains every point.

    This is the predicate the route-compression algorithm (Figure 4)
    evaluates while extending a conduit to the latest possible waypoint.
    """
    rect = ConduitRect(start, end, width)
    return all(rect.contains(p) for p in points)
