"""Line-segment math used by conduit tests and polygon distances."""

from __future__ import annotations

import math
from dataclasses import dataclass

from .point import Point


@dataclass(frozen=True, slots=True)
class Segment:
    """A directed line segment from ``a`` to ``b``."""

    a: Point
    b: Point

    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.a.distance_to(self.b)

    def direction(self) -> Point:
        """Unit vector from ``a`` towards ``b``.

        Raises:
            ValueError: if the segment is degenerate (zero length).
        """
        return (self.b - self.a).normalized()

    def project_param(self, p: Point) -> float:
        """Parameter ``t`` of the orthogonal projection of ``p``.

        ``t`` is in segment-lengths: 0 at ``a``, 1 at ``b``.  Values
        outside [0, 1] mean the projection falls beyond an endpoint.
        For a degenerate segment the parameter is defined as 0.
        """
        d = self.b - self.a
        denom = d.norm_sq()
        if denom == 0.0:
            return 0.0
        return (p - self.a).dot(d) / denom

    def point_at(self, t: float) -> Point:
        """The point at parameter ``t`` along the (infinite) line."""
        return self.a.lerp(self.b, t)

    def closest_point_to(self, p: Point) -> Point:
        """The closest point on the segment (clamped to endpoints)."""
        t = min(1.0, max(0.0, self.project_param(p)))
        return self.point_at(t)

    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the nearest point on the segment."""
        return self.closest_point_to(p).distance_to(p)

    def intersects(self, other: "Segment") -> bool:
        """Whether two segments intersect (including touching)."""
        d1 = _orient(other.a, other.b, self.a)
        d2 = _orient(other.a, other.b, self.b)
        d3 = _orient(self.a, self.b, other.a)
        d4 = _orient(self.a, self.b, other.b)
        if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)) and d1 != 0 and d2 != 0 and d3 != 0 and d4 != 0:
            return True
        if d1 == 0 and _on_segment(other.a, other.b, self.a):
            return True
        if d2 == 0 and _on_segment(other.a, other.b, self.b):
            return True
        if d3 == 0 and _on_segment(self.a, self.b, other.a):
            return True
        if d4 == 0 and _on_segment(self.a, self.b, other.b):
            return True
        return False

    def distance_to_segment(self, other: "Segment") -> float:
        """Minimum distance between two segments (0 when they intersect)."""
        if self.intersects(other):
            return 0.0
        return min(
            self.distance_to_point(other.a),
            self.distance_to_point(other.b),
            other.distance_to_point(self.a),
            other.distance_to_point(self.b),
        )


def _orient(a: Point, b: Point, c: Point) -> float:
    """Signed area orientation of the triangle (a, b, c)."""
    return (b - a).cross(c - a)


def _on_segment(a: Point, b: Point, p: Point) -> bool:
    """Whether collinear point ``p`` lies within the bbox of (a, b)."""
    return (
        min(a.x, b.x) - 1e-12 <= p.x <= max(a.x, b.x) + 1e-12
        and min(a.y, b.y) - 1e-12 <= p.y <= max(a.y, b.y) + 1e-12
    )


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Convenience wrapper: distance from ``p`` to segment ``(a, b)``."""
    return Segment(a, b).distance_to_point(p)


def segment_length(a: Point, b: Point) -> float:
    """Length of the segment ``(a, b)``."""
    return math.hypot(b.x - a.x, b.y - a.y)
