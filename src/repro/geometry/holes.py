"""Polygons with holes: courtyard buildings.

OSM models buildings with courtyards as multipolygon relations (an
outer ring plus inner rings).  ``PolygonWithHoles`` keeps the standard
:class:`Polygon` interface that the rest of CityMesh consumes —
``contains`` excludes the courtyards, ``area`` subtracts them, and
``random_point_inside`` never lands in one — so a courtyard building
drops into the existing pipeline unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from .point import Point
from .polygon import Polygon
from .segment import Segment


@dataclass(frozen=True)
class PolygonWithHoles:
    """An outer ring with zero or more hole rings.

    Holes are assumed to lie strictly inside the outer ring and to be
    mutually disjoint (which is what valid OSM multipolygons provide).
    """

    outer: Polygon
    holes: tuple[Polygon, ...]

    def __init__(self, outer: Polygon, holes: Sequence[Polygon] = ()):
        object.__setattr__(self, "outer", outer)
        object.__setattr__(self, "holes", tuple(holes))

    # ------------------------------------------------------------------
    # Polygon-compatible interface
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> tuple[Point, ...]:
        """The outer ring's vertices (holes are interior detail)."""
        return self.outer.vertices

    @property
    def bbox(self) -> tuple[float, float, float, float]:
        """Bounding box of the outer ring."""
        return self.outer.bbox

    def area(self) -> float:
        """Outer area minus the holes."""
        return self.outer.area() - sum(h.area() for h in self.holes)

    def perimeter(self) -> float:
        """Total boundary length, holes included."""
        return self.outer.perimeter() + sum(h.perimeter() for h in self.holes)

    def centroid(self) -> Point:
        """Area centroid of the ring-with-holes region."""
        total = self.outer.area()
        cx = self.outer.centroid().x * total
        cy = self.outer.centroid().y * total
        for hole in self.holes:
            a = hole.area()
            c = hole.centroid()
            cx -= c.x * a
            cy -= c.y * a
            total -= a
        if total <= 0:
            return self.outer.centroid()
        return Point(cx / total, cy / total)

    def edges(self) -> Iterator[Segment]:
        """All boundary edges: outer ring then each hole ring."""
        yield from self.outer.edges()
        for hole in self.holes:
            yield from hole.edges()

    def contains(self, p: Point) -> bool:
        """Inside the outer ring but not inside any hole.

        Hole boundaries count as inside (they are part of the walls).
        """
        if not self.outer.contains(p):
            return False
        for hole in self.holes:
            if hole.contains(p):
                # On the hole's wall is still the building.
                if any(seg.distance_to_point(p) < 1e-9 for seg in hole.edges()):
                    return True
                return False
        return True

    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the solid region (0 if inside)."""
        if self.contains(p):
            return 0.0
        candidates = [seg.distance_to_point(p) for seg in self.edges()]
        return min(candidates)

    def distance_to_polygon(self, other) -> float:
        """Minimum distance to another polygon(-with-holes)."""
        if any(self.contains(v) for v in other.vertices):
            return 0.0
        if any(other.contains(v) for v in self.outer.vertices):
            return 0.0
        best = float("inf")
        other_edges = list(other.edges())
        for sa in self.edges():
            for sb in other_edges:
                d = sa.distance_to_segment(sb)
                if d == 0.0:
                    return 0.0
                if d < best:
                    best = d
        return best

    def intersects_segment(self, seg: Segment) -> bool:
        """Whether a segment touches the solid region."""
        if self.contains(seg.a) or self.contains(seg.b):
            return True
        return any(edge.intersects(seg) for edge in self.edges())

    def random_point_inside(self, rng: random.Random, max_tries: int = 1000) -> Point:
        """Uniform sample from the solid region (never in a courtyard).

        Raises:
            RuntimeError: if sampling keeps landing in holes (only
                plausible when holes cover almost the whole outer ring).
        """
        min_x, min_y, max_x, max_y = self.bbox
        for _ in range(max_tries):
            p = Point(rng.uniform(min_x, max_x), rng.uniform(min_y, max_y))
            if self.contains(p):
                return p
        raise RuntimeError("failed to sample a point inside polygon-with-holes")
