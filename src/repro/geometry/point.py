"""Planar points and basic vector math.

All CityMesh geometry lives in a local planar frame with coordinates in
metres (see :mod:`repro.osm.projection` for how lat/lon maps into this
frame).  ``Point`` is deliberately tiny and immutable so that it can be
used as a dict key, stored in spatial indexes, and created in the
millions without surprises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """A point (or free vector) in the local planar frame, in metres."""

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def dot(self, other: "Point") -> float:
        """Dot product, treating both points as vectors from the origin."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z component of the 3-D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of this point treated as a vector."""
        return math.hypot(self.x, self.y)

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids a sqrt in hot paths)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_sq_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other``."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def normalized(self) -> "Point":
        """Unit vector in this direction.

        Raises:
            ValueError: if this is the zero vector.
        """
        n = self.norm()
        if n == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Point(self.x / n, self.y / n)

    def perpendicular(self) -> "Point":
        """The vector rotated 90 degrees counter-clockwise."""
        return Point(-self.y, self.x)

    def lerp(self, other: "Point", t: float) -> "Point":
        """Linear interpolation: ``self`` at t=0, ``other`` at t=1."""
        return Point(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    def as_tuple(self) -> tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


def centroid_of(points: list[Point]) -> Point:
    """Arithmetic mean of a non-empty list of points.

    Raises:
        ValueError: if ``points`` is empty.
    """
    if not points:
        raise ValueError("centroid of empty point list is undefined")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    n = len(points)
    return Point(sx / n, sy / n)
