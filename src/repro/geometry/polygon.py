"""Simple polygons: building footprints and obstacle shapes.

Polygons are stored as an ordered vertex ring (no explicit closing
vertex).  They are assumed *simple* (non self-intersecting); building
footprints produced by :mod:`repro.city` and parsed by
:mod:`repro.osm` always satisfy this.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .point import Point
from .segment import Segment


@dataclass(frozen=True)
class Polygon:
    """A simple planar polygon defined by its vertex ring."""

    vertices: tuple[Point, ...]
    _bbox: tuple[float, float, float, float] = field(
        init=False, repr=False, compare=False, default=None  # type: ignore[assignment]
    )

    def __init__(self, vertices: Sequence[Point]):
        pts = tuple(vertices)
        if len(pts) < 3:
            raise ValueError(f"polygon needs at least 3 vertices, got {len(pts)}")
        # Drop an explicit closing vertex if the caller supplied one.
        if pts[0] == pts[-1] and len(pts) > 3:
            pts = pts[:-1]
        object.__setattr__(self, "vertices", pts)
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        object.__setattr__(self, "_bbox", (min(xs), min(ys), max(xs), max(ys)))

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def bbox(self) -> tuple[float, float, float, float]:
        """Axis-aligned bounding box ``(min_x, min_y, max_x, max_y)``."""
        return self._bbox

    def signed_area(self) -> float:
        """Shoelace signed area (positive for counter-clockwise rings)."""
        total = 0.0
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            total += a.cross(b)
        return total / 2.0

    def area(self) -> float:
        """Unsigned polygon area in square metres."""
        return abs(self.signed_area())

    def perimeter(self) -> float:
        """Total edge length in metres."""
        return sum(seg.length() for seg in self.edges())

    def centroid(self) -> Point:
        """Area centroid of the polygon.

        Falls back to the vertex mean for (near-)degenerate polygons.
        """
        a = self.signed_area()
        if abs(a) < 1e-12:
            n = len(self.vertices)
            return Point(
                sum(p.x for p in self.vertices) / n,
                sum(p.y for p in self.vertices) / n,
            )
        cx = 0.0
        cy = 0.0
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            p = verts[i]
            q = verts[(i + 1) % n]
            w = p.cross(q)
            cx += (p.x + q.x) * w
            cy += (p.y + q.y) * w
        return Point(cx / (6.0 * a), cy / (6.0 * a))

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[Segment]:
        """Iterate over the polygon's edges in ring order."""
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            yield Segment(verts[i], verts[(i + 1) % n])

    def contains(self, p: Point) -> bool:
        """Point-in-polygon test (ray casting; boundary counts as inside)."""
        min_x, min_y, max_x, max_y = self._bbox
        if not (min_x <= p.x <= max_x and min_y <= p.y <= max_y):
            return False
        # Boundary check first so edge-points are deterministic.
        for seg in self.edges():
            if seg.distance_to_point(p) < 1e-9:
                return True
        inside = False
        verts = self.vertices
        n = len(verts)
        j = n - 1
        for i in range(n):
            vi = verts[i]
            vj = verts[j]
            if (vi.y > p.y) != (vj.y > p.y):
                x_cross = vj.x + (p.y - vj.y) * (vi.x - vj.x) / (vi.y - vj.y)
                if p.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the polygon (0 if inside)."""
        if self.contains(p):
            return 0.0
        return min(seg.distance_to_point(p) for seg in self.edges())

    def distance_to_polygon(self, other: "Polygon") -> float:
        """Minimum distance between two polygons (0 when overlapping)."""
        if self.contains(other.vertices[0]) or other.contains(self.vertices[0]):
            return 0.0
        best = math.inf
        for sa in self.edges():
            for sb in other.edges():
                d = sa.distance_to_segment(sb)
                if d == 0.0:
                    return 0.0
                if d < best:
                    best = d
        return best

    def intersects_segment(self, seg: Segment) -> bool:
        """Whether a segment crosses (or touches / lies inside) the polygon."""
        if self.contains(seg.a) or self.contains(seg.b):
            return True
        return any(edge.intersects(seg) for edge in self.edges())

    # ------------------------------------------------------------------
    # Sampling and transforms
    # ------------------------------------------------------------------
    def random_point_inside(self, rng: random.Random, max_tries: int = 1000) -> Point:
        """Uniform rejection-sample a point strictly inside the polygon.

        Raises:
            RuntimeError: if sampling fails after ``max_tries`` attempts
                (only plausible for degenerate slivers).
        """
        min_x, min_y, max_x, max_y = self._bbox
        for _ in range(max_tries):
            p = Point(rng.uniform(min_x, max_x), rng.uniform(min_y, max_y))
            if self.contains(p):
                return p
        raise RuntimeError("failed to sample a point inside polygon")

    def translated(self, dx: float, dy: float) -> "Polygon":
        """A copy of the polygon shifted by ``(dx, dy)``."""
        return Polygon([Point(p.x + dx, p.y + dy) for p in self.vertices])

    def scaled(self, factor: float, about: Point | None = None) -> "Polygon":
        """A copy scaled by ``factor`` about ``about`` (default: centroid)."""
        c = about if about is not None else self.centroid()
        return Polygon([c + (p - c) * factor for p in self.vertices])

    @staticmethod
    def rectangle(min_x: float, min_y: float, max_x: float, max_y: float) -> "Polygon":
        """Axis-aligned rectangle polygon (counter-clockwise ring)."""
        if max_x <= min_x or max_y <= min_y:
            raise ValueError("rectangle extents must be positive")
        return Polygon(
            [
                Point(min_x, min_y),
                Point(max_x, min_y),
                Point(max_x, max_y),
                Point(min_x, max_y),
            ]
        )

    @staticmethod
    def regular(center: Point, radius: float, sides: int, rotation: float = 0.0) -> "Polygon":
        """Regular polygon with ``sides`` vertices on a circle."""
        if sides < 3:
            raise ValueError("a polygon needs at least 3 sides")
        if radius <= 0:
            raise ValueError("radius must be positive")
        return Polygon(
            [
                Point(
                    center.x + radius * math.cos(rotation + 2 * math.pi * i / sides),
                    center.y + radius * math.sin(rotation + 2 * math.pi * i / sides),
                )
                for i in range(sides)
            ]
        )
