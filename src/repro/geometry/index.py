"""Uniform-grid spatial hash for radius queries over many points.

Building a unit-disk AP graph naively is O(n^2); with hundreds of
thousands of APs per city that is unusable.  ``GridIndex`` buckets
points into square cells of side ``cell_size`` so that a radius query
touches only the O(1) neighbouring cells.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

from .point import Point

K = TypeVar("K", bound=Hashable)


class GridIndex(Generic[K]):
    """A spatial hash mapping keys to planar positions.

    Args:
        cell_size: grid cell side length in metres.  For unit-disk
            queries of radius ``r`` the sweet spot is ``cell_size == r``.
    """

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self._cells: dict[tuple[int, int], list[K]] = defaultdict(list)
        self._positions: dict[K, Point] = {}

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, key: K) -> bool:
        return key in self._positions

    def _cell_of(self, p: Point) -> tuple[int, int]:
        return (math.floor(p.x / self.cell_size), math.floor(p.y / self.cell_size))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: K, position: Point) -> None:
        """Insert (or move) ``key`` at ``position``."""
        if key in self._positions:
            self.remove(key)
        self._positions[key] = position
        self._cells[self._cell_of(position)].append(key)

    def remove(self, key: K) -> None:
        """Remove ``key`` from the index.

        Raises:
            KeyError: if the key is not present.
        """
        position = self._positions.pop(key)
        cell = self._cell_of(position)
        bucket = self._cells[cell]
        bucket.remove(key)
        if not bucket:
            del self._cells[cell]

    def extend(self, items: Iterable[tuple[K, Point]]) -> None:
        """Bulk-insert ``(key, position)`` pairs."""
        for key, position in items:
            self.insert(key, position)

    def copy(self) -> "GridIndex[K]":
        """An independent clone: same cell size, keys, and bucket order.

        Bucket order is part of the copy contract — consumers that
        derive neighbour *order* from queries (the AP graph's
        incremental extension) must see exactly the order a fresh
        index built by the same insertions would produce.
        """
        clone: GridIndex[K] = GridIndex(cell_size=self.cell_size)
        for cell, bucket in self._cells.items():
            clone._cells[cell] = list(bucket)
        clone._positions = dict(self._positions)
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def position_of(self, key: K) -> Point:
        """The stored position of ``key``."""
        return self._positions[key]

    def items(self) -> Iterator[tuple[K, Point]]:
        """Iterate over all ``(key, position)`` pairs."""
        return iter(self._positions.items())

    def query_radius(self, center: Point, radius: float) -> list[K]:
        """All keys within ``radius`` (inclusive) of ``center``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        results: list[K] = []
        cs = self.cell_size
        min_cx = math.floor((center.x - radius) / cs)
        max_cx = math.floor((center.x + radius) / cs)
        min_cy = math.floor((center.y - radius) / cs)
        max_cy = math.floor((center.y + radius) / cs)
        positions = self._positions
        # hypot (not squared distance) so boundary semantics match
        # Point.distance_to exactly — squared distances underflow for
        # denormal-scale offsets and would spuriously include points.
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                for key in bucket:
                    if positions[key].distance_to(center) <= radius:
                        results.append(key)
        return results

    def query_rect(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> list[K]:
        """All keys inside the axis-aligned rectangle (inclusive)."""
        results: list[K] = []
        cs = self.cell_size
        positions = self._positions
        for cx in range(math.floor(min_x / cs), math.floor(max_x / cs) + 1):
            for cy in range(math.floor(min_y / cs), math.floor(max_y / cs) + 1):
                bucket = self._cells.get((cx, cy))
                if not bucket:
                    continue
                for key in bucket:
                    p = positions[key]
                    if min_x <= p.x <= max_x and min_y <= p.y <= max_y:
                        results.append(key)
        return results

    def nearest(self, center: Point, max_radius: float = math.inf) -> K | None:
        """The key nearest to ``center`` within ``max_radius``, or None.

        Expands the search ring by one cell layer at a time, stopping as
        soon as the best candidate is provably closer than any cell not
        yet examined.
        """
        if not self._positions:
            return None
        best_key: K | None = None
        best_d = math.inf
        cs = self.cell_size
        c0 = self._cell_of(center)
        max_ring = (
            int(math.ceil(max_radius / cs)) + 1
            if math.isfinite(max_radius)
            else self._max_ring(c0)
        )
        positions = self._positions
        for ring in range(max_ring + 1):
            for cell in _ring_cells(c0, ring):
                bucket = self._cells.get(cell)
                if not bucket:
                    continue
                for key in bucket:
                    d = positions[key].distance_to(center)
                    if d < best_d:
                        best_d = d
                        best_key = key
            # Any point in a farther ring is at least (ring * cs) away.
            if best_key is not None and best_d <= ring * cs:
                break
        if best_key is None or best_d > max_radius:
            return None
        return best_key

    def _max_ring(self, c0: tuple[int, int]) -> int:
        """Ring count guaranteed to cover every occupied cell."""
        if not self._cells:
            return 0
        return max(
            max(abs(cx - c0[0]), abs(cy - c0[1])) for cx, cy in self._cells
        )


def _ring_cells(center: tuple[int, int], ring: int) -> Iterator[tuple[int, int]]:
    """Cells at Chebyshev distance exactly ``ring`` from ``center``."""
    cx, cy = center
    if ring == 0:
        yield (cx, cy)
        return
    for dx in range(-ring, ring + 1):
        yield (cx + dx, cy - ring)
        yield (cx + dx, cy + ring)
    for dy in range(-ring + 1, ring):
        yield (cx - ring, cy + dy)
        yield (cx + ring, cy + dy)
