"""Planar geometry substrate for CityMesh.

Everything downstream (city models, AP meshes, conduit routing, the
event simulator) builds on these primitives.  Coordinates are metres in
a local planar frame.
"""

from .columnar import PolygonColumns, path_overlap_mask, rect_overlap_mask
from .conduit import ConduitPath, ConduitRect, covers_all
from .holes import PolygonWithHoles
from .index import GridIndex
from .point import Point, centroid_of
from .polygon import Polygon
from .segment import Segment, point_segment_distance, segment_length

__all__ = [
    "ConduitPath",
    "ConduitRect",
    "GridIndex",
    "Point",
    "Polygon",
    "PolygonColumns",
    "PolygonWithHoles",
    "Segment",
    "centroid_of",
    "covers_all",
    "path_overlap_mask",
    "point_segment_distance",
    "rect_overlap_mask",
    "segment_length",
]
