"""Process-wide metrics: counters, gauges, and histogram timers.

Zero dependencies, zero background threads, and deliberately boring:
the registry is a flat name → instrument dict, instruments are plain
``__slots__`` objects, and the hot-path cost of an update is one
attribute add.  Subsystems that sit inside tight loops (the broadcast
kernels, the planner) accumulate into local ints and flush **once** per
run, so enabling observability never perturbs the numbers it reports —
the acceptance bar is < 5 % wall-time overhead on the 10k-AP flood
bench with everything on.

Snapshots are deterministic: :meth:`MetricsRegistry.snapshot` returns a
nested plain-dict structure with instruments sorted by name, so two
processes doing the same work serialize byte-identical JSON (timer
*values* are wall-clock and therefore vary; the schema and key order
never do).

Worker processes each hold their own registry; cross-process merging is
the caller's job (:class:`repro.experiments.TrialRunner` merges its
per-trial timings back in submission order, which keeps the merged
stream deterministic whatever the worker count).
"""

from __future__ import annotations

import math
import threading


class Counter:
    """A monotone counter (events, items, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (queue depth, alive APs, cache size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Timer:
    """A duration histogram: count / total / min / max / mean.

    Observations are seconds.  No bucketing — the consumers here want
    aggregates and regressions, not latency percentiles, and keeping
    the update to four float ops keeps instrumented hot paths honest.
    """

    __slots__ = ("name", "count", "total_s", "min_s", "max_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    def observe(self, duration_s: float) -> None:
        """Record one duration (seconds)."""
        self.count += 1
        self.total_s += duration_s
        if duration_s < self.min_s:
            self.min_s = duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0


class MetricsRegistry:
    """A flat, named registry of counters, gauges, and timers.

    Instruments are created on first use and live for the process;
    :meth:`reset` zeroes values but keeps identities, so modules that
    cached an instrument object keep writing to the live one.  Creation
    is locked (experiment sweeps run trial pools and the CLI may touch
    the registry from a pytest worker); updates on the instruments
    themselves are plain attribute ops — single-writer per process by
    construction here.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._lock = threading.Lock()

    # -- instrument accessors (create on demand) -----------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def timer(self, name: str) -> Timer:
        t = self._timers.get(name)
        if t is None:
            with self._lock:
                t = self._timers.setdefault(name, Timer(name))
        return t

    # -- snapshots ------------------------------------------------------
    def snapshot(self) -> dict:
        """A deterministic, JSON-ready view of every instrument.

        Keys are sorted; timers expose ``count/total_s/min_s/max_s/
        mean_s`` (``min_s`` reads 0.0 when nothing was observed, so the
        snapshot never contains non-JSON infinities).
        """
        counters = {
            name: c.value for name, c in sorted(self._counters.items())
        }
        gauges = {name: g.value for name, g in sorted(self._gauges.items())}
        timers = {}
        for name, t in sorted(self._timers.items()):
            timers[name] = {
                "count": t.count,
                "total_s": t.total_s,
                "min_s": 0.0 if t.count == 0 else t.min_s,
                "max_s": t.max_s,
                "mean_s": t.mean_s,
            }
        return {"counters": counters, "gauges": gauges, "timers": timers}

    def reset(self) -> None:
        """Zero every instrument (identities are preserved)."""
        with self._lock:
            for c in self._counters.values():
                c.reset()
            for g in self._gauges.values():
                g.reset()
            for t in self._timers.values():
                t.reset()


#: The process-wide registry every instrumented subsystem writes to.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (one per process, workers included)."""
    return REGISTRY
