"""``repro.obs``: the unified observability layer.

Three zero-dependency pieces every other subsystem can lean on:

- :mod:`~repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of counters, gauges, and histogram timers with deterministic
  snapshots; hot loops accumulate locally and flush once per run.
- :mod:`~repro.obs.spans` — nestable ``with span(name):`` trace
  contexts that feed the registry and, when a sink is installed
  (``--trace out.jsonl`` on the CLI), emit a JSONL event stream.
- :mod:`~repro.obs.manifest` — :class:`RunManifest` (git SHA, config
  hash, seed, wall/CPU time, peak RSS) embedded in every benchmark and
  scenario JSON so results carry their provenance.

Plus the consumer: :mod:`~repro.obs.compare`, the schema-aware
regression comparator behind ``repro bench compare``.

This package imports nothing from the rest of ``repro`` — it sits
below every layer, so the graph core, both broadcast engines, the
trial runner, and the scenario driver can all instrument through it
without cycles.
"""

from .compare import (
    DEFAULT_THRESHOLD_PCT,
    CompareReport,
    MetricDelta,
    compare_files,
    compare_records,
    format_report,
    metric_direction,
)
from .manifest import RunManifest, config_hash, repo_git_sha
from .metrics import REGISTRY, Counter, Gauge, MetricsRegistry, Timer, get_registry
from .spans import (
    close_trace,
    set_trace_path,
    set_trace_sink,
    span,
    summarize_trace,
    trace_enabled,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timer",
    "get_registry",
    "span",
    "set_trace_path",
    "set_trace_sink",
    "close_trace",
    "trace_enabled",
    "summarize_trace",
    "RunManifest",
    "config_hash",
    "repo_git_sha",
    "CompareReport",
    "MetricDelta",
    "DEFAULT_THRESHOLD_PCT",
    "compare_records",
    "compare_files",
    "format_report",
    "metric_direction",
]
