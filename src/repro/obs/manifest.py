"""Run manifests: who produced this JSON blob, from what, at what cost.

Every experiment, benchmark record, and scenario result grows a
``manifest`` block identifying the run: the git SHA the code was at,
a stable hash of the configuration that produced it, the seed, and the
run's resource footprint (wall time, CPU time, peak RSS).  Two results
can then be compared knowing whether they came from the same code and
config — which is what makes ``repro bench compare`` trustworthy.

Usage::

    manifest = RunManifest.begin(config=spec, seed=spec.world.seed)
    ...  # the run
    record["manifest"] = manifest.finish().to_dict()

The manifest is deliberately the only non-deterministic block in any
result JSON: everything outside it stays byte-identical across runs and
worker counts, and consumers (the comparator included) treat
``manifest`` as metadata, never as a metric.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
import time

try:  # pragma: no cover - absent on non-unix platforms
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

_GIT_SHA_CACHE: str | None = None
_GIT_SHA_KNOWN = False


def repo_git_sha() -> str | None:
    """The current ``HEAD`` SHA, or None outside a git checkout.

    Memoised per process: manifests are minted once per run but test
    suites mint hundreds, and a subprocess per mint would dominate.
    """
    global _GIT_SHA_CACHE, _GIT_SHA_KNOWN
    if _GIT_SHA_KNOWN:
        return _GIT_SHA_CACHE
    sha: str | None = None
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            sha = out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    _GIT_SHA_CACHE = sha
    _GIT_SHA_KNOWN = True
    return sha


def config_hash(config: object) -> str:
    """A short stable hash of any JSON-encodable-ish configuration.

    Dataclasses, dicts, tuples, strings all work: non-JSON values fall
    back to ``repr``, and keys are sorted, so equal configs hash equal
    across processes and platforms (unlike built-in ``hash``).
    """
    canonical = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.blake2b(canonical.encode(), digest_size=8).hexdigest()


def _peak_rss_kb() -> int | None:
    if resource is None:
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        rss //= 1024
    return int(rss)


class RunManifest:
    """Identity and cost of one run; see the module docstring.

    Create with :meth:`begin` before the work, call :meth:`finish`
    after it, then :meth:`to_dict` to embed.  ``finish`` is idempotent
    and implied by ``to_dict`` so a manifest can never be embedded
    half-filled.
    """

    def __init__(self, config: object = None, seed: int | None = None):
        self.git_sha = repo_git_sha()
        self.config_hash = config_hash(config) if config is not None else None
        self.seed = seed
        self.started_utc = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
        self.python = platform.python_version()
        self.platform = sys.platform
        self.wall_s: float | None = None
        self.cpu_s: float | None = None
        self.peak_rss_kb: int | None = None
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()

    @classmethod
    def begin(cls, config: object = None, seed: int | None = None) -> "RunManifest":
        """Start the clock on a new run."""
        return cls(config=config, seed=seed)

    def finish(self) -> "RunManifest":
        """Stamp wall/CPU time and peak RSS (idempotent; returns self)."""
        if self.wall_s is None:
            self.wall_s = time.perf_counter() - self._t0
            self.cpu_s = time.process_time() - self._cpu0
            self.peak_rss_kb = _peak_rss_kb()
        return self

    def to_dict(self) -> dict:
        """A JSON-ready view (finishes the manifest if still running)."""
        self.finish()
        return {
            "git_sha": self.git_sha,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "started_utc": self.started_utc,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_rss_kb": self.peak_rss_kb,
            "python": self.python,
            "platform": self.platform,
        }
