"""Schema-aware benchmark regression comparator (``repro bench compare``).

The bench suite emits flat JSON perf records (``BENCH_*`` baselines are
committed copies of those records).  Comparing two of them naively —
"did any number move?" — is useless: half the fields are structural
(``n_aps``, ``edges``), some are better *higher* (``epochs_per_s``,
``fastpath_speedup``), most are better *lower* (anything in seconds,
work counters like ``nodes_expanded``).  This module encodes that
schema as name rules so the verdict is per-metric directional:

- **lower-is-better**: names ending in ``_s`` (durations — including
  percentile walls like ``epoch_p50_s`` / ``epoch_p95_s``) and known
  work counters (``nodes_expanded``, ``*_checked``, ``transmissions``…);
- **higher-is-better**: throughputs (``*_per_s``), ``*speedup*``,
  ``*scaling*``, ``*delivery_rate*``;
- **informational**: everything else — reported when it drifts, never
  a regression (structure may legitimately change with the workload).

A metric regresses when it moves in its bad direction by more than
``threshold_pct`` percent.  ``timestamp``, ``manifest``, and other
non-numeric fields are ignored.  The comparator is what CI runs
(warn-only at first) against the committed baselines, and what the
acceptance fixture pair exercises: identical records compare clean, a
synthetic 20 % slowdown is flagged at the default 10 % threshold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

DEFAULT_THRESHOLD_PCT = 10.0

#: Fields that are metadata, never metrics.
SKIP_KEYS = frozenset({"timestamp", "manifest", "bench"})

#: Substrings marking a metric where bigger numbers are better.
_HIGHER_MARKERS = ("per_s", "speedup", "scaling", "delivery_rate", "rate")

#: Work counters: not wall-clock, but more of them is still worse.
_LOWER_COUNTERS = (
    "nodes_expanded",
    "candidates_checked",
    "distance_checks",
    "transmissions",
    "replans",
    "sssp_runs",
)


def metric_direction(name: str) -> str | None:
    """``"lower"`` / ``"higher"`` when the schema knows, else None.

    None means informational: the metric is reported but can never
    regress (counts of APs, edges, flows, trial sizes…).
    """
    for marker in _HIGHER_MARKERS:
        if marker in name:
            return "higher"
    if name.endswith("_s"):
        return "lower"
    for marker in _LOWER_COUNTERS:
        if marker in name:
            return "lower"
    return None


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between a baseline and a current record."""

    name: str
    baseline: float
    current: float
    pct_change: float  # signed; positive = value went up
    direction: str | None  # "lower", "higher", or None (informational)
    regressed: bool
    improved: bool


@dataclass(frozen=True)
class CompareReport:
    """The comparator's full verdict over one record pair."""

    bench: str
    threshold_pct: float
    deltas: tuple[MetricDelta, ...]
    missing_in_current: tuple[str, ...]
    new_in_current: tuple[str, ...]

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def improvements(self) -> tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.improved)

    @property
    def ok(self) -> bool:
        """True when nothing regressed and the schema still matches."""
        return not self.regressions and not self.missing_in_current


def _numeric_metrics(record: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    for key, value in record.items():
        if key in SKIP_KEYS:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[key] = float(value)
    return out


def compare_records(
    baseline: dict,
    current: dict,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> CompareReport:
    """Compare two perf records; see the module docstring for rules."""
    if threshold_pct < 0:
        raise ValueError("threshold must be non-negative")
    base = _numeric_metrics(baseline)
    cur = _numeric_metrics(current)
    deltas: list[MetricDelta] = []
    for name in sorted(base.keys() & cur.keys()):
        b, c = base[name], cur[name]
        if b == 0.0:
            pct = 0.0 if c == 0.0 else float("inf") * (1 if c > 0 else -1)
        else:
            pct = (c - b) / abs(b) * 100.0
        direction = metric_direction(name)
        regressed = improved = False
        if direction == "lower":
            regressed = pct > threshold_pct
            improved = pct < -threshold_pct
        elif direction == "higher":
            regressed = pct < -threshold_pct
            improved = pct > threshold_pct
        deltas.append(
            MetricDelta(name, b, c, pct, direction, regressed, improved)
        )
    return CompareReport(
        bench=str(baseline.get("bench", current.get("bench", "?"))),
        threshold_pct=threshold_pct,
        deltas=tuple(deltas),
        missing_in_current=tuple(sorted(base.keys() - cur.keys())),
        new_in_current=tuple(sorted(cur.keys() - base.keys())),
    )


def format_report(report: CompareReport, verbose: bool = False) -> str:
    """Human-readable verdict; regressions first, then notable moves."""
    lines = [
        f"bench compare: {report.bench} "
        f"(threshold ±{report.threshold_pct:g}%)"
    ]
    arrow = {"lower": "less is better", "higher": "more is better"}

    def row(d: MetricDelta, tag: str) -> str:
        note = arrow.get(d.direction or "", "informational")
        return (
            f"  {tag} {d.name}: {d.baseline:g} -> {d.current:g} "
            f"({d.pct_change:+.1f}%, {note})"
        )

    for d in report.regressions:
        lines.append(row(d, "REGRESSED"))
    for d in report.improvements:
        lines.append(row(d, "improved "))
    if verbose:
        for d in report.deltas:
            if not d.regressed and not d.improved:
                lines.append(row(d, "         "))
    for name in report.missing_in_current:
        lines.append(f"  MISSING   {name}: in baseline but not in current")
    for name in report.new_in_current:
        lines.append(f"  new       {name}: not in baseline (ignored)")
    verdict = "OK" if report.ok else f"{len(report.regressions)} regression(s)"
    if report.missing_in_current:
        verdict += f", {len(report.missing_in_current)} missing metric(s)"
    lines.append(f"  verdict: {verdict}")
    return "\n".join(lines)


def compare_files(
    baseline_path: str,
    current_path: str,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    warn_only: bool = False,
    verbose: bool = False,
) -> int:
    """CLI driver: load, compare, print, return a process exit code.

    ``warn_only`` always exits 0 (the CI smoke mode); otherwise a
    regression or a schema mismatch exits 1.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    with open(current_path) as fh:
        current = json.load(fh)
    report = compare_records(baseline, current, threshold_pct=threshold_pct)
    print(format_report(report, verbose=verbose))
    if warn_only or report.ok:
        return 0
    return 1
