"""Nestable trace spans with an optional JSONL event sink.

``with span("scenario.epoch", epoch=3):`` times a region, records the
duration into the process registry (as the ``span.<name>`` timer), and
— when a trace sink is installed via :func:`set_trace_path` — appends
one JSON line per completed span:

.. code-block:: json

    {"seq": 4, "name": "scenario.patch", "parent": "scenario.epoch",
     "depth": 1, "start_s": 0.01327, "dur_s": 0.00021, "epoch": 3}

``start_s`` is relative to sink installation (monotonic clock), spans
are emitted in *completion* order (inner before outer, as any tracer
does), and ``seq`` makes the stream totally ordered for consumers.
Extra keyword attributes land verbatim in the event, so keep them
JSON-serializable.

With no sink installed the per-span cost is two ``perf_counter`` calls,
a list push/pop, and one timer observation — cheap enough to leave on
in the scenario driver and the trial runner permanently.  Nesting is
tracked per thread.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import IO, Iterator

from .metrics import REGISTRY

_local = threading.local()
_sink: IO[str] | None = None
_sink_owned = False
_sink_lock = threading.Lock()
_seq = 0
_base = 0.0


def _stack() -> list[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def set_trace_sink(sink: IO[str] | None, owned: bool = False) -> None:
    """Install (or, with ``None``, remove) the JSONL event sink.

    Any previously installed *owned* sink (one opened by
    :func:`set_trace_path`) is closed first.
    """
    global _sink, _sink_owned, _seq, _base
    with _sink_lock:
        if _sink is not None and _sink_owned:
            _sink.close()
        _sink = sink
        _sink_owned = owned
        _seq = 0
        _base = time.perf_counter()


def set_trace_path(path: str) -> None:
    """Open ``path`` for writing and stream span events to it."""
    set_trace_sink(open(path, "w"), owned=True)


def close_trace() -> None:
    """Flush and detach the current sink (closing it if we opened it)."""
    set_trace_sink(None)


def trace_enabled() -> bool:
    """Whether span events are currently being written anywhere."""
    return _sink is not None


def _emit(name: str, parent: str | None, depth: int, start: float,
          dur: float, attrs: dict) -> None:
    global _seq
    event = {
        "seq": _seq,
        "name": name,
        "parent": parent,
        "depth": depth,
        "start_s": start - _base,
        "dur_s": dur,
    }
    if attrs:
        event.update(attrs)
    line = json.dumps(event, sort_keys=True, default=repr)
    with _sink_lock:
        sink = _sink
        if sink is None:
            return
        _seq += 1
        sink.write(line + "\n")


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Time a region, nestably; see the module docstring for output."""
    stack = _stack()
    parent = stack[-1] if stack else None
    depth = len(stack)
    stack.append(name)
    start = time.perf_counter()
    try:
        yield
    finally:
        dur = time.perf_counter() - start
        stack.pop()
        REGISTRY.timer("span." + name).observe(dur)
        if _sink is not None:
            _emit(name, parent, depth, start, dur, attrs)


def summarize_trace(lines: Iterator[str]) -> dict[str, dict[str, float]]:
    """Aggregate a JSONL trace into per-span-name timing rows.

    Returns ``{name: {count, total_s, mean_s, max_s, max_depth}}``,
    sorted by descending total time.  Malformed lines are skipped (a
    crashed run may truncate its last event).
    """
    agg: dict[str, dict[str, float]] = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
            name = event["name"]
            dur = float(event["dur_s"])
            depth = int(event.get("depth", 0))
        except (ValueError, KeyError, TypeError):
            continue
        row = agg.get(name)
        if row is None:
            row = agg[name] = {
                "count": 0, "total_s": 0.0, "mean_s": 0.0,
                "max_s": 0.0, "max_depth": 0,
            }
        row["count"] += 1
        row["total_s"] += dur
        if dur > row["max_s"]:
            row["max_s"] = dur
        if depth > row["max_depth"]:
            row["max_depth"] = depth
    for row in agg.values():
        row["mean_s"] = row["total_s"] / row["count"] if row["count"] else 0.0
    return dict(
        sorted(agg.items(), key=lambda kv: kv[1]["total_s"], reverse=True)
    )
