"""Exporting every table/figure as CSV and text files.

``python -m repro export --out results/`` regenerates the paper's
artefacts and writes them to disk: CSV series for everything numeric
(ready for external plotting) and text files for the ASCII renderings.
"""

from __future__ import annotations

from pathlib import Path

from ..analysis import format_csv
from ..measurement import run_study
from .fig1 import fig1_series, run_fig1
from .fig2 import run_fig2
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7
from .header_stats import run_header_stats
from .table1 import run_table1


def export_all(
    out_dir: str | Path,
    seed: int = 0,
    quick: bool = True,
) -> list[Path]:
    """Regenerate every artefact and write it under ``out_dir``.

    Args:
        out_dir: destination directory (created if missing).
        seed: master seed.
        quick: reduced sample sizes (full scale otherwise).

    Returns:
        The files written, in creation order.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def write(name: str, content: str) -> None:
        path = out / name
        path.write_text(content + "\n", encoding="utf-8")
        written.append(path)

    datasets = run_study(seed=seed)

    # Table 1
    rows = run_table1(seed=seed, datasets=datasets)
    write(
        "table1.csv",
        format_csv(
            ["area", "measurements", "unique_aps", "paper_measurements", "paper_unique_aps"],
            [
                [r.area, r.measurements, r.unique_aps, r.paper_measurements, r.paper_unique_aps]
                for r in rows
            ],
        ),
    )

    # Figure 1 CDF series per area
    areas = run_fig1(seed=seed, datasets=datasets)
    for area, series in fig1_series(areas, points=120).items():
        write(
            f"fig1a_{area}_macs_cdf.csv",
            format_csv(["macs_per_scan", "cdf"], series["macs_per_scan"]),
        )
        write(
            f"fig1b_{area}_spread_cdf.csv",
            format_csv(["spread_m", "cdf"], series["spread_m"]),
        )

    # Figure 2 whisker bins per area
    for area in run_fig2(seed=seed, datasets=datasets, stride=2 if quick else 1):
        write(
            f"fig2_{area.area}.csv",
            format_csv(
                ["bin_lo_m", "bin_hi_m", "pairs", "p10", "p25", "p50", "p75", "p100"],
                [
                    [b.lo, b.hi, b.count, b.p10, b.p25, b.p50, b.p75, b.p100]
                    for b in area.bins
                ],
            ),
        )

    # Figure 5: both rendered panels plus the stats line
    fig5 = run_fig5(seed=seed)
    write("fig5a_footprints.txt", fig5.footprints_art)
    write("fig5b_mesh.txt", fig5.mesh_art)
    write(
        "fig5_stats.csv",
        format_csv(
            ["buildings", "aps", "links", "largest_component_fraction"],
            [[fig5.building_count, fig5.ap_count, fig5.link_count, fig5.largest_component_fraction]],
        ),
    )

    # Figure 6
    fig6 = run_fig6(
        seed=seed,
        reach_pairs=150 if quick else 1000,
        delivery_pairs=15 if quick else 50,
    )
    write(
        "fig6.csv",
        format_csv(
            ["city", "reachability", "deliverability_given_reach", "median_overhead", "p90_overhead"],
            [
                [
                    r.city,
                    r.reachability,
                    r.deliverability,
                    r.median_overhead if r.median_overhead is not None else "",
                    r.p90_overhead if r.p90_overhead is not None else "",
                ]
                for r in fig6
            ],
        ),
    )

    # Figure 7 rendering
    write("fig7_simulation.txt", run_fig7(seed=seed).art)

    # Header statistics
    stats = run_header_stats(seed=seed, pairs=40 if quick else 150)
    write(
        "header_stats.csv",
        format_csv(
            ["metric", "measured", "paper"],
            [
                ["median_route_bits", stats.median_bits, 175],
                ["p90_route_bits", stats.p90_bits, 225],
                ["median_waypoints", stats.median_waypoints, ""],
                ["median_route_buildings", stats.median_route_buildings, ""],
            ],
        ),
    )
    return written
