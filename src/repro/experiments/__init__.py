"""Experiment drivers: one per table/figure of the paper plus ablations."""

from .ablations import (
    MembershipComparison,
    SweepPoint,
    compare_membership,
    format_sweep,
    membership_trial,
    sweep_ap_density,
    sweep_conduit_width,
    sweep_weight_exponent,
)
from .baselines_exp import SchemeSummary, format_baselines, run_baseline_comparison
from .bridging import BridgingResult, format_bridging, run_bridging
from .calibration import CalibrationResult, GapBin, format_calibration, run_calibration
from .capacity import CapacityPoint, capacity_point, format_capacity, run_capacity_sweep
from .common import (
    METRO_BUILDING_ID_SPACE,
    PAPER_AP_DENSITY,
    PAPER_CONDUIT_WIDTH,
    PAPER_TRANSMISSION_RANGE,
    DeliveryResult,
    World,
    WorldSpec,
    attempt_delivery,
    build_world,
    build_world_from_city,
    sample_building_pairs,
)
from .parallel import (
    DeliveryTrial,
    TrialError,
    TrialRunner,
    delivery_trial,
    delivery_trials,
    seed_for,
)
from .export import export_all
from .fig1 import Fig1Area, fig1_series, format_fig1, run_fig1
from .fig2 import Fig2Area, common_beyond, format_fig2, run_fig2
from .fig5 import Fig5Result, format_fig5, run_fig5
from .fig6 import Fig6Row, format_fig6, run_fig6, run_fig6_city
from .fig7 import Fig7Result, run_fig7
from .header_stats import HeaderStats, format_header_stats, run_header_stats
from .replication import ReplicatedCity, format_replication, replicate_fig6
from .security_exp import (
    AttackOutcome,
    CompromisePoint,
    format_attacks,
    format_compromise,
    run_attack_comparison,
    run_compromise_sweep,
)
from .scaling import ScalingRow, control_load, format_scaling, run_scaling
from .table1 import Table1Row, format_table1, run_table1

__all__ = [
    "BridgingResult",
    "CalibrationResult",
    "CapacityPoint",
    "GapBin",
    "AttackOutcome",
    "CompromisePoint",
    "DeliveryResult",
    "DeliveryTrial",
    "Fig1Area",
    "Fig2Area",
    "Fig5Result",
    "Fig6Row",
    "Fig7Result",
    "HeaderStats",
    "METRO_BUILDING_ID_SPACE",
    "MembershipComparison",
    "PAPER_AP_DENSITY",
    "PAPER_CONDUIT_WIDTH",
    "PAPER_TRANSMISSION_RANGE",
    "ReplicatedCity",
    "ScalingRow",
    "SchemeSummary",
    "SweepPoint",
    "Table1Row",
    "TrialError",
    "TrialRunner",
    "World",
    "WorldSpec",
    "attempt_delivery",
    "build_world",
    "build_world_from_city",
    "delivery_trial",
    "delivery_trials",
    "seed_for",
    "common_beyond",
    "export_all",
    "compare_membership",
    "fig1_series",
    "format_baselines",
    "format_bridging",
    "format_calibration",
    "format_capacity",
    "format_attacks",
    "format_compromise",
    "format_fig1",
    "format_replication",
    "format_fig2",
    "format_fig5",
    "format_fig6",
    "format_header_stats",
    "format_scaling",
    "format_sweep",
    "format_table1",
    "run_baseline_comparison",
    "run_bridging",
    "run_calibration",
    "run_capacity_sweep",
    "run_attack_comparison",
    "run_compromise_sweep",
    "replicate_fig6",
    "run_fig1",
    "run_fig2",
    "run_fig5",
    "run_fig6",
    "run_fig6_city",
    "run_fig7",
    "control_load",
    "run_header_stats",
    "run_scaling",
    "run_table1",
    "sample_building_pairs",
    "capacity_point",
    "membership_trial",
    "sweep_ap_density",
    "sweep_conduit_width",
    "sweep_weight_exponent",
]
