"""Figure 6: reachability, deliverability, and overhead across cities.

The paper tests 1000 building pairs for reachability per city, then 50
reachable pairs for deliverability "using the full event-based
simulation", at a 50 m symmetric range and 1 AP / 200 m², and reports
a 13x median transmission overhead attributable to every AP of a
conduit building rebroadcasting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis import format_table, percentile
from ..city import preset_names
from .common import World, build_world, sample_building_pairs
from .parallel import TrialRunner, delivery_trials


@dataclass(frozen=True)
class Fig6Row:
    """One city's Figure 6 bars."""

    city: str
    pairs_tested: int
    reachable_pairs: int
    delivery_tested: int
    delivered: int
    median_overhead: float | None
    p90_overhead: float | None

    @property
    def reachability(self) -> float:
        return self.reachable_pairs / self.pairs_tested if self.pairs_tested else 0.0

    @property
    def deliverability(self) -> float:
        """Deliverability *given reachability*, as the paper defines it."""
        return self.delivered / self.delivery_tested if self.delivery_tested else 0.0


def run_fig6_city(
    world: World,
    seed: int = 0,
    reach_pairs: int = 1000,
    delivery_pairs: int = 50,
    runner: TrialRunner | None = None,
) -> Fig6Row:
    """Evaluate one city: reachability sweep then event-sim deliveries.

    Deliveries run through ``runner`` (in-process by default) with one
    deterministic seed per trial, so the row is identical for any
    worker count.
    """
    rng = random.Random(seed + 1)
    pairs = sample_building_pairs(world, reach_pairs, rng)
    reachable = [
        (s, d) for s, d in pairs if world.graph.buildings_reachable(s, d)
    ]
    delivery_sample = reachable[:delivery_pairs]
    if runner is None:
        runner = TrialRunner()
    outcomes = runner.run_deliveries(
        world, delivery_trials(delivery_sample, base_seed=seed + 2)
    )
    delivered = 0
    overheads: list[float] = []
    for outcome in outcomes:
        if outcome.delivered:
            delivered += 1
            if outcome.overhead is not None:
                overheads.append(outcome.overhead)
    return Fig6Row(
        city=world.city.name,
        pairs_tested=len(pairs),
        reachable_pairs=len(reachable),
        delivery_tested=len(delivery_sample),
        delivered=delivered,
        median_overhead=percentile(overheads, 50) if overheads else None,
        p90_overhead=percentile(overheads, 90) if overheads else None,
    )


def run_fig6(
    seed: int = 0,
    cities: list[str] | None = None,
    reach_pairs: int = 1000,
    delivery_pairs: int = 50,
    workers: int = 1,
) -> list[Fig6Row]:
    """Regenerate Figure 6 across the city presets.

    ``workers`` > 1 fans the per-city delivery simulations out over
    processes; results are identical to the serial run.
    """
    rows = []
    with TrialRunner(workers=workers) as runner:
        for name in cities if cities is not None else preset_names():
            world = build_world(name, seed=seed)
            rows.append(
                run_fig6_city(
                    world,
                    seed=seed,
                    reach_pairs=reach_pairs,
                    delivery_pairs=delivery_pairs,
                    runner=runner,
                )
            )
    return rows


def format_fig6(rows: list[Fig6Row]) -> str:
    """Paper-style per-city bars as a table."""
    return format_table(
        [
            "city",
            "reachability",
            "deliverability|reach",
            "median overhead",
            "p90 overhead",
            "reach pairs",
            "sim pairs",
        ],
        [
            [
                r.city,
                r.reachability,
                r.deliverability,
                r.median_overhead if r.median_overhead is not None else "-",
                r.p90_overhead if r.p90_overhead is not None else "-",
                f"{r.reachable_pairs}/{r.pairs_tested}",
                f"{r.delivered}/{r.delivery_tested}",
            ]
            for r in rows
        ],
        title=(
            "Figure 6: reachability, deliverability (given reachability), and "
            "transmission overhead per city\n"
            "paper: most cities have high reachability and deliverability; "
            "river/highway cities fracture into islands; overhead ~13x"
        ),
    )
