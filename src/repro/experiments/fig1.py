"""Figure 1: (a) CDF of MACs per measurement, (b) CDF of per-MAC spread."""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import Cdf, format_table
from ..measurement import ScanDataset, macs_per_scan_cdf, run_study, spread_cdf

# The medians §2 quotes: MACs/scan 60 (river, worst) and 218 (downtown,
# best); spread 54 m (campus, smallest) and 168 m (river, largest).
PAPER_MEDIANS = {
    "macs": {"river": 60, "downtown": 218},
    "spread": {"campus": 54.0, "river": 168.0},
}


@dataclass(frozen=True)
class Fig1Area:
    """Both Figure 1 CDFs for one survey area."""

    area: str
    macs_cdf: Cdf
    spread_cdf: Cdf

    @property
    def median_macs(self) -> float:
        return self.macs_cdf.median()

    @property
    def median_spread(self) -> float:
        return self.spread_cdf.median()


def run_fig1(seed: int = 0, datasets: list[ScanDataset] | None = None) -> list[Fig1Area]:
    """Regenerate both Figure 1 CDFs for every area."""
    if datasets is None:
        datasets = run_study(seed=seed)
    return [
        Fig1Area(
            area=ds.area,
            macs_cdf=macs_per_scan_cdf(ds),
            spread_cdf=spread_cdf(ds),
        )
        for ds in datasets
    ]


def format_fig1(areas: list[Fig1Area]) -> str:
    """Summary table: medians and quartiles of both CDFs per area."""
    rows = []
    for a in areas:
        rows.append(
            [
                a.area,
                a.macs_cdf.quantile(0.25),
                a.median_macs,
                a.macs_cdf.quantile(0.75),
                a.spread_cdf.quantile(0.25),
                a.median_spread,
                a.spread_cdf.quantile(0.75),
            ]
        )
    return format_table(
        ["area", "MACs p25", "MACs p50", "MACs p75", "spread p25", "spread p50", "spread p75"],
        rows,
        title=(
            "Figure 1: MACs seen per measurement (a) and per-MAC location "
            "spread in metres (b)\n"
            "paper medians: MACs 60 (river, worst) / 218 (downtown, best); "
            "spread 54 m (campus) / 168 m (river)"
        ),
    )


def fig1_series(areas: list[Fig1Area], points: int = 60) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Downsampled CDF series for external plotting, keyed by area."""
    return {
        a.area: {
            "macs_per_scan": a.macs_cdf.series(points),
            "spread_m": a.spread_cdf.series(points),
        }
        for a in areas
    }
