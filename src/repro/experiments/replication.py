"""Multi-seed replication: are the Figure 6 results seed-artifacts?

Each replication rebuilds the city, the AP placement, and the pair
sample from a fresh seed and reruns the Figure 6 pipeline.  The paper
reports single realisations; this experiment adds the error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..analysis import format_table
from .common import build_world
from .fig6 import run_fig6_city


@dataclass(frozen=True)
class ReplicatedCity:
    """Mean and standard deviation over seeds for one city."""

    city: str
    seeds: int
    reachability_mean: float
    reachability_std: float
    deliverability_mean: float
    deliverability_std: float
    overhead_mean: float | None


def _mean_std(values: list[float]) -> tuple[float, float]:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var)


def replicate_fig6(
    city_name: str,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    reach_pairs: int = 200,
    delivery_pairs: int = 15,
) -> ReplicatedCity:
    """Run the Figure 6 pipeline once per seed and aggregate.

    Raises:
        ValueError: for an empty seed tuple.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    reach: list[float] = []
    deliv: list[float] = []
    overheads: list[float] = []
    for seed in seeds:
        world = build_world(city_name, seed=seed)
        row = run_fig6_city(
            world, seed=seed, reach_pairs=reach_pairs, delivery_pairs=delivery_pairs
        )
        reach.append(row.reachability)
        deliv.append(row.deliverability)
        if row.median_overhead is not None:
            overheads.append(row.median_overhead)
    reach_mean, reach_std = _mean_std(reach)
    deliv_mean, deliv_std = _mean_std(deliv)
    return ReplicatedCity(
        city=city_name,
        seeds=len(seeds),
        reachability_mean=reach_mean,
        reachability_std=reach_std,
        deliverability_mean=deliv_mean,
        deliverability_std=deliv_std,
        overhead_mean=sum(overheads) / len(overheads) if overheads else None,
    )


def format_replication(results: list[ReplicatedCity]) -> str:
    """Replication table with mean ± std columns."""
    return format_table(
        ["city", "seeds", "reachability", "deliverability|reach", "mean med-overhead"],
        [
            [
                r.city,
                r.seeds,
                f"{r.reachability_mean:.3f}±{r.reachability_std:.3f}",
                f"{r.deliverability_mean:.3f}±{r.deliverability_std:.3f}",
                r.overhead_mean if r.overhead_mean is not None else "-",
            ]
            for r in results
        ],
        title="Figure 6 replication across seeds (fresh city + placement each)",
    )
