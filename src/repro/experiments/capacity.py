"""Capacity: delivery rate vs offered load under the collision MAC.

The paper's case rests on disaster traffic being low-bandwidth; this
experiment asks how much of it the mesh actually carries.  Messages
arrive as a Poisson process between random building pairs and share
the air — past some load, interference erodes the delivery rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from functools import partial

from ..analysis import format_table
from ..buildgraph import NoRouteError
from ..sim import ConduitPolicy, SimParams, poisson_workload, simulate_traffic
from .common import World, WorldSpec
from .parallel import TrialRunner


@dataclass(frozen=True)
class CapacityPoint:
    """One offered-load level's outcome."""

    rate_per_s: float
    offered: int
    delivered: int
    collision_rate: float
    mean_delay_s: float | None

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.offered if self.offered else 0.0


def capacity_point(
    world: World,
    rate: float,
    duration_s: float = 20.0,
    seed: int = 0,
    jitter_s: float = 0.05,
) -> CapacityPoint:
    """Measure one offered-load level (self-contained per point, so
    points can run on any worker in any order)."""
    ids = [b.id for b in world.city.buildings if world.graph.aps_in_building(b.id)]

    def make_policy(src: int, dst: int):
        try:
            plan = world.router.plan(src, dst)
        except (NoRouteError, KeyError):
            return None
        return ConduitPolicy(plan.conduits, world.city)

    rng = random.Random(seed + 7)
    messages = poisson_workload(
        world.graph, ids, rate_per_s=rate, duration_s=duration_s,
        make_policy=make_policy, rng=rng,
    )
    result = simulate_traffic(
        world.graph, messages, rng,
        params=SimParams(jitter_s=jitter_s, max_sim_time_s=duration_s * 2),
    )
    delays = [
        o.delivery_time_s
        for o in result.outcomes.values()
        if o.delivered and o.delivery_time_s is not None
    ]
    return CapacityPoint(
        rate_per_s=rate,
        offered=result.offered,
        delivered=result.delivered,
        collision_rate=result.collision_rate,
        mean_delay_s=sum(delays) / len(delays) if delays else None,
    )


def run_capacity_sweep(
    city_name: str = "gridport",
    rates: tuple[float, ...] = (0.5, 2.0, 8.0),
    duration_s: float = 20.0,
    seed: int = 0,
    jitter_s: float = 0.05,
    world: World | None = None,
    runner: TrialRunner | None = None,
) -> list[CapacityPoint]:
    """Sweep offered load and measure the capacity curve.

    Each rate point is an independent simulation; with a parallel
    ``runner`` the points fan out over workers (rebuilding the world
    from its spec per process) and come back in ``rates`` order.
    """
    runner = runner or TrialRunner()
    fn = partial(capacity_point, duration_s=duration_s, seed=seed, jitter_s=jitter_s)
    if world is None:
        return runner.map(fn, list(rates), spec=WorldSpec(city_name, seed=seed))
    return runner.map(fn, list(rates), spec=world.spec, world=world)


def format_capacity(points: list[CapacityPoint]) -> str:
    """Capacity-sweep table."""
    return format_table(
        ["offered rate (msg/s)", "messages", "delivery rate", "collision rate", "mean delay (ms)"],
        [
            [
                p.rate_per_s,
                p.offered,
                p.delivery_rate,
                p.collision_rate,
                p.mean_delay_s * 1000 if p.mean_delay_s is not None else "-",
            ]
            for p in points
        ],
        title=(
            "Capacity: delivery rate vs offered load under the collision MAC\n"
            "(Poisson arrivals between random building pairs, shared air)"
        ),
    )
