"""Capacity: delivery rate vs offered load under the collision MAC.

The paper's case rests on disaster traffic being low-bandwidth; this
experiment asks how much of it the mesh actually carries.  Messages
arrive as a Poisson process between random building pairs and share
the air — past some load, interference erodes the delivery rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis import format_table
from ..buildgraph import NoRouteError
from ..sim import ConduitPolicy, SimParams, poisson_workload, simulate_traffic
from .common import World, build_world


@dataclass(frozen=True)
class CapacityPoint:
    """One offered-load level's outcome."""

    rate_per_s: float
    offered: int
    delivered: int
    collision_rate: float
    mean_delay_s: float | None

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.offered if self.offered else 0.0


def run_capacity_sweep(
    city_name: str = "gridport",
    rates: tuple[float, ...] = (0.5, 2.0, 8.0),
    duration_s: float = 20.0,
    seed: int = 0,
    jitter_s: float = 0.05,
    world: World | None = None,
) -> list[CapacityPoint]:
    """Sweep offered load and measure the capacity curve."""
    if world is None:
        world = build_world(city_name, seed=seed)
    ids = [b.id for b in world.city.buildings if world.graph.aps_in_building(b.id)]

    def make_policy(src: int, dst: int):
        try:
            plan = world.router.plan(src, dst)
        except (NoRouteError, KeyError):
            return None
        return ConduitPolicy(plan.conduits, world.city)

    points = []
    for rate in rates:
        rng = random.Random(seed + 7)
        messages = poisson_workload(
            world.graph, ids, rate_per_s=rate, duration_s=duration_s,
            make_policy=make_policy, rng=rng,
        )
        result = simulate_traffic(
            world.graph, messages, rng,
            params=SimParams(jitter_s=jitter_s, max_sim_time_s=duration_s * 2),
        )
        delays = [
            o.delivery_time_s
            for o in result.outcomes.values()
            if o.delivered and o.delivery_time_s is not None
        ]
        points.append(
            CapacityPoint(
                rate_per_s=rate,
                offered=result.offered,
                delivered=result.delivered,
                collision_rate=result.collision_rate,
                mean_delay_s=sum(delays) / len(delays) if delays else None,
            )
        )
    return points


def format_capacity(points: list[CapacityPoint]) -> str:
    """Capacity-sweep table."""
    return format_table(
        ["offered rate (msg/s)", "messages", "delivery rate", "collision rate", "mean delay (ms)"],
        [
            [
                p.rate_per_s,
                p.offered,
                p.delivery_rate,
                p.collision_rate,
                p.mean_delay_s * 1000 if p.mean_delay_s is not None else "-",
            ]
            for p in points
        ],
        title=(
            "Capacity: delivery rate vs offered load under the collision MAC\n"
            "(Poisson arrivals between random building pairs, shared air)"
        ),
    )
