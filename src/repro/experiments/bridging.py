"""Island bridging: §4's "small number of well-placed APs" claim.

For a fractured city, measure reachability before bridging, run the
greedy bridge planner, and measure again — quantifying how few APs it
takes to reconnect the islands.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis import format_table
from ..mesh import apply_bridges, bridge_all_islands, find_islands
from .common import World, build_world, sample_building_pairs


@dataclass(frozen=True)
class BridgingResult:
    """Before/after reachability for one city."""

    city: str
    islands_before: int
    islands_after: int
    new_aps: int
    reachability_before: float
    reachability_after: float
    pairs_tested: int


def run_bridging(
    city_name: str = "riverton",
    seed: int = 0,
    pairs: int = 200,
    min_island_size: int = 5,
    world: World | None = None,
) -> BridgingResult:
    """Bridge a fractured city and measure the reachability gain."""
    if world is None:
        world = build_world(city_name, seed=seed)
    rng = random.Random(seed + 4)
    pair_list = sample_building_pairs(world, pairs, rng)

    def reachability(graph) -> float:
        ok = sum(1 for s, d in pair_list if graph.buildings_reachable(s, d))
        return ok / len(pair_list) if pair_list else 0.0

    before = reachability(world.graph)
    islands_before = len(find_islands(world.graph, min_size=min_island_size))
    plans, new_aps = bridge_all_islands(world.graph, min_island_size=min_island_size)
    bridged = apply_bridges(world.graph, new_aps)
    after = reachability(bridged)
    islands_after = len(find_islands(bridged, min_size=min_island_size))
    return BridgingResult(
        city=world.city.name,
        islands_before=islands_before,
        islands_after=islands_after,
        new_aps=len(new_aps),
        reachability_before=before,
        reachability_after=after,
        pairs_tested=len(pair_list),
    )


def format_bridging(results: list[BridgingResult]) -> str:
    """Bridging table across cities."""
    return format_table(
        [
            "city",
            "islands before",
            "islands after",
            "new APs",
            "reachability before",
            "reachability after",
        ],
        [
            [
                r.city,
                r.islands_before,
                r.islands_after,
                r.new_aps,
                r.reachability_before,
                r.reachability_after,
            ]
            for r in results
        ],
        title=(
            "§4 bridging: 'a small number of well-placed APs would serve to "
            "bridge connectivity between these islands'"
        ),
    )
