"""Predictor calibration: does the map really predict AP connectivity?

The paper's core bet is that a building graph derived from footprints
alone predicts which buildings' APs can hear each other.  This
experiment measures that bet directly on the ground truth:

- **precision**: the fraction of predicted building edges that carry at
  least one actual AP-AP link,
- **recall**: the fraction of actual inter-building AP links whose
  building pair the graph predicted,
- the link rate per footprint-gap bin, which shows *where* prediction
  quality comes from (and why the density-derived margin exists).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import format_table
from .common import World, build_world


@dataclass(frozen=True)
class GapBin:
    """Actual link rate for predicted edges in one footprint-gap bin."""

    lo: float
    hi: float
    edges: int
    linked: int

    @property
    def link_rate(self) -> float:
        return self.linked / self.edges if self.edges else 0.0


@dataclass(frozen=True)
class CalibrationResult:
    """Precision/recall of the building-graph predictor."""

    city: str
    predicted_edges: int
    predicted_with_link: int
    actual_pairs: int
    actual_predicted: int
    bins: tuple[GapBin, ...]

    @property
    def precision(self) -> float:
        return (
            self.predicted_with_link / self.predicted_edges
            if self.predicted_edges
            else 0.0
        )

    @property
    def recall(self) -> float:
        return self.actual_predicted / self.actual_pairs if self.actual_pairs else 0.0


def _actual_building_links(world: World) -> set[tuple[int, int]]:
    """Unordered building pairs with at least one real AP-AP link."""
    pairs: set[tuple[int, int]] = set()
    for ap in world.graph.aps:
        for other in world.graph.neighbors(ap.id):
            b1 = ap.building_id
            b2 = world.graph.aps[other].building_id
            if b1 != b2:
                pairs.add((min(b1, b2), max(b1, b2)))
    return pairs


def run_calibration(
    city_name: str = "gridport",
    seed: int = 0,
    bin_width: float = 10.0,
    world: World | None = None,
) -> CalibrationResult:
    """Measure the predictor's precision/recall on one realisation."""
    if world is None:
        world = build_world(city_name, seed=seed)
    actual = _actual_building_links(world)
    city = world.city
    bg = world.building_graph

    predicted: set[tuple[int, int]] = set()
    for b in city.buildings:
        if b.id not in bg:
            continue
        for n in bg.neighbors(b.id):
            predicted.add((min(b.id, n), max(b.id, n)))

    buckets: dict[int, list[bool]] = {}
    hits = 0
    for b1, b2 in predicted:
        gap = city.building(b1).polygon.distance_to_polygon(city.building(b2).polygon)
        linked = (b1, b2) in actual
        hits += linked
        buckets.setdefault(int(gap // bin_width), []).append(linked)

    bins = tuple(
        GapBin(
            lo=k * bin_width,
            hi=(k + 1) * bin_width,
            edges=len(v),
            linked=sum(v),
        )
        for k, v in sorted(buckets.items())
    )
    return CalibrationResult(
        city=city.name,
        predicted_edges=len(predicted),
        predicted_with_link=hits,
        actual_pairs=len(actual),
        actual_predicted=len(actual & predicted),
        bins=bins,
    )


def format_calibration(result: CalibrationResult) -> str:
    """Calibration summary plus the per-gap link-rate curve."""
    header = (
        f"Predictor calibration ({result.city}): "
        f"precision {result.precision:.2f} "
        f"({result.predicted_with_link}/{result.predicted_edges} predicted edges "
        f"carry a real link), recall {result.recall:.2f} "
        f"({result.actual_predicted}/{result.actual_pairs} real links predicted)"
    )
    table = format_table(
        ["footprint gap (m)", "predicted edges", "actual-link rate"],
        [[f"{b.lo:.0f}-{b.hi:.0f}", b.edges, b.link_rate] for b in result.bins],
    )
    return header + "\n" + table
