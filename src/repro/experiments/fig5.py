"""Figure 5: a downtown section's footprints and its populated AP mesh."""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..city import grid_downtown
from ..mesh import APGraph, place_aps
from ..viz import render_city, render_mesh
from .common import PAPER_AP_DENSITY, PAPER_TRANSMISSION_RANGE


@dataclass
class Fig5Result:
    """The rendered figure plus the quantities it depicts."""

    footprints_art: str
    mesh_art: str
    building_count: int
    ap_count: int
    link_count: int
    largest_component_fraction: float


def run_fig5(
    seed: int = 0,
    blocks: int = 6,
    transmission_range: float = PAPER_TRANSMISSION_RANGE,
    ap_density: float = PAPER_AP_DENSITY,
    width_chars: int = 100,
) -> Fig5Result:
    """Regenerate Figure 5 on a downtown section.

    (a) building footprints; (b) APs placed at 1 AP / 200 m² and
    interconnected where closer than 50 m, exactly the paper's caption.
    """
    city = grid_downtown(seed=seed, blocks_x=blocks, blocks_y=blocks, name="downtown-section")
    aps = place_aps(city, density=ap_density, rng=random.Random(seed))
    graph = APGraph(aps, transmission_range=transmission_range)
    components = graph.components()
    largest = len(components[0]) / len(aps) if aps else 0.0
    return Fig5Result(
        footprints_art=render_city(city, width_chars=width_chars),
        mesh_art=render_mesh(city, graph, width_chars=width_chars),
        building_count=len(city),
        ap_count=len(aps),
        link_count=graph.edge_count(),
        largest_component_fraction=largest,
    )


def format_fig5(result: Fig5Result) -> str:
    """Both panels plus the headline statistics."""
    stats = (
        f"Figure 5: {result.building_count} buildings, {result.ap_count} APs, "
        f"{result.link_count} links; largest component holds "
        f"{result.largest_component_fraction:.0%} of APs"
    )
    return "\n\n".join([stats, "(a) footprints:", result.footprints_art, "(b) AP mesh:", result.mesh_art])
