"""§4's header-size numbers: the compressed source route in bits.

The paper reports a median of 175 and a 90th percentile of 225 bits
for the compressed route in "a typical city simulation".  Those
numbers presuppose a metropolitan id space (~10^5 buildings → 17-bit
ids) and routes of roughly ten waypoints; we therefore sample routes
across our city presets with the metro id space enabled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis import format_table, percentile
from ..buildgraph import NoRouteError
from ..city import metro_city
from .common import build_world_from_city, sample_building_pairs

PAPER_MEDIAN_BITS = 175
PAPER_P90_BITS = 225


@dataclass(frozen=True)
class HeaderStats:
    """Route-bit statistics over sampled routes."""

    routes_sampled: int
    median_bits: float
    p90_bits: float
    median_waypoints: float
    median_route_buildings: float
    median_compression_ratio: float


def run_header_stats(
    seed: int = 0,
    pairs: int = 150,
    metro_blocks: int = 18,
    metro_parks: int = 5,
) -> HeaderStats:
    """Sample city-scale routes and measure encoded header sizes.

    Routes are planned in a large downtown with scattered parks
    (:func:`repro.city.metro_city`), giving multi-kilometre routes that
    bend around obstacles — the paper's "typical city simulation"
    regime.
    """
    world = build_world_from_city(
        metro_city(seed=seed, blocks=metro_blocks, parks=metro_parks),
        seed=seed,
        metro_id_space=True,
    )
    bits: list[float] = []
    waypoints: list[float] = []
    route_lengths: list[float] = []
    rng = random.Random(seed + 3)
    for s, d in sample_building_pairs(world, pairs, rng):
        try:
            plan = world.router.plan(s, d)
        except (NoRouteError, KeyError):
            continue
        if len(plan.route) < 2:
            continue
        bits.append(plan.route_bits)
        waypoints.append(len(plan.waypoint_ids))
        route_lengths.append(len(plan.route))
    if not bits:
        raise RuntimeError("no routable pairs found for header statistics")
    ratios = [r / w for r, w in zip(route_lengths, waypoints)]
    return HeaderStats(
        routes_sampled=len(bits),
        median_bits=percentile(bits, 50),
        p90_bits=percentile(bits, 90),
        median_waypoints=percentile(waypoints, 50),
        median_route_buildings=percentile(route_lengths, 50),
        median_compression_ratio=percentile(ratios, 50),
    )


def format_header_stats(stats: HeaderStats) -> str:
    """Paper-vs-measured summary table."""
    return format_table(
        ["metric", "measured", "paper"],
        [
            ["median compressed-route bits", stats.median_bits, PAPER_MEDIAN_BITS],
            ["90%ile compressed-route bits", stats.p90_bits, PAPER_P90_BITS],
            ["median waypoints per route", stats.median_waypoints, "-"],
            ["median buildings per route", stats.median_route_buildings, "-"],
            ["median compression ratio", stats.median_compression_ratio, "-"],
            ["routes sampled", stats.routes_sampled, "-"],
        ],
        title="§4 header sizes: compressed source route (17-bit metro ids)",
    )
