"""Baseline comparison: CityMesh vs flooding, gossip, greedy, GPSR, AODV.

The paper's related-work section argues traditional schemes either
flood control traffic (MANET protocols) or degrade in cities
(geographic routing).  This experiment puts numbers on that argument
using the common outcome interface.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis import format_table, mean, percentile
from ..baselines import (
    aodv,
    gabriel_graph,
    gpsr,
    greedy_geographic,
    oracle_unicast,
    run_citymesh,
    run_flood,
    run_gossip,
)
from .common import World, build_world, sample_building_pairs


@dataclass(frozen=True)
class SchemeSummary:
    """Aggregate metrics for one scheme over the shared pair sample."""

    scheme: str
    delivered: int
    attempted: int
    mean_total_tx: float | None
    median_overhead: float | None

    @property
    def deliverability(self) -> float:
        return self.delivered / self.attempted if self.attempted else 0.0


def run_baseline_comparison(
    city_name: str = "gridport",
    seed: int = 0,
    pairs: int = 30,
    gossip_p: float = 0.7,
    world: World | None = None,
) -> list[SchemeSummary]:
    """Run every scheme on the same reachable pairs."""
    if world is None:
        world = build_world(city_name, seed=seed)
    rng = random.Random(seed + 8)
    pair_list = [
        (s, d)
        for s, d in sample_building_pairs(world, pairs, rng)
        if world.graph.buildings_reachable(s, d)
    ]
    planar = gabriel_graph(world.graph)
    outcomes: dict[str, list] = {}
    ideals: list[int] = []
    for s, d in pair_list:
        source_ap = world.graph.aps_in_building(s)[0]
        dest_centroid = world.city.building(d).centroid()
        ideal = world.graph.min_hops_to_building(source_ap, d) or 0
        ideals.append(ideal)
        per_scheme = [
            run_citymesh(world.city, world.graph, world.router, source_ap, d, rng),
            run_flood(world.graph, source_ap, d, rng),
            run_gossip(world.graph, source_ap, d, gossip_p, rng),
            greedy_geographic(world.graph, source_ap, d, dest_centroid, count_beacons=True),
            gpsr(world.graph, source_ap, d, dest_centroid, planar=planar, count_beacons=True),
            aodv(world.graph, source_ap, d),
            oracle_unicast(world.graph, source_ap, d),
        ]
        for outcome in per_scheme:
            outcomes.setdefault(outcome.scheme, []).append((outcome, ideal))

    summaries = []
    for scheme, results in outcomes.items():
        delivered = [o for o, _ in results if o.delivered]
        overheads = [
            o.overhead_vs(ideal)
            for o, ideal in results
            if o.delivered and ideal > 0 and o.overhead_vs(ideal) is not None
        ]
        summaries.append(
            SchemeSummary(
                scheme=scheme,
                delivered=len(delivered),
                attempted=len(results),
                mean_total_tx=(
                    mean([o.total_transmissions for o in delivered]) if delivered else None
                ),
                median_overhead=percentile(overheads, 50) if overheads else None,
            )
        )
    return summaries


def format_baselines(summaries: list[SchemeSummary]) -> str:
    """Baseline comparison table."""
    return format_table(
        ["scheme", "deliverability", "mean tx (incl. control)", "median overhead"],
        [
            [
                s.scheme,
                s.deliverability,
                s.mean_total_tx if s.mean_total_tx is not None else "-",
                s.median_overhead if s.median_overhead is not None else "-",
            ]
            for s in summaries
        ],
        title="Baseline comparison on identical reachable pairs",
    )
