"""Figure 7: a single simulated delivery, rendered."""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core import RoutePlan
from ..sim import BroadcastResult, ConduitPolicy, simulate_broadcast
from ..viz import render_simulation
from .common import World, build_world


@dataclass
class Fig7Result:
    """One delivery's rendering and accounting."""

    art: str
    plan: RoutePlan
    result: BroadcastResult
    conduit_ap_count: int
    silent_ap_count: int


def run_fig7(
    seed: int = 0,
    city_name: str = "gridport",
    world: World | None = None,
    width_chars: int = 110,
) -> Fig7Result:
    """Regenerate Figure 7: route, conduit rebroadcasters, silent APs.

    Picks the first sampled pair that is reachable and routable so the
    figure shows a successful delivery, like the paper's.
    """
    if world is None:
        world = build_world(city_name, seed=seed)
    rng = random.Random(seed + 10)
    ids = [b.id for b in world.city.buildings if world.graph.aps_in_building(b.id)]
    for _ in range(50):
        s, d = rng.sample(ids, 2)
        if not world.graph.buildings_reachable(s, d):
            continue
        try:
            plan = world.router.plan(s, d)
        except Exception:
            continue
        if len(plan.route) < 8:
            continue  # pick a route long enough to be interesting
        policy = ConduitPolicy(plan.conduits, world.city)
        source_ap = world.graph.aps_in_building(s)[0]
        result = simulate_broadcast(world.graph, source_ap, d, policy, rng)
        if result.delivered:
            art = render_simulation(world.city, world.graph, plan, result, width_chars)
            return Fig7Result(
                art=art,
                plan=plan,
                result=result,
                conduit_ap_count=len(result.transmitters),
                silent_ap_count=len(result.heard) - len(result.transmitters),
            )
    raise RuntimeError("no successful delivery found to render (try another seed)")
