"""Table 1: summary of the (simulated) war-driving measurements."""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import format_table
from ..measurement import ScanDataset, run_study, table1_row
from .parallel import TrialRunner

PAPER_TABLE1 = {
    "downtown": (2691, 26532),
    "campus": (726, 2399),
    "residential": (461, 10333),
    "river": (550, 4794),
}


@dataclass(frozen=True)
class Table1Row:
    """One dataset's summary, paired with the paper's numbers."""

    area: str
    measurements: int
    unique_aps: int
    paper_measurements: int
    paper_unique_aps: int


def run_table1(
    seed: int = 0,
    datasets: list[ScanDataset] | None = None,
    runner: TrialRunner | None = None,
) -> list[Table1Row]:
    """Regenerate Table 1 (running the full study unless given data).

    The four area surveys are independent; a parallel ``runner`` fans
    them out over workers with identical (worker-count-invariant)
    results.
    """
    if datasets is None:
        datasets = run_study(seed=seed, runner=runner)
    rows = []
    total_meas = 0
    total_aps = 0
    for ds in datasets:
        area, measurements, unique = table1_row(ds)
        paper = PAPER_TABLE1.get(area, (0, 0))
        rows.append(
            Table1Row(
                area=area,
                measurements=measurements,
                unique_aps=unique,
                paper_measurements=paper[0],
                paper_unique_aps=paper[1],
            )
        )
        total_meas += measurements
        total_aps += unique
    rows.append(
        Table1Row(
            area="all",
            measurements=total_meas,
            unique_aps=total_aps,
            paper_measurements=4428,
            paper_unique_aps=40158,
        )
    )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Paper-style rendering with paper-vs-measured columns."""
    return format_table(
        ["Dataset", "# Measurements", "# Unique APs", "paper #Meas", "paper #APs"],
        [
            [r.area, r.measurements, r.unique_aps, r.paper_measurements, r.paper_unique_aps]
            for r in rows
        ],
        title="Table 1: Summary of collected data for measurements",
    )
