"""Ablations over CityMesh's design choices.

DESIGN.md calls out four knobs the paper fixes by fiat: the conduit
width W (50 m), the cubed-distance edge weights, the AP density
(1/200 m²), and building-level conduit membership.  Each sweep here
quantifies what that choice buys.

All sweeps run their delivery trials through a
:class:`~repro.experiments.parallel.TrialRunner` with one
deterministic seed per trial, so a sweep parallelised over workers
returns exactly the serial result.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis import format_table, percentile
from ..buildgraph import NoRouteError
from ..sim import ConduitPolicy, simulate_broadcast
from ..sim.broadcast import PositionConduitPolicy
from .common import DeliveryResult, World, build_world, sample_building_pairs
from .parallel import DeliveryTrial, TrialRunner, delivery_trials


@dataclass(frozen=True)
class SweepPoint:
    """One parameter setting's delivery metrics."""

    parameter: float
    delivered: int
    attempted: int
    median_overhead: float | None

    @property
    def deliverability(self) -> float:
        return self.delivered / self.attempted if self.attempted else 0.0


def _aggregate(outcomes: list[DeliveryResult]) -> SweepPoint:
    delivered = 0
    overheads = []
    attempted = 0
    for outcome in outcomes:
        if not outcome.reachable:
            continue
        attempted += 1
        if outcome.delivered:
            delivered += 1
            if outcome.overhead is not None:
                overheads.append(outcome.overhead)
    return SweepPoint(
        parameter=0.0,
        delivered=delivered,
        attempted=attempted,
        median_overhead=percentile(overheads, 50) if overheads else None,
    )


def sweep_conduit_width(
    city_name: str = "parkside",
    widths: tuple[float, ...] = (25.0, 50.0, 75.0, 100.0, 150.0),
    seed: int = 0,
    pairs: int = 40,
    runner: TrialRunner | None = None,
) -> list[SweepPoint]:
    """Deliverability and overhead vs conduit width W."""
    runner = runner or TrialRunner()
    points = []
    for width in widths:
        world = build_world(city_name, seed=seed, conduit_width=width)
        rng = random.Random(seed + 5)
        pair_list = sample_building_pairs(world, pairs, rng)
        outcomes = runner.run_deliveries(
            world, delivery_trials(pair_list, base_seed=seed + 5)
        )
        point = _aggregate(outcomes)
        points.append(
            SweepPoint(width, point.delivered, point.attempted, point.median_overhead)
        )
    return points


def sweep_weight_exponent(
    city_name: str = "gridport",
    exponents: tuple[float, ...] = (1.0, 2.0, 3.0),
    seed: int = 0,
    pairs: int = 40,
    runner: TrialRunner | None = None,
) -> list[SweepPoint]:
    """Deliverability vs the edge-weight exponent (paper: cubed)."""
    runner = runner or TrialRunner()
    points = []
    for exponent in exponents:
        world = build_world(city_name, seed=seed, weight_exponent=exponent)
        rng = random.Random(seed + 5)
        pair_list = sample_building_pairs(world, pairs, rng)
        outcomes = runner.run_deliveries(
            world, delivery_trials(pair_list, base_seed=seed + 5)
        )
        point = _aggregate(outcomes)
        points.append(
            SweepPoint(exponent, point.delivered, point.attempted, point.median_overhead)
        )
    return points


def sweep_ap_density(
    city_name: str = "gridport",
    densities: tuple[float, ...] = (1 / 400, 1 / 300, 1 / 200, 1 / 100, 1 / 50),
    seed: int = 0,
    pairs: int = 40,
    runner: TrialRunner | None = None,
) -> list[SweepPoint]:
    """Reachability+deliverability vs AP density (paper: 1/200 m²).

    Sweep points report the density as square metres per AP (so the
    paper's reference setting reads as 200).
    """
    runner = runner or TrialRunner()
    points = []
    for density in densities:
        world = build_world(city_name, seed=seed, ap_density=density)
        rng = random.Random(seed + 5)
        pair_list = sample_building_pairs(world, pairs, rng)
        outcomes = runner.run_deliveries(
            world, delivery_trials(pair_list, base_seed=seed + 5)
        )
        delivered = 0
        overheads = []
        for outcome in outcomes:
            if outcome.delivered:
                delivered += 1
                if outcome.overhead is not None:
                    overheads.append(outcome.overhead)
        points.append(
            SweepPoint(
                parameter=round(1.0 / density, 1),  # m^2 per AP: readable
                delivered=delivered,
                attempted=len(pair_list),  # unconditional: density gates reachability
                median_overhead=percentile(overheads, 50) if overheads else None,
            )
        )
    return points


@dataclass(frozen=True)
class MembershipComparison:
    """Building-level vs AP-position conduit membership."""

    building_delivered: int
    position_delivered: int
    attempted: int
    building_median_tx: float | None
    position_median_tx: float | None


def membership_trial(
    world: World, trial: DeliveryTrial
) -> tuple[bool, int, bool, int] | None:
    """Simulate one pair under both membership rules.

    Returns ``(building_delivered, building_tx, position_delivered,
    position_tx)``, or None when the pair is unreachable or unroutable.
    Module-level so :class:`TrialRunner` can ship it to workers.
    """
    s, d = trial.src_building, trial.dst_building
    if not world.graph.buildings_reachable(s, d):
        return None
    try:
        plan = world.router.plan(s, d)
    except (NoRouteError, KeyError):
        return None
    source_ap = world.graph.aps_in_building(s)[0]
    rng = random.Random(trial.seed)
    building_result = simulate_broadcast(
        world.graph, source_ap, d, ConduitPolicy(plan.conduits, world.city), rng
    )
    position_result = simulate_broadcast(
        world.graph, source_ap, d, PositionConduitPolicy(plan.conduits), rng
    )
    return (
        building_result.delivered,
        building_result.transmissions,
        position_result.delivered,
        position_result.transmissions,
    )


def compare_membership(
    city_name: str = "gridport",
    seed: int = 0,
    pairs: int = 40,
    runner: TrialRunner | None = None,
) -> MembershipComparison:
    """§4 attributes the 13x overhead to whole-building rebroadcast;
    this measures what the stricter AP-position rule would do."""
    runner = runner or TrialRunner()
    world = build_world(city_name, seed=seed)
    rng = random.Random(seed + 5)
    pair_list = sample_building_pairs(world, pairs, rng)
    if runner.workers == 1:
        # Batched prewarm: one Dijkstra tree per distinct source; the
        # per-pair router.plan() calls then hit the route cache.  (With
        # workers, each process plans its own chunk instead.)
        world.building_graph.plan_routes(pair_list)
    trials = delivery_trials(pair_list, base_seed=seed + 5)
    results = runner.map(membership_trial, trials, spec=world.spec, world=world)
    b_delivered = p_delivered = attempted = 0
    b_tx: list[float] = []
    p_tx: list[float] = []
    for result in results:
        if result is None:
            continue
        attempted += 1
        building_delivered, building_tx, position_delivered, position_tx = result
        if building_delivered:
            b_delivered += 1
            b_tx.append(building_tx)
        if position_delivered:
            p_delivered += 1
            p_tx.append(position_tx)
    return MembershipComparison(
        building_delivered=b_delivered,
        position_delivered=p_delivered,
        attempted=attempted,
        building_median_tx=percentile(b_tx, 50) if b_tx else None,
        position_median_tx=percentile(p_tx, 50) if p_tx else None,
    )


def format_sweep(points: list[SweepPoint], parameter_name: str, title: str) -> str:
    """Generic sweep table."""
    return format_table(
        [parameter_name, "deliverability", "median overhead", "delivered/attempted"],
        [
            [
                p.parameter,
                p.deliverability,
                p.median_overhead if p.median_overhead is not None else "-",
                f"{p.delivered}/{p.attempted}",
            ]
            for p in points
        ],
        title=title,
    )
