"""Figure 2: common APs observed by measurement pairs vs their distance."""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import WhiskerBin, format_table
from ..measurement import ScanDataset, common_ap_bins, run_study


@dataclass(frozen=True)
class Fig2Area:
    """Figure 2's whisker bins for one area."""

    area: str
    bins: list[WhiskerBin]


def run_fig2(
    seed: int = 0,
    datasets: list[ScanDataset] | None = None,
    bin_width: float = 50.0,
    max_distance: float = 400.0,
    stride: int = 2,
) -> list[Fig2Area]:
    """Regenerate the Figure 2 distributions for every area.

    ``stride`` subsamples scans before the quadratic pair enumeration;
    2 keeps the downtown dataset tractable while preserving the
    distribution shape.
    """
    if datasets is None:
        datasets = run_study(seed=seed)
    return [
        Fig2Area(
            area=ds.area,
            bins=common_ap_bins(
                ds, bin_width=bin_width, max_distance=max_distance, stride=stride
            ),
        )
        for ds in datasets
    ]


def format_fig2(areas: list[Fig2Area]) -> str:
    """Whisker table (10/25/50/75/100 percentiles per distance bin)."""
    rows = []
    for area in areas:
        for b in area.bins:
            rows.append(
                [area.area, f"{b.lo:.0f}-{b.hi:.0f}", b.count, b.p10, b.p25, b.p50, b.p75, b.p100]
            )
    return format_table(
        ["area", "distance bin (m)", "pairs", "p10", "p25", "p50", "p75", "max"],
        rows,
        title=(
            "Figure 2: # APs observed in common vs distance between "
            "measurement pairs\n"
            "paper: many common APs at <100 m, a significant number beyond "
            "100 m (especially downtown)"
        ),
    )


def common_beyond(area: Fig2Area, distance: float) -> int:
    """Pairs beyond ``distance`` that still share at least one AP —
    the paper's mutual-visibility claim at a given separation."""
    total = 0
    for b in area.bins:
        if b.lo >= distance and b.p50 > 0:
            total += b.count
    return total
