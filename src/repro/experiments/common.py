"""Shared experiment harness: build worlds, sample pairs, run deliveries."""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..buildgraph import BuildingGraph, NoRouteError, attach_hierarchy
from ..city import City, make_city
from ..core import BuildingRouter
from ..mesh import DEFAULT_AP_DENSITY, APGraph, place_aps
from ..sim import ConduitPolicy, SimParams, simulate_broadcast, transmission_overhead

# The paper's §4 evaluation settings.
PAPER_TRANSMISSION_RANGE = 50.0
PAPER_AP_DENSITY = DEFAULT_AP_DENSITY  # 1 AP / 200 m^2
PAPER_CONDUIT_WIDTH = 50.0
# A metropolitan map has ~10^5 buildings; our simulated section is a
# part of it, but devices cache (and encode ids against) the whole map.
METRO_BUILDING_ID_SPACE = 100_000


@dataclass
class World:
    """One fully built simulation world.

    ``spec`` records the recipe the world was built from when it came
    out of :func:`build_world`; parallel trial runners ship the spec to
    worker processes (worlds are expensive and full of cross-linked
    geometry — rebuilding from the spec is cheaper and deterministic).
    """

    city: City
    graph: APGraph
    building_graph: BuildingGraph
    router: BuildingRouter
    spec: "WorldSpec | None" = None


@dataclass(frozen=True)
class WorldSpec:
    """Everything needed to rebuild a preset-city world, hashably.

    The spec is the unit of identity for per-worker world caches: two
    equal specs build bit-identical worlds (all construction randomness
    flows from ``seed``).
    """

    city_name: str
    seed: int = 0
    transmission_range: float = PAPER_TRANSMISSION_RANGE
    ap_density: float = PAPER_AP_DENSITY
    conduit_width: float = PAPER_CONDUIT_WIDTH
    weight_exponent: float = 3.0
    metro_id_space: bool = False
    hierarchy: bool = False

    def build(self) -> World:
        """Materialise the world this spec describes."""
        world = build_world_from_city(
            make_city(self.city_name, seed=self.seed),
            seed=self.seed,
            transmission_range=self.transmission_range,
            ap_density=self.ap_density,
            conduit_width=self.conduit_width,
            weight_exponent=self.weight_exponent,
            metro_id_space=self.metro_id_space,
            hierarchy=self.hierarchy,
        )
        world.spec = self
        return world


def build_world(
    city_name: str,
    seed: int = 0,
    transmission_range: float = PAPER_TRANSMISSION_RANGE,
    ap_density: float = PAPER_AP_DENSITY,
    conduit_width: float = PAPER_CONDUIT_WIDTH,
    weight_exponent: float = 3.0,
    metro_id_space: bool = False,
    hierarchy: bool = False,
) -> World:
    """Build a preset city, its AP mesh, and a router."""
    return WorldSpec(
        city_name=city_name,
        seed=seed,
        transmission_range=transmission_range,
        ap_density=ap_density,
        conduit_width=conduit_width,
        weight_exponent=weight_exponent,
        metro_id_space=metro_id_space,
        hierarchy=hierarchy,
    ).build()


def build_world_from_city(
    city: City,
    seed: int = 0,
    transmission_range: float = PAPER_TRANSMISSION_RANGE,
    ap_density: float = PAPER_AP_DENSITY,
    conduit_width: float = PAPER_CONDUIT_WIDTH,
    weight_exponent: float = 3.0,
    metro_id_space: bool = False,
    hierarchy: bool = False,
) -> World:
    """Build the AP mesh and router for an already-constructed city.

    With ``hierarchy=True`` the building graph gets a metro hierarchy
    attached (:func:`repro.buildgraph.attach_hierarchy`): region
    partitioning is seeded from ``seed`` and the router plans through
    the contracted overlay, cost-identical to the flat planner.
    """
    aps = place_aps(city, density=ap_density, rng=random.Random(seed))
    graph = APGraph(aps, transmission_range=transmission_range)
    building_graph = BuildingGraph(
        city,
        transmission_range=transmission_range,
        weight_exponent=weight_exponent,
        ap_density=ap_density,
    )
    if hierarchy:
        attach_hierarchy(building_graph, seed=seed)
    router = BuildingRouter(
        city,
        graph=building_graph,
        conduit_width=conduit_width,
        max_building_id=METRO_BUILDING_ID_SPACE if metro_id_space else None,
    )
    return World(city=city, graph=graph, building_graph=building_graph, router=router)


def sample_building_pairs(
    world: World, count: int, rng: random.Random
) -> list[tuple[int, int]]:
    """Unique source/destination building pairs where both endpoints
    actually contain at least one AP (otherwise neither reachability
    nor delivery is defined)."""
    ids = [
        b.id for b in world.city.buildings if world.graph.aps_in_building(b.id)
    ]
    if len(ids) < 2:
        raise ValueError("city has too few AP-bearing buildings to sample pairs")
    total = len(ids) * (len(ids) - 1)
    if count > total:
        raise ValueError(
            f"asked for {count} pairs but the city only has {total} "
            "distinct AP-bearing ordered pairs"
        )
    pairs: set[tuple[int, int]] = set()
    attempts = 0
    while len(pairs) < count and attempts < count * 50:
        attempts += 1
        s, d = rng.sample(ids, 2)
        pairs.add((s, d))
    if len(pairs) < count:
        # The rejection budget ran out (tiny id pools spend it on
        # collisions).  Top up deterministically so the sweep size is
        # exactly what the experiment asked for.
        for s in ids:
            for d in ids:
                if s != d and (s, d) not in pairs:
                    pairs.add((s, d))
                    if len(pairs) == count:
                        break
            if len(pairs) == count:
                break
    return list(pairs)


@dataclass(frozen=True)
class DeliveryResult:
    """One CityMesh delivery attempt's metrics."""

    reachable: bool
    routed: bool
    delivered: bool
    transmissions: int
    overhead: float | None


def attempt_delivery(
    world: World,
    src_building: int,
    dst_building: int,
    rng: random.Random,
    params: SimParams | None = None,
) -> DeliveryResult:
    """Run the full CityMesh pipeline for one building pair."""
    reachable = world.graph.buildings_reachable(src_building, dst_building)
    if not reachable:
        return DeliveryResult(False, False, False, 0, None)
    try:
        plan = world.router.plan(src_building, dst_building)
    except (NoRouteError, KeyError):
        return DeliveryResult(True, False, False, 0, None)
    source_ap = world.graph.aps_in_building(src_building)[0]
    policy = ConduitPolicy(plan.conduits, world.city)
    result = simulate_broadcast(
        world.graph, source_ap, dst_building, policy, rng, params=params
    )
    overhead = transmission_overhead(world.graph, result, source_ap, dst_building)
    if overhead == float("inf"):
        overhead = None
    return DeliveryResult(
        reachable=True,
        routed=True,
        delivered=result.delivered,
        transmissions=result.transmissions,
        overhead=overhead,
    )
