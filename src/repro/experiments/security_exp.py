"""Security experiments: deliverability under compromised nodes.

§1 sets the bar: find a path whenever an honest path exists.  These
experiments measure how far plain CityMesh falls short under blackhole
compromise and how much the resilient retry (wider conduits + detour
routes) recovers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis import format_table
from ..buildgraph import NoRouteError
from ..security import honest_path_exists, random_compromise, resilient_send
from ..sim import ConduitPolicy, simulate_broadcast
from .common import World, build_world, sample_building_pairs


@dataclass(frozen=True)
class CompromisePoint:
    """Delivery rates at one compromise fraction."""

    fraction: float
    honest_possible: int
    plain_delivered: int
    resilient_delivered: int
    attempted: int

    @property
    def plain_rate(self) -> float:
        """Plain CityMesh deliveries over honest-possible pairs."""
        return self.plain_delivered / self.honest_possible if self.honest_possible else 0.0

    @property
    def resilient_rate(self) -> float:
        """Resilient-send deliveries over honest-possible pairs."""
        return (
            self.resilient_delivered / self.honest_possible if self.honest_possible else 0.0
        )


def run_compromise_sweep(
    city_name: str = "gridport",
    fractions: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3),
    seed: int = 0,
    pairs: int = 30,
    world: World | None = None,
) -> list[CompromisePoint]:
    """Deliverability vs fraction of randomly compromised APs.

    The denominator is the §1 criterion: pairs for which an honest
    path still exists at that compromise level.
    """
    if world is None:
        world = build_world(city_name, seed=seed)
    pair_rng = random.Random(seed + 6)
    pair_list = sample_building_pairs(world, pairs, pair_rng)
    points = []
    for fraction in fractions:
        comp_rng = random.Random(seed + int(fraction * 1000))
        compromised = random_compromise(world.graph, fraction, comp_rng)
        honest = plain = resilient = attempted = 0
        sim_rng = random.Random(seed + 9)
        for s, d in pair_list:
            src_aps = [
                a for a in world.graph.aps_in_building(s) if a not in compromised
            ]
            if not src_aps:
                continue
            attempted += 1
            source_ap = src_aps[0]
            if not honest_path_exists(world.graph, source_ap, d, compromised):
                continue
            honest += 1
            try:
                plan = world.router.plan(s, d)
            except (NoRouteError, KeyError):
                continue
            policy = ConduitPolicy(plan.conduits, world.city)
            plain_result = simulate_broadcast(
                world.graph, source_ap, d, policy, sim_rng, compromised=compromised
            )
            if plain_result.delivered:
                plain += 1
            report = resilient_send(
                world.city,
                world.graph,
                world.router,
                source_ap,
                d,
                sim_rng,
                compromised=compromised,
            )
            if report.delivered:
                resilient += 1
        points.append(
            CompromisePoint(
                fraction=fraction,
                honest_possible=honest,
                plain_delivered=plain,
                resilient_delivered=resilient,
                attempted=attempted,
            )
        )
    return points


@dataclass(frozen=True)
class AttackOutcome:
    """Deliverability under one attacker strategy at a fixed budget."""

    strategy: str
    budget: int
    delivered: int
    attempted: int

    @property
    def rate(self) -> float:
        return self.delivered / self.attempted if self.attempted else 0.0


def run_attack_comparison(
    city_name: str = "suburbia",
    budget: int = 15,
    seed: int = 0,
    pairs: int = 25,
    world: World | None = None,
) -> list[AttackOutcome]:
    """Compare attacker strategies at the same compromise budget.

    Strategies: ``random`` (uniform APs), ``targeted`` (APs on the most
    shortest paths — a topology-aware adversary), and ``articulation``
    (cut vertices first — an adversary that partitions the mesh).
    """
    from ..mesh import articulation_points
    from ..security import targeted_compromise

    if world is None:
        world = build_world(city_name, seed=seed)
    pair_rng = random.Random(seed + 11)
    pair_list = [
        (s, d)
        for s, d in sample_building_pairs(world, pairs, pair_rng)
        if world.graph.buildings_reachable(s, d)
    ]
    sample = [
        (world.graph.aps_in_building(s)[0], d) for s, d in pair_list
    ]

    articulation = list(articulation_points(world.graph))
    articulation.sort(key=lambda a: world.graph.degree(a), reverse=True)
    if len(articulation) < budget:
        # Pad with the highest-degree APs (hubs) once cuts run out.
        hubs = sorted(
            (ap.id for ap in world.graph.aps if ap.id not in set(articulation)),
            key=lambda a: world.graph.degree(a),
            reverse=True,
        )
        articulation.extend(hubs[: budget - len(articulation)])

    strategies = {
        "random": random_compromise(world.graph, budget / len(world.graph.aps),
                                    random.Random(seed + 12)),
        "targeted": targeted_compromise(world.graph, budget, sample),
        "articulation": frozenset(articulation[:budget]),
    }
    outcomes = []
    for name, compromised in strategies.items():
        sim_rng = random.Random(seed + 13)
        delivered = attempted = 0
        for s, d in pair_list:
            src_candidates = [
                a for a in world.graph.aps_in_building(s) if a not in compromised
            ]
            if not src_candidates:
                continue
            attempted += 1
            try:
                plan = world.router.plan(s, d)
            except (NoRouteError, KeyError):
                continue
            policy = ConduitPolicy(plan.conduits, world.city)
            result = simulate_broadcast(
                world.graph, src_candidates[0], d, policy, sim_rng,
                compromised=compromised,
            )
            delivered += result.delivered
        outcomes.append(
            AttackOutcome(
                strategy=name, budget=budget, delivered=delivered, attempted=attempted
            )
        )
    return outcomes


def format_attacks(outcomes: list[AttackOutcome]) -> str:
    """Attack-strategy comparison table."""
    return format_table(
        ["strategy", "budget (APs)", "deliverability", "delivered/attempted"],
        [
            [o.strategy, o.budget, o.rate, f"{o.delivered}/{o.attempted}"]
            for o in outcomes
        ],
        title="Attacker-strategy comparison at equal compromise budget",
    )


def format_compromise(points: list[CompromisePoint]) -> str:
    """Compromise-sweep table."""
    return format_table(
        [
            "compromised fraction",
            "honest-path pairs",
            "plain deliverability",
            "resilient deliverability",
        ],
        [
            [p.fraction, p.honest_possible, p.plain_rate, p.resilient_rate]
            for p in points
        ],
        title=(
            "Security: deliverability under blackhole compromise\n"
            "denominator = pairs where an honest path still exists (§1's bar)"
        ),
    )
