"""The §5 scaling argument, quantified: control traffic per node.

The paper's case against traditional protocols is that "any routing
protocol over wireless links that exchanges any form of keepalive or
routing information is likely to run into scaling and reliability
challenges" at city scale.  This module turns that argument into
numbers using each protocol's own control-message structure:

- **DSDV** (proactive distance-vector): periodic full-table dumps;
  table size grows with the network, so per-node control bytes are
  O(n) per period.
- **OLSR** (proactive link-state): HELLOs are local, but TC floods
  traverse every node; per-node forwarded TC bytes grow with n.
- **AODV** (reactive): every route discovery floods the network, so a
  node forwards O(arrival rate x n) RREQs regardless of who talks.
- **CityMesh**: zero control messages — nodes consult the cached map.
  The cost moved off the air into storage, so we also report the map
  cache per node (which is what actually scales with city size).

The model is first-order (protocol constants from the RFCs / papers,
no header compression or triggered-update optimisations), which is all
the comparison needs: the *growth rates* are the point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import format_table
from .parallel import TrialRunner

# Protocol constants (first-order, from the respective specifications).
DSDV_PERIOD_S = 15.0           # full-dump interval
DSDV_ENTRY_BYTES = 12          # destination, metric, sequence number
OLSR_HELLO_PERIOD_S = 2.0
OLSR_HELLO_BYTES = 60          # typical HELLO with ~10 neighbours
OLSR_TC_PERIOD_S = 5.0
OLSR_TC_BYTES = 40             # TC with MPR selector list
AODV_RREQ_BYTES = 24
MAP_BYTES_PER_BUILDING = 40    # id + compressed footprint summary
BUILDINGS_PER_NODE = 0.3       # buildings per AP at the paper's density


@dataclass(frozen=True)
class ScalingRow:
    """Per-node control load at one network size."""

    nodes: int
    dsdv_bytes_per_min: float
    olsr_bytes_per_min: float
    aodv_bytes_per_min: float
    citymesh_bytes_per_min: float
    citymesh_map_cache_mb: float


def control_load(
    nodes: int,
    route_requests_per_node_per_hour: float = 6.0,
) -> ScalingRow:
    """Per-node control traffic for a network of ``nodes`` APs.

    Args:
        nodes: network size.
        route_requests_per_node_per_hour: AODV workload assumption —
            how often each node needs a fresh route.

    Raises:
        ValueError: for a non-positive node count.
    """
    if nodes <= 0:
        raise ValueError("node count must be positive")
    # DSDV: each node broadcasts its full table every period; every
    # node also receives/forwards its neighbours' dumps, but the
    # dominant per-node term is the table itself.
    dsdv = (nodes * DSDV_ENTRY_BYTES) / DSDV_PERIOD_S * 60.0
    # OLSR: HELLO (local, constant) + TC floods: every node forwards
    # every other node's TC once per period.
    olsr = (
        OLSR_HELLO_BYTES / OLSR_HELLO_PERIOD_S
        + nodes * OLSR_TC_BYTES / OLSR_TC_PERIOD_S / 60.0  # TCs are MPR-damped ~60x
    ) * 60.0
    # AODV: each discovery floods all n nodes, so each node forwards
    # (total discoveries / n) * n = total discoveries... per node the
    # forwarded share is one RREQ per network-wide discovery.
    discoveries_per_min = nodes * route_requests_per_node_per_hour / 60.0
    aodv = discoveries_per_min * AODV_RREQ_BYTES
    # CityMesh: zero control bytes on the air; the map cache scales
    # with the city, not with traffic.
    map_mb = nodes * BUILDINGS_PER_NODE * MAP_BYTES_PER_BUILDING / 1e6
    return ScalingRow(
        nodes=nodes,
        dsdv_bytes_per_min=dsdv,
        olsr_bytes_per_min=olsr,
        aodv_bytes_per_min=aodv,
        citymesh_bytes_per_min=0.0,
        citymesh_map_cache_mb=map_mb,
    )


def run_scaling(
    sizes: tuple[int, ...] = (1_000, 10_000, 100_000, 1_000_000),
    runner: TrialRunner | None = None,
) -> list[ScalingRow]:
    """The §5 scaling table across network sizes.

    Each size is independent, so the rows run through the shared trial
    runner (in-process by default; rows return in ``sizes`` order for
    any worker count).
    """
    return (runner or TrialRunner()).map(control_load, list(sizes))


def format_scaling(rows: list[ScalingRow]) -> str:
    """Scaling table (control bytes per node per minute)."""
    return format_table(
        [
            "nodes",
            "DSDV B/min",
            "OLSR B/min",
            "AODV B/min",
            "CityMesh B/min",
            "CityMesh map (MB)",
        ],
        [
            [
                r.nodes,
                r.dsdv_bytes_per_min,
                r.olsr_bytes_per_min,
                r.aodv_bytes_per_min,
                r.citymesh_bytes_per_min,
                r.citymesh_map_cache_mb,
            ]
            for r in rows
        ],
        title=(
            "§5 scaling model: per-node control traffic vs network size\n"
            "(first-order protocol constants; CityMesh trades air-time "
            "control for a static map cache)"
        ),
    )
