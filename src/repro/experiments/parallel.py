"""Parallel trial harness for the experiment sweeps.

Every paper artifact is a sweep of independent trials: hundreds of
:func:`~repro.experiments.common.attempt_delivery` runs, one per
sampled building pair.  :class:`TrialRunner` fans those trials out over
``multiprocessing`` workers while keeping the output **independent of
the worker count**:

- trials are seeded individually via :func:`seed_for` (a stable
  keyed hash of ``(base_seed, trial_index)``) instead of sharing one
  sequential RNG, so a trial's randomness does not depend on which
  worker runs it or in which order;
- worlds never cross the process boundary — workers rebuild them from
  a hashable :class:`~repro.experiments.common.WorldSpec` (cheap and
  deterministic) and cache them per process, primed by the pool
  initializer;
- submission is chunked, and chunk results are merged back in
  submission order.

``workers=1`` (the default) runs everything in-process — no pool, no
pickling — which is the mode to debug under.  Timing and throughput
counters are exposed via :meth:`TrialRunner.stats`.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import random
import time
import traceback
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Iterable, Sequence

from ..obs import REGISTRY
from ..sim import SimParams
from .common import DeliveryResult, World, WorldSpec, attempt_delivery

_M_RUNS = REGISTRY.counter("trial_runner.runs")
_M_TRIALS = REGISTRY.counter("trial_runner.trials")
_M_RUN_S = REGISTRY.timer("trial_runner.run_s")
_M_TRIAL_S = REGISTRY.timer("trial_runner.trial_s")
_M_WORLD_HITS = REGISTRY.counter("trial_runner.world_cache_hits")
_M_WORLD_MISSES = REGISTRY.counter("trial_runner.world_cache_misses")


def seed_for(base_seed: int, trial_index: int, stream: str = "") -> int:
    """A deterministic, platform-stable 63-bit seed for one trial.

    Derived by hashing rather than by offsetting so that nearby trial
    indices get statistically unrelated RNG streams, and so the value
    is identical across processes and platforms (``hash()`` is not).

    ``stream`` names an independent family of trials (e.g. one scenario
    sweep's per-epoch flows, keyed by the scenario spec) so different
    workloads sharing one base seed never collide; the empty default
    reproduces the historical two-argument seeds exactly.
    """
    key = (
        f"{base_seed}:{trial_index}"
        if not stream
        else f"{base_seed}:{stream}:{trial_index}"
    )
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1


class TrialError(RuntimeError):
    """One trial raised inside the runner (in-process or in a worker).

    Carries the failing trial's index into the submitted batch and the
    full traceback formatted where the exception actually happened —
    so a crash inside a worker process surfaces with the worker's
    stack, not a bare ``Pool.map`` re-raise.  The runner never drops or
    reorders a chunk around a failure: every prior trial's result was
    still computed, and the *first* failing trial (in submission order)
    is the one reported.
    """

    def __init__(self, trial_index: int, error: str, worker_traceback: str):
        super().__init__(
            f"trial {trial_index} raised {error}\n"
            f"--- traceback (from the executing process) ---\n"
            f"{worker_traceback.rstrip()}"
        )
        self.trial_index = trial_index
        self.error = error
        self.worker_traceback = worker_traceback


@dataclass(frozen=True)
class _TrialFailure:
    """Worker-side marker for one failed trial (pickled back verbatim)."""

    trial_index: int
    error: str
    worker_traceback: str


@dataclass(frozen=True)
class DeliveryTrial:
    """One independently seeded delivery attempt."""

    src_building: int
    dst_building: int
    seed: int


def delivery_trials(
    pairs: Iterable[tuple[int, int]], base_seed: int
) -> list[DeliveryTrial]:
    """Wrap building pairs as trials with per-trial deterministic seeds."""
    return [
        DeliveryTrial(s, d, seed_for(base_seed, i))
        for i, (s, d) in enumerate(pairs)
    ]


def delivery_trial(
    world: World, trial: DeliveryTrial, params: SimParams | None = None
) -> DeliveryResult:
    """Run one delivery attempt from its own seeded RNG."""
    return attempt_delivery(
        world,
        trial.src_building,
        trial.dst_building,
        random.Random(trial.seed),
        params=params,
    )


# ----------------------------------------------------------------------
# Worker-side plumbing (module level: everything here must pickle by
# reference under both fork and spawn start methods).
# ----------------------------------------------------------------------
_WORKER_WORLDS: dict[WorldSpec, World] = {}

#: Cumulative world-cache traffic in *this* process.  Workers carry
#: their own copy (module state does not cross the fork/spawn boundary
#: after divergence); ``_run_chunk`` snapshots it back to the parent,
#: which diffs per-pid snapshots into :meth:`TrialRunner.stats`.
_WORKER_CACHE_COUNTS = {"hits": 0, "misses": 0}


def _worker_init(spec: WorldSpec | None) -> None:
    """Pool initializer: prime this worker's world cache once."""
    if spec is not None and spec not in _WORKER_WORLDS:
        _WORKER_CACHE_COUNTS["misses"] += 1
        _WORKER_WORLDS[spec] = spec.build()


def _worker_world(spec: WorldSpec) -> World:
    world = _WORKER_WORLDS.get(spec)
    if world is None:
        _WORKER_CACHE_COUNTS["misses"] += 1
        world = spec.build()
        _WORKER_WORLDS[spec] = world
    else:
        _WORKER_CACHE_COUNTS["hits"] += 1
    return world


def _run_chunk(
    payload: tuple[Callable[..., Any], WorldSpec | None, int, list[Any]]
) -> tuple[list[Any], list[float], tuple[int, int, int]]:
    """Run one chunk of trials against this worker's cached world.

    Returns the chunk's results, per-trial wall timings (merged by
    the parent in submission order, so the merged timing stream is
    deterministic whatever worker ran the chunk), and a cumulative
    ``(pid, cache_hits, cache_misses)`` snapshot of this worker's world
    cache for the parent's stats merge.  A trial that raises
    becomes an in-band :class:`_TrialFailure` carrying the worker's
    traceback and the trial's absolute index (``base`` + offset); the
    rest of the chunk still runs, and the parent raises on the first
    failure in submission order.
    """
    fn, spec, base, chunk = payload
    world = _worker_world(spec) if spec is not None else None
    results: list[Any] = []
    timings: list[float] = []
    for offset, item in enumerate(chunk):
        t0 = time.perf_counter()
        try:
            result = fn(item) if world is None else fn(world, item)
        except Exception as exc:
            result = _TrialFailure(
                trial_index=base + offset,
                error=repr(exc),
                worker_traceback=traceback.format_exc(),
            )
        timings.append(time.perf_counter() - t0)
        results.append(result)
    snapshot = (
        os.getpid(),
        _WORKER_CACHE_COUNTS["hits"],
        _WORKER_CACHE_COUNTS["misses"],
    )
    return results, timings, snapshot


class TrialRunner:
    """Fan independent experiment trials out over worker processes.

    Args:
        workers: process count; ``1`` runs in-process (no pool).
        chunk_size: trials per submitted chunk; default balances ~4
            chunks per worker.
        start_method: ``multiprocessing`` start method override (the
            platform default — fork on Linux — is used when None).
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.workers = workers
        self.chunk_size = chunk_size
        self._start_method = start_method
        self._pool = None
        self._local_worlds: dict[WorldSpec, World] = {}
        # Per-process world-build ledger: pid -> builds.  Worker pids
        # come from chunk snapshots; the serial path books under the
        # parent's own pid.
        self._worker_builds: dict[int, int] = {}
        self._worker_cache_seen: dict[int, tuple[int, int]] = {}
        self._stats: dict[str, float] = {
            "runs": 0,
            "trials": 0,
            "chunks": 0,
            "total_s": 0.0,
            "serial_runs": 0,
            "parallel_runs": 0,
            "last_run_s": 0.0,
            "last_trials": 0,
            "last_trials_per_s": 0.0,
            "world_cache_hits": 0,
            "world_cache_misses": 0,
        }

    def _note_world_cache(self, pid: int, hits: int, misses: int) -> None:
        """Book world-cache traffic (and builds, == misses) for one pid."""
        if not hits and not misses:
            return
        self._stats["world_cache_hits"] += hits
        self._stats["world_cache_misses"] += misses
        if misses:
            self._worker_builds[pid] = self._worker_builds.get(pid, 0) + misses
        _M_WORLD_HITS.inc(hits)
        _M_WORLD_MISSES.inc(misses)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "TrialRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_pool(self, spec: WorldSpec | None):
        if self._pool is None:
            ctx = (
                multiprocessing.get_context(self._start_method)
                if self._start_method
                else multiprocessing.get_context()
            )
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=_worker_init,
                initargs=(spec,),
            )
        return self._pool

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        spec: WorldSpec | None = None,
        world: World | None = None,
    ) -> list[Any]:
        """Ordered parallel map over independent trial items.

        ``fn`` must be a module-level callable (or ``functools.partial``
        of one).  With a ``spec`` (or a ``world`` carrying one), each
        call receives ``fn(world, item)`` against the per-process cached
        world; otherwise ``fn(item)``.  Results always come back in
        ``items`` order, whatever the worker count.
        """
        items = list(items)
        if spec is None and world is not None:
            spec = world.spec
        started = time.perf_counter()
        if self.workers == 1 or len(items) <= 1:
            results = self._map_serial(fn, items, spec, world)
            mode = "serial_runs"
        else:
            results = self._map_parallel(fn, items, spec, world)
            mode = "parallel_runs"
        elapsed = time.perf_counter() - started
        s = self._stats
        s["runs"] += 1
        s[mode] += 1
        s["trials"] += len(items)
        s["total_s"] += elapsed
        s["last_run_s"] = elapsed
        s["last_trials"] = len(items)
        s["last_trials_per_s"] = len(items) / elapsed if elapsed > 0 else 0.0
        _M_RUNS.inc()
        _M_TRIALS.inc(len(items))
        _M_RUN_S.observe(elapsed)
        return results

    def _map_serial(
        self,
        fn: Callable[..., Any],
        items: list[Any],
        spec: WorldSpec | None,
        world: World | None,
    ) -> list[Any]:
        if spec is not None and world is None:
            world = self._local_worlds.get(spec)
            if world is None:
                self._note_world_cache(os.getpid(), hits=0, misses=1)
                world = spec.build()
                self._local_worlds[spec] = world
            else:
                self._note_world_cache(os.getpid(), hits=1, misses=0)
        results: list[Any] = []
        for index, item in enumerate(items):
            t0 = time.perf_counter()
            try:
                results.append(fn(item) if world is None else fn(world, item))
            except Exception as exc:
                raise TrialError(
                    trial_index=index,
                    error=repr(exc),
                    worker_traceback=traceback.format_exc(),
                ) from exc
            finally:
                _M_TRIAL_S.observe(time.perf_counter() - t0)
        return results

    def _map_parallel(
        self,
        fn: Callable[..., Any],
        items: list[Any],
        spec: WorldSpec | None,
        world: World | None,
    ) -> list[Any]:
        if world is not None and spec is None:
            raise ValueError(
                "parallel runs need a WorldSpec to rebuild worlds in "
                "workers; this World was not built from one (use "
                "build_world/WorldSpec.build, or workers=1)"
            )
        chunk = self.chunk_size or max(
            1, -(-len(items) // (self.workers * 4))
        )
        payloads = [
            (fn, spec, i, items[i : i + chunk])
            for i in range(0, len(items), chunk)
        ]
        self._stats["chunks"] += len(payloads)
        pool = self._ensure_pool(spec)
        # Pool.map preserves submission order, so the merged output is
        # independent of which worker ran which chunk — and so is the
        # merged per-trial timing stream fed to the registry below.
        chunked = pool.map(_run_chunk, payloads, chunksize=1)
        results: list[Any] = []
        failure: _TrialFailure | None = None
        # Snapshots are cumulative per worker; keep the max seen per pid
        # this run, then diff against the last run's high-water mark.
        snapshots: dict[int, tuple[int, int]] = {}
        for chunk_results, chunk_timings, (pid, hits, misses) in chunked:
            results.extend(chunk_results)
            for dt in chunk_timings:
                _M_TRIAL_S.observe(dt)
            prev = snapshots.get(pid, (0, 0))
            snapshots[pid] = (max(prev[0], hits), max(prev[1], misses))
        for pid, (hits, misses) in snapshots.items():
            seen_h, seen_m = self._worker_cache_seen.get(pid, (0, 0))
            self._note_world_cache(
                pid, hits=max(0, hits - seen_h), misses=max(0, misses - seen_m)
            )
            self._worker_cache_seen[pid] = (max(seen_h, hits), max(seen_m, misses))
        for result in results:
            if isinstance(result, _TrialFailure):
                failure = result
                break
        if failure is not None:
            raise TrialError(
                trial_index=failure.trial_index,
                error=failure.error,
                worker_traceback=failure.worker_traceback,
            )
        return results

    def run_deliveries(
        self,
        world: World | WorldSpec,
        trials: Sequence[DeliveryTrial],
        params: SimParams | None = None,
    ) -> list[DeliveryResult]:
        """Run delivery trials against one world, in trial order."""
        fn: Callable[..., Any] = delivery_trial
        if params is not None:
            fn = partial(delivery_trial, params=params)
        if isinstance(world, WorldSpec):
            return self.map(fn, trials, spec=world)
        return self.map(fn, trials, spec=world.spec, world=world)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Timing/throughput counters (cumulative plus last-run).

        World-cache fields quantify the persistent per-worker cache:
        ``world_cache_hits`` / ``world_cache_misses`` are cache lookups
        across the parent and every worker (a miss builds a world, so
        ``world_builds == world_cache_misses``), ``workers_built`` is
        how many distinct processes built at least one world, and
        ``world_builds_max_per_worker`` bounds any single process's
        build bill — the healthy steady state is one build per worker
        per distinct :class:`WorldSpec`.
        """
        s = dict(self._stats)
        s["workers"] = self.workers
        s["trials_per_s"] = (
            s["trials"] / s["total_s"] if s["total_s"] > 0 else 0.0
        )
        s["world_builds"] = s["world_cache_misses"]
        s["workers_built"] = len(self._worker_builds)
        s["world_builds_max_per_worker"] = (
            max(self._worker_builds.values()) if self._worker_builds else 0
        )
        return s
