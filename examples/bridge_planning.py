#!/usr/bin/env python3
"""Bridge planning: reconnecting a fractured city with few APs.

§4 observes that rivers and highways fracture some cities "into
multiple islands of connectivity" and proposes that "a small number of
well-placed APs would serve to bridge connectivity between these
islands".  This example finds the islands of two fractured presets,
plans the bridges greedily, and measures the reachability gain per
deployed AP.

Run:  python examples/bridge_planning.py
"""

import random

from repro.city import make_city
from repro.experiments import build_world, run_bridging, sample_building_pairs
from repro.mesh import apply_bridges, bridge_all_islands, find_islands
from repro.viz import render_mesh


def main() -> None:
    for name in ("riverton", "capitolia"):
        world = build_world(name, seed=0)
        islands = find_islands(world.graph, min_size=5)
        print(f"\n=== {name}: {len(islands)} islands "
              f"(sizes: {[i.size for i in islands[:6]]}) ===")

        result = run_bridging(name, seed=0, pairs=300, world=world)
        gain = result.reachability_after - result.reachability_before
        print(
            f"bridged with {result.new_aps} new APs: reachability "
            f"{result.reachability_before:.0%} -> {result.reachability_after:.0%}"
            + (f"  ({gain / result.new_aps:.1%} per AP)" if result.new_aps else "")
        )

        # Show where the bridges went (new APs appear as extra dots).
        plans, new_aps = bridge_all_islands(world.graph, min_island_size=5)
        for plan in plans:
            a = world.graph.position(plan.from_ap)
            b = world.graph.position(plan.to_ap)
            print(
                f"  bridge: ({a.x:.0f},{a.y:.0f}) -> ({b.x:.0f},{b.y:.0f})"
                f"  [{plan.ap_count} new APs]"
            )
        if name == "riverton":
            bridged = apply_bridges(world.graph, new_aps)
            print()
            print(render_mesh(world.city, bridged, width_chars=90))

        # Sanity: sampled pairs that were unreachable now connect.
        rng = random.Random(5)
        pairs = sample_building_pairs(world, 50, rng)
        bridged = apply_bridges(world.graph, new_aps)
        healed = sum(
            1
            for s, d in pairs
            if not world.graph.buildings_reachable(s, d)
            and bridged.buildings_reachable(s, d)
        )
        print(f"  {healed}/50 sampled pairs healed by the bridges")


if __name__ == "__main__":
    main()
