#!/usr/bin/env python3
"""Inter-networking DFNs: a three-region federation with satellite links.

§1 poses the question of forming "an inter-network of DFNs across
regions" and the role of satellite links.  This example builds three
urban DFNs (a dense downtown, a park city, an old town), wires their
gateway buildings with two satellite links, and delivers a message
across all three — every intra-region leg is a full CityMesh
simulation.

Run:  python examples/regional_federation.py
"""

import random

from repro.city import make_city
from repro.federation import Federation, InterRegionLink, make_region, send_interregion
from repro.mesh import APGraph, place_aps


def build_region(name: str, city_name: str, seed: int):
    city = make_city(city_name, seed=seed)
    mesh = APGraph(place_aps(city, rng=random.Random(seed)))
    candidates = [b.id for b in city.buildings if mesh.aps_in_building(b.id)]
    return make_region(name, city, mesh, [candidates[0], candidates[-1]])


def main() -> None:
    federation = Federation()
    regions = {
        "northville": build_region("northville", "gridport", seed=11),
        "midtown": build_region("midtown", "parkside", seed=12),
        "oldport": build_region("oldport", "oldtown", seed=13),
    }
    for region in regions.values():
        federation.add_region(region)
        print(
            f"region {region.name}: {len(region.city)} buildings, "
            f"{len(region.graph)} APs, gateways at buildings {region.gateway_buildings}"
        )

    federation.add_link(
        InterRegionLink(
            "northville", regions["northville"].gateway_buildings[1],
            "midtown", regions["midtown"].gateway_buildings[0],
            latency_s=0.55, kind="satellite",
        )
    )
    federation.add_link(
        InterRegionLink(
            "midtown", regions["midtown"].gateway_buildings[1],
            "oldport", regions["oldport"].gateway_buildings[0],
            latency_s=0.55, kind="satellite",
        )
    )

    src = [b.id for b in regions["northville"].city.buildings
           if regions["northville"].graph.aps_in_building(b.id)][7]
    dst = [b.id for b in regions["oldport"].city.buildings
           if regions["oldport"].graph.aps_in_building(b.id)][-7]

    print(f"\nsending northville/{src} -> oldport/{dst} …")
    report = send_interregion(
        federation, "northville", src, "oldport", dst, random.Random(3)
    )
    for leg in report.legs:
        print(
            f"  [{leg.kind:9s}] {leg.region:22s} "
            f"{leg.src_building:>5} -> {leg.dst_building:<5} "
            f"{'ok ' if leg.delivered else 'FAIL'} "
            f"tx={leg.transmissions:<4} latency={leg.latency_s * 1000:6.0f} ms"
        )
    print(
        f"\nresult: {'DELIVERED' if report.delivered else 'LOST'} — "
        f"{report.mesh_transmissions} mesh transmissions, "
        f"{report.total_latency_s:.2f} s end-to-end"
    )


if __name__ == "__main__":
    main()
