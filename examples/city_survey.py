#!/usr/bin/env python3
"""City survey: rerun the paper's §2 war-driving study.

Reproduces Table 1 and the Figure 1/2 statistics on the synthetic
survey areas: walk/bike trajectories sample beacon frames at 0.2-0.4 Hz
through downtown, a campus, a residential area, and along a river, and
the analysis pipeline computes exactly what the paper reports.

Run:  python examples/city_survey.py
"""

from repro.experiments import (
    common_beyond,
    format_fig1,
    format_fig2,
    format_table1,
    run_fig1,
    run_fig2,
    run_table1,
)
from repro.measurement import run_study


def main() -> None:
    print("running the four-area survey (simulated war-driving)…\n")
    datasets = run_study(seed=0)

    print(format_table1(run_table1(datasets=datasets)))
    print()
    print(format_fig1(run_fig1(datasets=datasets)))
    print()

    fig2 = run_fig2(datasets=datasets, stride=3)
    print(format_fig2(fig2))
    downtown = next(a for a in fig2 if a.area == "downtown")
    print(
        f"\npairs >100 m apart that still share an AP (downtown): "
        f"{common_beyond(downtown, 100.0)} "
        "(the paper's mutual-visibility observation)"
    )


if __name__ == "__main__":
    main()
