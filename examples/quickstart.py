#!/usr/bin/env python3
"""Quickstart: build a city, route a packet, watch it deliver.

Walks the whole CityMesh pipeline in ~40 lines of API calls:

1. generate a synthetic downtown (stand-in for an OSM extract),
2. place Wi-Fi APs inside the building footprints,
3. build the map-only building graph and plan a compressed route,
4. run the event-based broadcast simulation,
5. print the outcome and a Figure-7-style rendering.

Run:  python examples/quickstart.py
"""

import random

from repro.city import grid_downtown
from repro.core import BuildingRouter
from repro.mesh import APGraph, place_aps
from repro.sim import ConduitPolicy, simulate_broadcast, transmission_overhead
from repro.viz import render_simulation


def main() -> None:
    # 1. A 6x6-block downtown grid (deterministic in the seed).
    city = grid_downtown(seed=7, blocks_x=6, blocks_y=6)
    print(f"city: {len(city)} buildings, {city.total_building_area() / 1e3:.0f}k m^2")

    # 2. APs at the paper's reference density (1 per 200 m^2), linked
    #    when within the 50 m transmission range.
    aps = place_aps(city, rng=random.Random(7))
    mesh = APGraph(aps)
    print(f"mesh: {len(mesh)} APs, {mesh.edge_count()} links")

    # 3. Source routing via buildings: plan, compress, encode.
    router = BuildingRouter(city)
    source = city.buildings[0].id
    destination = city.buildings[-1].id
    plan = router.plan(source, destination)
    print(
        f"route: {len(plan.route)} buildings -> {len(plan.waypoint_ids)} waypoints, "
        f"header {plan.route_bits} bits"
    )

    # 4. Every AP makes the stateless conduit decision; simulate it.
    policy = ConduitPolicy(plan.conduits, city)
    source_ap = mesh.aps_in_building(source)[0]
    result = simulate_broadcast(mesh, source_ap, destination, policy, random.Random(7))
    overhead = transmission_overhead(mesh, result, source_ap, destination)
    print(
        f"delivery: {'ok' if result.delivered else 'FAILED'} in "
        f"{result.delivery_time_s and round(result.delivery_time_s * 1000) or 0} ms sim-time, "
        f"{result.transmissions} transmissions"
        + (f", overhead {overhead:.1f}x ideal" if overhead else "")
    )

    # 5. The Figure-7 style picture.
    print()
    print(render_simulation(city, mesh, plan, result, width_chars=100))


if __name__ == "__main__":
    main()
