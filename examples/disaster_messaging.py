#!/usr/bin/env python3
"""Disaster messaging: the paper's motivating scenario, end to end.

A storm has cut the city's backhaul.  Alice wants to check on Bob.
Before the outage they exchanged postbox addresses (a QR code each —
§3 step 1).  Now Alice's phone seals a message with Bob's public key,
plans a building route from the cached map, and hands the packet to
the nearest AP.  The mesh floods it down the conduit, Bob's postbox
stores it, and Bob picks it up next time he checks in.

Also demonstrated: urgent-message push preferences, a compromised mesh
(blackhole APs), and the resilient retry that routes around them.

Run:  python examples/disaster_messaging.py
"""

import random

from repro.city import make_city
from repro.core import BuildingRouter
from repro.mesh import APGraph, place_aps
from repro.postbox import MessagingService, Participant, PostboxAddress
from repro.security import honest_path_exists, random_compromise, resilient_send


def main() -> None:
    rng = random.Random(2024)

    # The city and its surviving Wi-Fi mesh.
    city = make_city("parkside", seed=3)
    aps = place_aps(city, rng=rng)
    mesh = APGraph(aps)
    router = BuildingRouter(city)
    service = MessagingService(city=city, graph=mesh, router=router, rng=rng)
    print(f"{city.name}: {len(city)} buildings, {len(mesh)} APs survive the outage")

    # Participants: keys generated on-device, addresses swapped last month.
    homes = [b.id for b in city.buildings if mesh.aps_in_building(b.id)]
    alice = Participant.create(homes[2], rng)
    bob = Participant.create(homes[-3], rng)
    qr_payload = bob.address.to_bytes()
    print(f"Bob's QR-code address: {len(qr_payload)} bytes -> name {bob.address.name[:16]}…")

    # Alice scans her saved copy and sends.
    bob_address = PostboxAddress.from_bytes(qr_payload)
    report = service.send(
        alice, bob_address, bob.postbox, b"Storm's bad. Are you and the kids OK?",
        urgent=True,
    )
    print(
        f"Alice -> Bob: {'delivered' if report.delivered else 'LOST'}, "
        f"{report.transmissions} transmissions, header {report.route_bits} bits"
    )

    # Bob checks his postbox from his phone.
    inbox = MessagingService.retrieve(
        bob, now_s=300.0, location=city.building(bob.address.building_id).centroid()
    )
    for message in inbox:
        sender = "Alice" if message.sender_name == alice.address.name else "???"
        print(f"Bob reads [{sender}]: {message.plaintext.decode()}")

    # Bob replies; his postbox has cached Alice's location for pushes.
    reply = service.send(bob, alice.address, alice.postbox, b"We're safe at the library.")
    print(
        f"Bob -> Alice: {'delivered' if reply.delivered else 'LOST'}, "
        f"{reply.transmissions} transmissions"
    )

    # --- Under attack: 20% of APs are blackholes. ------------------------
    print("\n--- cyberattack: 20% of APs silently drop packets ---")
    compromised = random_compromise(mesh, 0.20, random.Random(13))
    src_ap = next(
        a for a in mesh.aps_in_building(alice.address.building_id) if a not in compromised
    )
    feasible = honest_path_exists(mesh, src_ap, bob.address.building_id, compromised)
    print(f"an honest path still exists: {feasible}")
    outcome = resilient_send(
        city, mesh, router, src_ap, bob.address.building_id,
        random.Random(13), compromised, max_attempts=3,
    )
    print(
        f"resilient send: {'delivered' if outcome.delivered else 'failed'} "
        f"after {outcome.attempts} attempt(s), "
        f"{outcome.total_transmissions} transmissions total"
        + (f", final conduit width {outcome.final_width:.0f} m" if outcome.final_width else "")
    )


if __name__ == "__main__":
    main()
