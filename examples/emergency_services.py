#!/usr/bin/env python3
"""Emergency services on a DFN: alerts, geocast, naming, payments.

The paper's intro motivates four fallback applications beyond person-
to-person messaging: emergency updates, directions to safety
(geospatial messaging), decentralized name resolution (no DNS), and
payments.  This example exercises all four on one simulated outage.

Run:  python examples/emergency_services.py
"""

import random

from repro.apps import (
    Alert,
    Directory,
    DirectoryRecord,
    Ledger,
    Wallet,
    broadcast_alert,
    geocast,
)
from repro.city import make_city
from repro.core import BuildingRouter
from repro.geometry import Polygon
from repro.mesh import APGraph, place_aps
from repro.postbox import KeyPair, PostboxAddress


def main() -> None:
    rng = random.Random(99)
    city = make_city("gridport", seed=9)
    mesh = APGraph(place_aps(city, rng=rng))
    router = BuildingRouter(city)
    print(f"{city.name}: {len(city)} buildings, {len(mesh)} APs on battery power\n")

    # --- 1. City-wide emergency alert -------------------------------------
    authority = KeyPair.generate(rng, bits=512)
    alert = Alert.issue(authority, b"FLASH FLOOD WARNING - avoid underpasses")
    coverage = broadcast_alert(city, mesh, alert, origin_ap=0, rng=rng)
    print(
        f"[alert] city-wide warning reached {coverage.coverage:.0%} of buildings "
        f"({coverage.transmissions} transmissions)"
    )

    # --- 2. Scoped evacuation alert for the flooded quarter ---------------
    min_x, min_y, max_x, max_y = city.bounds()
    flood_zone = Polygon.rectangle(min_x, min_y, min_x + (max_x - min_x) / 3, max_y)
    scoped = broadcast_alert(
        city, mesh, Alert.issue(authority, b"EVACUATE ZONE A NOW", region=flood_zone),
        origin_ap=0, rng=rng,
    )
    print(
        f"[alert] zone-A evacuation: {scoped.coverage:.0%} of the zone alerted with "
        f"only {scoped.transmissions} transmissions"
    )

    # --- 3. Geocast directions to everyone near the shelter ---------------
    shelter = city.buildings[len(city.buildings) // 2].centroid()
    g = geocast(
        city, mesh, router, city.buildings[0].id, shelter, radius=150, rng=rng
    )
    print(
        f"[geocast] shelter directions covered {g.covered_buildings}/"
        f"{g.target_buildings} buildings within 150 m of the shelter"
    )

    # --- 4. Name resolution without DNS ------------------------------------
    directory = Directory(city=city, replicas=2)
    clinic = KeyPair.generate(rng, bits=512)
    clinic_address = PostboxAddress.for_key(clinic.public, city.buildings[10].id)
    directory.publish(DirectoryRecord.create(clinic, clinic_address, sequence=1))
    found = directory.lookup(clinic_address.name)
    print(
        f"[directory] clinic {clinic_address.name[:12]}… resolves to building "
        f"{found.address.building_id} via rendezvous hashing (no DNS)"
    )

    # --- 5. Offline payments with double-spend detection -------------------
    payer = Wallet(KeyPair.generate(rng, bits=512))
    pharmacy = Wallet(KeyPair.generate(rng, bits=512))
    cheque = payer.write_cheque(pharmacy.name, 1850)
    ledger = Ledger()
    ledger.deposit(cheque)
    print(
        f"[payments] cheque for $18.50 deposited; pharmacy balance "
        f"{ledger.balance_of(pharmacy.name) / 100:.2f}"
    )
    cheat = payer.double_spend("someone-else", 1850, serial=cheque.serial)
    accepted = ledger.deposit(cheat)
    print(
        f"[payments] double-spend attempt accepted={accepted}; payer flagged: "
        f"{ledger.is_flagged(payer.name)}"
    )


if __name__ == "__main__":
    main()
