"""Setuptools shim.

This environment has no network access and no ``wheel`` package, so
PEP-517 editable installs (which build a wheel for metadata) fail.
Keeping a thin ``setup.py`` lets ``pip install -e . --no-use-pep517``
use the legacy develop path.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
