"""Tests for the packet header codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HeaderError,
    Packet,
    bits_needed,
    decode_header,
    encode_header,
)


def roundtrip(waypoints, width=50, message_id=7, max_id=None):
    if max_id is None:
        max_id = max(waypoints)
    data = encode_header(waypoints, width, message_id, max_id)
    return decode_header(data)


class TestEncodeValidation:
    def test_empty_waypoints(self):
        with pytest.raises(HeaderError):
            encode_header([], 50, 0, 10)

    def test_too_many_waypoints(self):
        with pytest.raises(HeaderError):
            encode_header(list(range(256)), 50, 0, 300)

    def test_width_out_of_range(self):
        with pytest.raises(HeaderError):
            encode_header([1], 0, 0, 10)
        with pytest.raises(HeaderError):
            encode_header([1], 300, 0, 10)

    def test_waypoint_outside_id_space(self):
        with pytest.raises(HeaderError):
            encode_header([11], 50, 0, 10)
        with pytest.raises(HeaderError):
            encode_header([-1], 50, 0, 10)

    def test_message_id_range(self):
        with pytest.raises(HeaderError):
            encode_header([1], 50, -1, 10)
        with pytest.raises(HeaderError):
            encode_header([1], 50, 1 << 64, 10)


class TestDecode:
    def test_roundtrip_simple(self):
        h = roundtrip([3, 7, 42], width=50, message_id=123456, max_id=100)
        assert h.waypoints == (3, 7, 42)
        assert h.width_m == 50
        assert h.message_id == 123456
        assert h.source_building == 3
        assert h.destination_building == 42

    def test_width_rounding(self):
        h = roundtrip([1], width=49.6, max_id=10)
        assert h.width_m == 50

    def test_truncated_data(self):
        data = encode_header([1, 2, 3], 50, 9, 100)
        with pytest.raises(HeaderError):
            decode_header(data[: len(data) // 2])

    def test_bad_version(self):
        data = bytearray(encode_header([1], 50, 9, 10))
        data[0] = (data[0] & 0x0F) | (0xE0)  # version 14
        with pytest.raises(HeaderError):
            decode_header(bytes(data))

    def test_empty_bytes(self):
        with pytest.raises(HeaderError):
            decode_header(b"")


class TestSizes:
    def test_id_bits_follow_map_size(self):
        small = roundtrip([1, 2], max_id=255)
        large = roundtrip([1, 2], max_id=100_000)
        assert small.id_bits == 8
        assert large.id_bits == bits_needed(100_000) == 17

    def test_route_bits_formula(self):
        h = roundtrip([1, 2, 3], max_id=100_000)
        assert h.route_bits() == 8 + 6 + 3 * 17

    def test_total_bits_formula(self):
        h = roundtrip([1, 2, 3], max_id=100_000)
        assert h.total_bits() == 4 + 8 + 6 + 8 + 3 * 17 + 64

    def test_city_scale_header_matches_paper_regime(self):
        """~10 waypoints in a 10^5-building map is in the paper's
        175-225 bit band for the compressed source route."""
        h = roundtrip(list(range(1, 11)), max_id=100_000)
        assert 150 <= h.route_bits() <= 225

    def test_packet_size_bits(self):
        data = encode_header([1, 2], 50, 9, 100)
        pkt = Packet(header=decode_header(data), payload=b"hello")
        assert pkt.size_bits() == decode_header(data).total_bits() + 40
        assert pkt.message_id == 9


class TestRoundtripProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**20), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=255),
        st.integers(min_value=0, max_value=2**64 - 1),
    )
    @settings(max_examples=80)
    def test_arbitrary_roundtrip(self, waypoints, width, message_id):
        max_id = max(waypoints + [1])
        data = encode_header(waypoints, width, message_id, max_id)
        h = decode_header(data)
        assert h.waypoints == tuple(waypoints)
        assert h.width_m == width
        assert h.message_id == message_id

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=60))
    @settings(max_examples=50)
    def test_header_bytes_match_bit_count(self, waypoints):
        max_id = max(waypoints)
        data = encode_header(waypoints, 50, 0, max_id)
        h = decode_header(data)
        assert len(data) == (h.total_bits() + 7) // 8
