"""Tests for the artefact export pipeline."""

import pytest

from repro.experiments import export_all


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    out = tmp_path_factory.mktemp("results")
    files = export_all(out, seed=0, quick=True)
    return out, files


class TestExport:
    def test_files_written(self, exported):
        out, files = exported
        assert len(files) >= 15
        for path in files:
            assert path.exists()
            assert path.stat().st_size > 0

    def test_expected_artifacts_present(self, exported):
        out, _ = exported
        names = {p.name for p in out.iterdir()}
        for required in (
            "table1.csv",
            "fig1a_downtown_macs_cdf.csv",
            "fig1b_river_spread_cdf.csv",
            "fig2_downtown.csv",
            "fig5a_footprints.txt",
            "fig5b_mesh.txt",
            "fig6.csv",
            "fig7_simulation.txt",
            "header_stats.csv",
        ):
            assert required in names, required

    def test_csv_headers(self, exported):
        out, _ = exported
        first = (out / "fig6.csv").read_text().splitlines()[0]
        assert first.startswith("city,reachability")
        table1 = (out / "table1.csv").read_text().splitlines()
        assert len(table1) == 6  # header + 4 areas + all

    def test_cdf_series_monotone(self, exported):
        out, _ = exported
        lines = (out / "fig1a_downtown_macs_cdf.csv").read_text().splitlines()[1:]
        fractions = [float(line.split(",")[1]) for line in lines]
        assert all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == pytest.approx(1.0)

    def test_renderings_nonempty(self, exported):
        out, _ = exported
        art = (out / "fig7_simulation.txt").read_text()
        assert "*" in art and "o" in art

    def test_idempotent_rerun(self, exported):
        out, files = exported
        again = export_all(out, seed=0, quick=True)
        assert {p.name for p in again} == {p.name for p in files}
