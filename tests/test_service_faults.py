"""Fault injection: lost responses on the keep-alive HTTP connection.

The load generator's retry rule says idempotent kinds (``check``,
``pushes``, ``geocast_poll``, ``lookup``) may be re-issued once on a
dropped connection, while writes — ``confirm`` above all — must never
be.  These tests make the race real: a drop-once proxy sits between
:class:`~repro.service.ServiceClient` and the real
:class:`~repro.service.DFNServer`, forwards a request to the server,
waits for the server to fully apply it, then kills the client-facing
connection *instead of relaying the response*.  The client is left
exactly where a mid-disaster network leaves it: the request landed,
the answer is gone.

Every idempotent kind must come back clean on the automatic retry
without double-applying, and a manually retried ``confirm`` must be
refused with the typed 409 — the exactly-once audit.
"""

import asyncio
import base64
import random

from repro.apps import DirectoryRecord
from repro.postbox import KeyPair, PostboxAddress
from repro.service import DFNServer, ServiceClient, build_app
from repro.service.loadgen import IDEMPOTENT_KINDS


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _content_length(head: bytes) -> int:
    for line in head.decode("latin-1").split("\r\n"):
        key, _, value = line.partition(":")
        if key.strip().lower() == "content-length":
            return int(value.strip())
    return 0


class DropOnceProxy:
    """A TCP proxy that can eat exactly one response.

    Requests always reach the upstream server and are fully answered
    there; with :attr:`drop_next_response` armed, the next response is
    discarded and the client connection closed instead — the
    "connection died between send and response" failure, with the
    server-side effect already applied.
    """

    def __init__(self, upstream_port: int):
        self.upstream_port = upstream_port
        self.drop_next_response = False
        self.dropped = 0
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle(
        self, creader: asyncio.StreamReader, cwriter: asyncio.StreamWriter
    ) -> None:
        uwriter = None
        try:
            ureader, uwriter = await asyncio.open_connection(
                "127.0.0.1", self.upstream_port
            )
            while True:
                head = await creader.readuntil(b"\r\n\r\n")
                body = b""
                length = _content_length(head)
                if length:
                    body = await creader.readexactly(length)
                uwriter.write(head + body)
                await uwriter.drain()
                rhead = await ureader.readuntil(b"\r\n\r\n")
                rbody = b""
                rlength = _content_length(rhead)
                if rlength:
                    rbody = await ureader.readexactly(rlength)
                if self.drop_next_response:
                    # The server has fully answered: the request IS
                    # applied.  The client just never hears about it.
                    self.drop_next_response = False
                    self.dropped += 1
                    return
                cwriter.write(rhead + rbody)
                await cwriter.drain()
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            for writer in (cwriter, uwriter):
                if writer is None:
                    continue
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass


async def _service_through_proxy():
    app = build_app(city_name="gridport", seed=0)
    server = DFNServer(app, port=0, push_poll_interval_s=0.01)
    await server.start()
    proxy = DropOnceProxy(server.port)
    await proxy.start()
    return app, server, proxy


def test_idempotent_kinds_cover_exactly_the_safe_requests():
    # The audit's contract: confirm (and every other write) is NOT in
    # the retry set; the four read/drain kinds are.
    assert IDEMPOTENT_KINDS == {"check", "pushes", "geocast_poll", "lookup"}


def test_check_retry_after_lost_response_does_not_duplicate():
    async def body():
        app, server, proxy = await _service_through_proxy()
        try:
            client = ServiceClient("127.0.0.1", proxy.port)
            status, out = await client.request(
                "POST",
                "/v1/postbox/send",
                {"owner": "ann", "payload": _b64(b"one"), "now_s": 1.0},
            )
            assert status == 200

            proxy.drop_next_response = True
            status, out = await client.request(
                "POST",
                "/v1/postbox/check",
                {"owner": "ann", "x": 0.0, "y": 0.0, "now_s": 2.0},
                idempotent=True,
            )
            # The first attempt drained the postbox server-side and
            # the response was eaten; the retry must succeed (fresh
            # socket) and must NOT hand the message out twice.
            assert proxy.dropped == 1
            assert client.retries == 1
            assert status == 200 and out["messages"] == []

            # The message was delivered by the lost-response check:
            # nothing left for a later check either.
            status, out = await client.request(
                "POST",
                "/v1/postbox/check",
                {"owner": "ann", "x": 0.0, "y": 0.0, "now_s": 3.0},
            )
            assert status == 200 and out["messages"] == []
            await client.close()
        finally:
            await proxy.close()
            await server.close()
            await app.close()

    asyncio.run(body())


def test_pushes_retry_after_lost_response_keeps_message_confirmable():
    async def body():
        app, server, proxy = await _service_through_proxy()
        try:
            client = ServiceClient("127.0.0.1", proxy.port)
            # A check caches the location; only then do urgent sends push.
            await client.request(
                "POST",
                "/v1/postbox/check",
                {"owner": "bea", "x": 5.0, "y": 5.0, "now_s": 0.0},
            )
            status, out = await client.request(
                "POST",
                "/v1/postbox/send",
                {
                    "owner": "bea",
                    "payload": _b64(b"urgent!"),
                    "urgent": True,
                    "now_s": 1.0,
                },
            )
            assert status == 200
            msg_id = out["msg_id"]

            proxy.drop_next_response = True
            status, out = await client.request(
                "POST",
                "/v1/postbox/pushes",
                {"owner": "bea"},
                idempotent=True,
            )
            # The lost-response attempt took the push; the retry finds
            # the queue empty — the push is NOT handed out twice.
            assert client.retries == 1
            assert status == 200 and out["pushes"] == []

            # Taken-but-unconfirmed is not lost: the message is still
            # pending and confirmable exactly once.
            status, out = await client.request(
                "POST",
                "/v1/postbox/confirm",
                {"owner": "bea", "msg_id": msg_id},
            )
            assert status == 200 and out["confirmed"] is True
            await client.close()
        finally:
            await proxy.close()
            await server.close()
            await app.close()

    asyncio.run(body())


def test_geocast_poll_retry_returns_the_same_messages():
    async def body():
        app, server, proxy = await _service_through_proxy()
        try:
            client = ServiceClient("127.0.0.1", proxy.port)
            status, out = await client.request(
                "POST",
                "/v1/geocast/publish",
                {
                    "x": 10.0,
                    "y": 10.0,
                    "radius": 100.0,
                    "payload": _b64(b"shelter here"),
                    "now_s": 1.0,
                },
            )
            assert status == 200

            poll = {"x": 15.0, "y": 15.0, "now_s": 2.0}
            status, baseline = await client.request(
                "POST", "/v1/geocast/poll", dict(poll)
            )
            assert status == 200 and len(baseline["messages"]) == 1

            proxy.drop_next_response = True
            status, retried = await client.request(
                "POST", "/v1/geocast/poll", dict(poll), idempotent=True
            )
            # Pure read: the retry observes exactly the same board.
            assert client.retries == 1
            assert status == 200 and retried == baseline
            await client.close()
        finally:
            await proxy.close()
            await server.close()
            await app.close()

    asyncio.run(body())


def test_lookup_retry_returns_the_same_record():
    async def body():
        app, server, proxy = await _service_through_proxy()
        try:
            client = ServiceClient("127.0.0.1", proxy.port)
            rng = random.Random(11)
            keypair = KeyPair.generate(rng, bits=512)
            address = PostboxAddress.for_key(
                keypair.public, app.city.buildings[0].id
            )
            record = DirectoryRecord.create(keypair, address, sequence=1)
            status, _ = await client.request(
                "POST",
                "/v1/directory/publish",
                {
                    "address": _b64(address.to_bytes()),
                    "sequence": record.sequence,
                    "signature": _b64(record.signature),
                },
            )
            assert status == 200

            status, baseline = await client.request(
                "POST", "/v1/directory/lookup", {"name": address.name}
            )
            assert status == 200

            proxy.drop_next_response = True
            status, retried = await client.request(
                "POST",
                "/v1/directory/lookup",
                {"name": address.name},
                idempotent=True,
            )
            assert client.retries == 1
            assert status == 200 and retried == baseline
            await client.close()
        finally:
            await proxy.close()
            await server.close()
            await app.close()

    asyncio.run(body())


def test_confirm_is_never_auto_retried_and_refused_when_replayed():
    async def body():
        app, server, proxy = await _service_through_proxy()
        try:
            client = ServiceClient("127.0.0.1", proxy.port)
            # A check caches the location; only then do urgent sends push.
            await client.request(
                "POST",
                "/v1/postbox/check",
                {"owner": "cal", "x": 5.0, "y": 5.0, "now_s": 0.0},
            )
            status, out = await client.request(
                "POST",
                "/v1/postbox/send",
                {
                    "owner": "cal",
                    "payload": _b64(b"now"),
                    "urgent": True,
                    "now_s": 1.0,
                },
            )
            assert status == 200
            status, out = await client.request(
                "POST", "/v1/postbox/pushes", {"owner": "cal"}
            )
            assert status == 200 and len(out["pushes"]) == 1
            msg_id = out["pushes"][0]["msg_id"]

            # The confirm lands server-side; the response dies on the
            # wire.  Confirm is a write: the client must surface the
            # failure instead of silently retrying.
            proxy.drop_next_response = True
            try:
                await client.request(
                    "POST",
                    "/v1/postbox/confirm",
                    {"owner": "cal", "msg_id": msg_id},
                )
            except (asyncio.IncompleteReadError, ConnectionResetError):
                pass
            else:
                raise AssertionError(
                    "lost confirm response must propagate, not retry"
                )
            assert client.retries == 0

            # A caller that replays the confirm anyway (it cannot know
            # whether the write landed) gets the typed exactly-once
            # refusal, not a second apply and not a crash.
            status, out = await client.request(
                "POST",
                "/v1/postbox/confirm",
                {"owner": "cal", "msg_id": msg_id},
            )
            assert status == 409
            assert out["error"] == "confirm_refused"
            assert out["confirmed"] is False
            assert out["msg_id"] == msg_id

            # And the message really is gone: nothing pending, nothing
            # delivered twice.
            status, out = await client.request(
                "POST",
                "/v1/postbox/check",
                {"owner": "cal", "x": 0.0, "y": 0.0, "now_s": 2.0},
            )
            assert status == 200 and out["messages"] == []
            await client.close()
        finally:
            await proxy.close()
            await server.close()
            await app.close()

    asyncio.run(body())
