"""Unit and property tests for conduit rectangles (Figure 4 geometry)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import ConduitPath, ConduitRect, Point, covers_all

coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coord, coord)
widths = st.floats(min_value=0.5, max_value=500, allow_nan=False)


class TestConduitRect:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            ConduitRect(Point(0, 0), Point(1, 0), 0)

    def test_length(self):
        assert ConduitRect(Point(0, 0), Point(3, 4), 10).length == 5

    def test_contains_on_axis(self):
        c = ConduitRect(Point(0, 0), Point(100, 0), 50)
        assert c.contains(Point(50, 0))
        assert c.contains(Point(50, 24.9))
        assert c.contains(Point(50, 25))  # inclusive edge
        assert not c.contains(Point(50, 25.1))

    def test_contains_longitudinal_cutoff(self):
        c = ConduitRect(Point(0, 0), Point(100, 0), 50)
        assert c.contains(Point(0, 0))
        assert c.contains(Point(100, 0))
        assert not c.contains(Point(-0.1, 0))
        assert not c.contains(Point(100.1, 0))

    def test_contains_rotated(self):
        c = ConduitRect(Point(0, 0), Point(100, 100), 20)
        assert c.contains(Point(50, 50))
        # ~7.07 m lateral offset < 10 m half-width
        assert c.contains(Point(45, 55))
        # ~14.1 m lateral offset > 10 m half-width
        assert not c.contains(Point(40, 60))

    def test_degenerate_is_disc(self):
        c = ConduitRect(Point(5, 5), Point(5, 5), 10)
        assert c.contains(Point(5, 5))
        assert c.contains(Point(9, 5))
        assert not c.contains(Point(11, 5))

    def test_distance_inside_zero(self):
        c = ConduitRect(Point(0, 0), Point(100, 0), 50)
        assert c.distance_to(Point(50, 10)) == 0

    def test_distance_lateral(self):
        c = ConduitRect(Point(0, 0), Point(100, 0), 50)
        assert c.distance_to(Point(50, 40)) == pytest.approx(15)

    def test_corners_form_rectangle(self):
        c = ConduitRect(Point(0, 0), Point(10, 0), 4)
        corners = c.corners()
        ys = sorted(p.y for p in corners)
        assert ys == [-2, -2, 2, 2]
        xs = sorted(p.x for p in corners)
        assert xs == [0, 0, 10, 10]


class TestConduitPath:
    def test_from_waypoints_chain(self):
        path = ConduitPath.from_waypoints(
            [Point(0, 0), Point(100, 0), Point(100, 100)], width=50
        )
        assert len(path.rects) == 2
        assert path.total_length() == pytest.approx(200)

    def test_from_single_waypoint(self):
        path = ConduitPath.from_waypoints([Point(3, 3)], width=10)
        assert path.contains(Point(3, 3))
        assert path.contains(Point(7, 3))
        assert not path.contains(Point(30, 3))

    def test_empty_waypoints_raises(self):
        with pytest.raises(ValueError):
            ConduitPath.from_waypoints([], width=10)

    def test_contains_any_rect(self):
        path = ConduitPath.from_waypoints(
            [Point(0, 0), Point(100, 0), Point(100, 100)], width=50
        )
        assert path.contains(Point(50, 10))     # first leg
        assert path.contains(Point(110, 50))    # second leg
        assert not path.contains(Point(50, 60))  # in neither

    def test_waypoints_roundtrip(self):
        wps = [Point(0, 0), Point(10, 0), Point(10, 10)]
        path = ConduitPath.from_waypoints(wps, width=5)
        assert path.waypoints() == wps

    def test_corner_coverage_at_waypoint(self):
        """The shared waypoint itself is in both adjacent conduits."""
        path = ConduitPath.from_waypoints(
            [Point(0, 0), Point(100, 0), Point(100, 100)], width=50
        )
        assert path.rects[0].contains(Point(100, 0))
        assert path.rects[1].contains(Point(100, 0))


class TestCoversAll:
    def test_all_points_on_axis(self):
        pts = [Point(x, 0) for x in range(0, 101, 10)]
        assert covers_all(Point(0, 0), Point(100, 0), 50, pts)

    def test_one_point_outside(self):
        pts = [Point(50, 0), Point(50, 40)]
        assert not covers_all(Point(0, 0), Point(100, 0), 50, pts)

    def test_empty_points_trivially_true(self):
        assert covers_all(Point(0, 0), Point(1, 0), 1, [])


class TestConduitProperties:
    @given(points, points, widths)
    @settings(max_examples=60)
    def test_endpoints_always_contained(self, a, b, w):
        c = ConduitRect(a, b, w)
        assert c.contains(a)
        assert c.contains(b)

    @given(points, points, widths, st.floats(min_value=0, max_value=1))
    @settings(max_examples=60)
    def test_axis_points_contained(self, a, b, w, t):
        c = ConduitRect(a, b, w)
        assert c.contains(a.lerp(b, t))

    @given(points, points, widths, points)
    @settings(max_examples=60)
    def test_contains_iff_distance_zero(self, a, b, w, p):
        c = ConduitRect(a, b, w)
        if c.contains(p):
            assert c.distance_to(p) == 0
        else:
            assert c.distance_to(p) >= 0

    @given(points, points, st.floats(min_value=1, max_value=100), points)
    @settings(max_examples=60)
    def test_wider_conduit_is_superset(self, a, b, w, p):
        narrow = ConduitRect(a, b, w)
        wide = ConduitRect(a, b, w * 2)
        if narrow.contains(p):
            assert wide.contains(p)
