"""Tests for the city model and synthetic generators."""

import random

import pytest

from repro.city import (
    Building,
    City,
    Obstacle,
    campus,
    city_from_footprints,
    fractured_city,
    grid_downtown,
    l_shaped_building,
    make_city,
    old_town,
    park_city,
    preset_names,
    residential,
    river_city,
    rotated_rectangle,
    subdivide_block,
)
from repro.geometry import Point, Polygon
from repro.osm import Footprint


def small_city():
    return City(
        name="tiny",
        buildings=[
            Building(1, Polygon.rectangle(0, 0, 20, 20)),
            Building(2, Polygon.rectangle(50, 0, 70, 20)),
        ],
    )


class TestCityModel:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            City(
                "dup",
                [
                    Building(1, Polygon.rectangle(0, 0, 1, 1)),
                    Building(1, Polygon.rectangle(2, 2, 3, 3)),
                ],
            )

    def test_lookup(self):
        c = small_city()
        assert c.building(1).id == 1
        assert c.has_building(2)
        assert not c.has_building(99)
        with pytest.raises(KeyError):
            c.building(99)

    def test_len_iter(self):
        c = small_city()
        assert len(c) == 2
        assert [b.id for b in c] == [1, 2]

    def test_bounds(self):
        assert small_city().bounds() == (0, 0, 70, 20)

    def test_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            City("empty", []).bounds()

    def test_bounds_include_obstacles(self):
        c = City(
            "obs",
            [Building(1, Polygon.rectangle(0, 0, 10, 10))],
            [Obstacle(Polygon.rectangle(-50, -50, -40, -40), "water")],
        )
        assert c.bounds()[0] == -50

    def test_total_building_area(self):
        assert small_city().total_building_area() == 800

    def test_buildings_near(self):
        c = small_city()
        near = c.buildings_near(Point(10, 10), 5)
        assert [b.id for b in near] == [1]

    def test_building_containing(self):
        c = small_city()
        assert c.building_containing(Point(10, 10)).id == 1
        assert c.building_containing(Point(35, 10)) is None

    def test_nearest_building(self):
        c = small_city()
        assert c.nearest_building(Point(45, 10)).id == 2
        assert City("e", []).nearest_building(Point(0, 0)) is None

    def test_from_footprints(self):
        fps = [Footprint(7, Polygon.rectangle(0, 0, 10, 10), {"building": "house"})]
        c = city_from_footprints("osm-city", fps)
        assert c.building(7).kind == "house"


class TestBlockHelpers:
    def test_subdivide_counts(self):
        rng = random.Random(0)
        polys = subdivide_block(0, 0, 100, 100, rng, lots_x=2, lots_y=2, occupancy=1.0)
        assert len(polys) == 4

    def test_subdivide_occupancy_zero(self):
        rng = random.Random(0)
        assert subdivide_block(0, 0, 100, 100, rng, occupancy=0.0) == []

    def test_subdivide_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            subdivide_block(0, 0, 10, 10, rng, lots_x=0)
        with pytest.raises(ValueError):
            subdivide_block(0, 0, 10, 10, rng, occupancy=2)

    def test_subdivide_respects_setback(self):
        rng = random.Random(1)
        for poly in subdivide_block(0, 0, 100, 100, rng, setback=5.0, jitter=0.0):
            min_x, min_y, max_x, max_y = poly.bbox
            assert min_x >= 5 - 1e-9 and min_y >= 5 - 1e-9
            assert max_x <= 95 + 1e-9 and max_y <= 95 + 1e-9

    def test_rotated_rectangle_area(self):
        poly = rotated_rectangle(Point(0, 0), 10, 6, 0.7)
        assert poly.area() == pytest.approx(60)

    def test_rotated_rectangle_validation(self):
        with pytest.raises(ValueError):
            rotated_rectangle(Point(0, 0), 0, 5, 0)

    def test_l_shape_area(self):
        poly = l_shaped_building(0, 0, 10, 10, notch_fraction=0.5)
        assert poly.area() == pytest.approx(75)

    def test_l_shape_validation(self):
        with pytest.raises(ValueError):
            l_shaped_building(0, 0, 1, 1, notch_fraction=1.0)


class TestGenerators:
    def test_grid_downtown_deterministic(self):
        a = grid_downtown(seed=5)
        b = grid_downtown(seed=5)
        assert len(a) == len(b)
        assert a.buildings[0].polygon.vertices == b.buildings[0].polygon.vertices

    def test_grid_downtown_seed_changes_layout(self):
        a = grid_downtown(seed=1)
        b = grid_downtown(seed=2)
        assert a.buildings[0].polygon.vertices != b.buildings[0].polygon.vertices

    def test_residential_smaller_buildings(self):
        dt = grid_downtown(seed=0)
        res = residential(seed=0)
        mean_dt = dt.total_building_area() / len(dt)
        mean_res = res.total_building_area() / len(res)
        assert mean_res < mean_dt / 4

    def test_campus_has_quads(self):
        c = campus(seed=0)
        assert len(c.obstacles) == 2
        assert all(o.kind == "park" for o in c.obstacles)
        assert len(c) > 20

    def test_campus_buildings_avoid_quads(self):
        c = campus(seed=3)
        for b in c.buildings:
            for o in c.obstacles:
                assert b.polygon.distance_to_polygon(o.polygon) > 0

    def test_river_city_no_buildings_in_river(self):
        c = river_city(seed=0, bridges=0)
        river = c.obstacles[0].polygon
        for b in c.buildings:
            assert b.polygon.distance_to_polygon(river) > 0

    def test_river_city_bridges_add_structures(self):
        without = river_city(seed=0, bridges=0)
        with_bridges = river_city(seed=0, bridges=2)
        bridge_buildings = [b for b in with_bridges.buildings if b.kind == "bridge"]
        assert bridge_buildings
        assert len(with_bridges) > len(without)

    def test_park_city_has_central_void(self):
        c = park_city(seed=0)
        park = c.obstacles[0].polygon
        center = park.centroid()
        assert c.building_containing(center) is None

    def test_fractured_city_obstacle_kinds(self):
        c = fractured_city(seed=0)
        kinds = sorted(o.kind for o in c.obstacles)
        assert kinds == ["highway", "highway", "water"]

    def test_old_town_no_overlaps(self):
        c = old_town(seed=0, building_count=60, radius=300)
        polys = [b.polygon for b in c.buildings]
        # Spot-check pairwise separation on a sample.
        for i in range(0, len(polys), 7):
            for j in range(i + 1, min(i + 5, len(polys))):
                assert polys[i].distance_to_polygon(polys[j]) > 0


class TestPresets:
    def test_all_presets_instantiate(self):
        for name in preset_names():
            c = make_city(name, seed=0)
            assert len(c) > 10, name
            assert c.name == name

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            make_city("atlantis")

    def test_riverton_differs_from_pontsville(self):
        riverton = make_city("riverton")
        pontsville = make_city("pontsville")
        assert len(pontsville) > len(riverton)  # bridges add structures
