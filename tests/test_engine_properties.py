"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=60
)


class TestEngineProperties:
    @given(delays)
    @settings(max_examples=60)
    def test_events_fire_in_nondecreasing_time_order(self, ds):
        env = Environment()
        fired: list[float] = []
        for d in ds:
            env.timeout(d).callbacks.append(lambda _e: fired.append(env.now))
        env.run()
        assert len(fired) == len(ds)
        assert all(a <= b for a, b in zip(fired, fired[1:]))
        assert sorted(fired) == sorted(ds)

    @given(delays)
    @settings(max_examples=60)
    def test_equal_times_fire_in_scheduling_order(self, ds):
        env = Environment()
        order: list[int] = []
        # Schedule every event at the same instant; FIFO must hold.
        for i, _ in enumerate(ds):
            env.timeout(1.0).callbacks.append(lambda _e, i=i: order.append(i))
        env.run()
        assert order == list(range(len(ds)))

    @given(delays)
    @settings(max_examples=40)
    def test_clock_never_goes_backwards(self, ds):
        env = Environment()
        observed: list[float] = []

        def proc():
            for d in sorted(ds):
                yield env.timeout(max(0.0, d - env.now))
                observed.append(env.now)

        env.process(proc())
        env.run()
        assert all(a <= b for a, b in zip(observed, observed[1:]))

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40)
    def test_nested_processes_complete(self, depth, seed):
        env = Environment()
        trace: list[int] = []

        def worker(level: int):
            yield env.timeout(0.001 * (seed % 7 + 1))
            trace.append(level)
            if level > 0:
                result = yield env.process(worker(level - 1))
                return result + 1
            return 0

        p = env.process(worker(depth))
        result = env.run(until=p)
        assert result == depth
        assert trace == list(range(depth, -1, -1))

    @given(delays)
    @settings(max_examples=40)
    def test_run_until_time_is_resumable(self, ds):
        """Running in two halves produces the same firings as one run."""
        cut = max(ds) / 2 if ds else 0.0

        def run_split():
            env = Environment()
            fired = []
            for d in ds:
                env.timeout(d).callbacks.append(lambda _e, d=d: fired.append(d))
            env.run(until=cut)
            env.run()
            return fired

        def run_whole():
            env = Environment()
            fired = []
            for d in ds:
                env.timeout(d).callbacks.append(lambda _e, d=d: fired.append(d))
            env.run()
            return fired

        assert run_split() == run_whole()
