"""Regression tests for specific bugs found during development."""

import random

from repro.city import make_city
from repro.geometry import GridIndex, Point
from repro.mesh import APGraph, AccessPoint, place_aps


class TestDenormalUnderflow:
    def test_radius_zero_excludes_denormal_offset(self):
        """Squared distances underflow for denormal offsets; the index
        must match Point.distance_to semantics exactly."""
        idx = GridIndex(1.0)
        idx.insert("p", Point(0.0, 8.3e-186))
        assert idx.query_radius(Point(0.0, 0.0), 0.0) == []
        assert idx.query_radius(Point(0.0, 0.0), 1e-185) == ["p"]


class TestComponentCache:
    def test_component_ids_consistent_with_bfs(self):
        city = make_city("riverton", seed=1)
        g = APGraph(place_aps(city, rng=random.Random(1)))
        labels = g.component_ids()
        # Same label <=> mutually reachable (checked on a sample).
        rng = random.Random(2)
        for _ in range(20):
            u = rng.randrange(len(g.aps))
            v = rng.randrange(len(g.aps))
            same = labels[u] == labels[v]
            assert same == (v in g.component_of(u))

    def test_cache_is_stable_across_calls(self):
        g = APGraph([AccessPoint(0, Point(0, 0), 1), AccessPoint(1, Point(40, 0), 2)])
        assert g.component_ids() is g.component_ids()

    def test_new_graph_gets_fresh_cache(self):
        """apply_bridges builds a new APGraph, so the cache never goes
        stale — verify the new graph recomputes."""
        from repro.mesh import apply_bridges, bridge_all_islands

        city = make_city("riverton", seed=2)
        g = APGraph(place_aps(city, rng=random.Random(2)))
        before = len(set(g.component_ids()))
        _, new_aps = bridge_all_islands(g, min_island_size=5)
        bridged = apply_bridges(g, new_aps)
        after = len(set(bridged.component_ids()))
        assert after < before  # islands merged
        # The original graph's cache is untouched.
        assert len(set(g.component_ids())) == before


class TestBridgeStructuresKeepDeliberateAps:
    def test_pontsville_banks_connected(self):
        """The bridge kiosk bug: randomly placed APs left >range gaps
        along bridges; deliberate spacing must keep the banks joined."""
        city = make_city("pontsville", seed=1)
        g = APGraph(place_aps(city, rng=random.Random(1)))
        comps = g.components()
        assert len(comps[0]) / len(g.aps) > 0.95
