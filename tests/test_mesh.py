"""Tests for AP placement, the AP graph, islands, and bridge planning."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.city import Building, City, make_city, river_city
from repro.geometry import Point, Polygon
from repro.mesh import (
    APGraph,
    AccessPoint,
    apply_bridges,
    bridge_all_islands,
    closest_gap,
    find_islands,
    place_aps,
    plan_bridge,
)


def line_of_aps(xs, building_id=1):
    return [AccessPoint(i, Point(x, 0.0), building_id) for i, x in enumerate(xs)]


def two_building_city(gap: float):
    """Two 20x20 buildings separated by ``gap`` metres edge to edge."""
    return City(
        "pair",
        [
            Building(1, Polygon.rectangle(0, 0, 20, 20)),
            Building(2, Polygon.rectangle(20 + gap, 0, 40 + gap, 20)),
        ],
    )


class TestPlacement:
    def test_density_validation(self):
        with pytest.raises(ValueError):
            place_aps(two_building_city(10), density=0)

    def test_expected_count_scales_with_density(self):
        city = two_building_city(10)  # total building area 800 m2
        rng = random.Random(0)
        aps = place_aps(city, density=1 / 40, rng=rng)  # expect ~20
        assert 10 <= len(aps) <= 30

    def test_aps_inside_their_building(self):
        city = make_city("gridport", seed=0)
        aps = place_aps(city, rng=random.Random(0))
        for ap in aps[:200]:
            assert city.building(ap.building_id).polygon.contains(ap.position)

    def test_ids_contiguous(self):
        city = make_city("gridport", seed=0)
        aps = place_aps(city, rng=random.Random(0))
        assert [ap.id for ap in aps] == list(range(len(aps)))

    def test_deterministic_with_seed(self):
        city = two_building_city(10)
        a = place_aps(city, rng=random.Random(7))
        b = place_aps(city, rng=random.Random(7))
        assert a == b

    def test_fractional_expectation(self):
        """A building smaller than 1/density still gets APs sometimes."""
        city = City("small", [Building(1, Polygon.rectangle(0, 0, 10, 10))])  # 100 m2
        total = 0
        for seed in range(200):
            total += len(place_aps(city, density=1 / 200, rng=random.Random(seed)))
        # Expectation is 0.5 per trial -> ~100 out of 200.
        assert 60 <= total <= 140


class TestAPGraph:
    def test_range_validation(self):
        with pytest.raises(ValueError):
            APGraph(aps=[], transmission_range=0)

    def test_noncontiguous_ids_rejected(self):
        with pytest.raises(ValueError):
            APGraph(aps=[AccessPoint(5, Point(0, 0), 1)])

    def test_adjacency_unit_disk(self):
        g = APGraph(line_of_aps([0, 40, 80, 200]), transmission_range=50)
        assert set(g.neighbors(0)) == {1}
        assert set(g.neighbors(1)) == {0, 2}
        assert g.neighbors(3) == []
        assert g.degree(1) == 2

    def test_edge_count(self):
        g = APGraph(line_of_aps([0, 40, 80]), transmission_range=50)
        assert g.edge_count() == 2

    def test_inclusive_range_boundary(self):
        g = APGraph(line_of_aps([0, 50]), transmission_range=50)
        assert g.neighbors(0) == [1]

    def test_hop_distance(self):
        g = APGraph(line_of_aps([0, 40, 80, 120]), transmission_range=50)
        assert g.hop_distance(0, 0) == 0
        assert g.hop_distance(0, 3) == 3
        g2 = APGraph(line_of_aps([0, 40, 200]), transmission_range=50)
        assert g2.hop_distance(0, 2) is None

    def test_shortest_path(self):
        g = APGraph(line_of_aps([0, 40, 80, 120]), transmission_range=50)
        assert g.shortest_path(0, 3) == [0, 1, 2, 3]
        assert g.shortest_path(2, 2) == [2]
        g2 = APGraph(line_of_aps([0, 200]), transmission_range=50)
        assert g2.shortest_path(0, 1) is None

    def test_min_hops_to_building(self):
        aps = [
            AccessPoint(0, Point(0, 0), 1),
            AccessPoint(1, Point(40, 0), 1),
            AccessPoint(2, Point(80, 0), 2),
        ]
        g = APGraph(aps, transmission_range=50)
        assert g.min_hops_to_building(0, 2) == 2
        assert g.min_hops_to_building(2, 2) == 0
        assert g.min_hops_to_building(0, 99) is None

    def test_components(self):
        g = APGraph(line_of_aps([0, 40, 200, 240, 280]), transmission_range=50)
        comps = g.components()
        assert [len(c) for c in comps] == [3, 2]

    def test_buildings_reachable(self):
        aps = [
            AccessPoint(0, Point(0, 0), 1),
            AccessPoint(1, Point(40, 0), 2),
            AccessPoint(2, Point(500, 0), 3),
        ]
        g = APGraph(aps, transmission_range=50)
        assert g.buildings_reachable(1, 2)
        assert not g.buildings_reachable(1, 3)
        assert not g.buildings_reachable(1, 99)

    def test_aps_within(self):
        g = APGraph(line_of_aps([0, 100]), transmission_range=50)
        assert g.aps_within(Point(10, 0), 20) == [0]

    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False),
                    min_size=2, max_size=30, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_adjacency_symmetric(self, xs):
        g = APGraph(line_of_aps(sorted(xs)), transmission_range=60)
        for ap in g.aps:
            for n in g.neighbors(ap.id):
                assert ap.id in g.neighbors(n)


class TestIslands:
    def test_find_islands_ordering(self):
        g = APGraph(line_of_aps([0, 40, 80, 500, 540]), transmission_range=50)
        islands = find_islands(g)
        assert [i.size for i in islands] == [3, 2]

    def test_min_size_filter(self):
        g = APGraph(line_of_aps([0, 40, 80, 500]), transmission_range=50)
        islands = find_islands(g, min_size=2)
        assert len(islands) == 1

    def test_island_building_ids(self):
        aps = [AccessPoint(0, Point(0, 0), 7), AccessPoint(1, Point(40, 0), 8)]
        g = APGraph(aps, transmission_range=50)
        assert find_islands(g)[0].building_ids == frozenset({7, 8})

    def test_alive_subset_none_matches_full(self):
        g = APGraph(line_of_aps([0, 40, 80, 500, 540]), transmission_range=50)
        full = find_islands(g)
        explicit = find_islands(g, alive=range(len(g.aps)))
        assert {i.ap_ids for i in full} == {i.ap_ids for i in explicit}

    def test_alive_subset_splits_island(self):
        """Killing the middle AP of a chain splits its island in two,
        with ids reported in the original graph's id space."""
        g = APGraph(line_of_aps([0, 40, 80, 120, 160]), transmission_range=50)
        assert len(find_islands(g)) == 1
        islands = find_islands(g, alive={0, 1, 3, 4})
        assert {i.ap_ids for i in islands} == {frozenset({0, 1}), frozenset({3, 4})}

    def test_alive_subset_min_size(self):
        g = APGraph(line_of_aps([0, 40, 80, 120]), transmission_range=50)
        islands = find_islands(g, min_size=2, alive={0, 1, 3})
        assert [i.ap_ids for i in islands] == [frozenset({0, 1})]

    def test_alive_subset_empty(self):
        g = APGraph(line_of_aps([0, 40]), transmission_range=50)
        assert find_islands(g, alive=set()) == []

    def test_alive_subset_unknown_id_raises(self):
        g = APGraph(line_of_aps([0, 40]), transmission_range=50)
        with pytest.raises(IndexError):
            find_islands(g, alive={0, 99})

    def test_alive_subset_matches_full_rebuild(self):
        """The incremental path must agree with rebuilding the surviving
        mesh from scratch (modulo the rebuild's id re-indexing)."""
        from repro.mesh import PowerProfile, PowerSource, surviving_mesh

        city = river_city(seed=3, bridges=0, blocks_x=4, blocks_y=4)
        g = APGraph(place_aps(city, rng=random.Random(3)))
        rng = random.Random(7)
        profiles = {
            ap.id: (
                PowerProfile(PowerSource.GENERATOR)
                if rng.random() < 0.6
                else PowerProfile(PowerSource.NONE)
            )
            for ap in g.aps
        }
        alive = {ap.id for ap in g.aps if profiles[ap.id].alive_at(4.0)}

        incremental = find_islands(g, alive=alive)
        assert all(i.ap_ids <= alive for i in incremental)

        rebuilt_graph = surviving_mesh(g, profiles, 4.0)
        rebuilt = find_islands(rebuilt_graph)
        # Compare islands by the positions of their member APs: the
        # rebuild re-indexes ids, positions are the stable identity.
        def position_sets(graph, islands):
            return {
                frozenset(graph.position(a) for a in i.ap_ids) for i in islands
            }

        assert position_sets(g, incremental) == position_sets(
            rebuilt_graph, rebuilt
        )
        assert {i.building_ids for i in incremental} == {
            i.building_ids for i in rebuilt
        }

    def test_closest_gap(self):
        g = APGraph(line_of_aps([0, 40, 300, 340]), transmission_range=50)
        islands = find_islands(g)
        a, b, d = closest_gap(g, islands[0], islands[1])
        assert {a, b} == {1, 2}
        assert d == pytest.approx(260)

    def test_plan_bridge_chain_spacing(self):
        g = APGraph(line_of_aps([0, 40, 300, 340]), transmission_range=50)
        islands = find_islands(g)
        plan = plan_bridge(g, islands[0], islands[1])
        assert plan.ap_count >= 5
        # Consecutive chain positions must be within range.
        pts = [g.position(plan.from_ap), *plan.new_positions, g.position(plan.to_ap)]
        for p, q in zip(pts, pts[1:]):
            assert p.distance_to(q) <= 50 + 1e-9

    def test_plan_bridge_already_connected_gap(self):
        g = APGraph(line_of_aps([0, 40, 95, 135]), transmission_range=50)
        islands = find_islands(g)
        # Gap of 55 m: one AP graph break but no new APs needed? 55 > 50,
        # so exactly one intermediate AP should appear.
        plan = plan_bridge(g, islands[0], islands[1])
        assert plan.ap_count == 1

    def test_plan_bridge_spacing_validation(self):
        g = APGraph(line_of_aps([0, 200]), transmission_range=50)
        islands = find_islands(g)
        with pytest.raises(ValueError):
            plan_bridge(g, islands[0], islands[1], spacing_factor=0)

    def test_bridge_all_islands_end_to_end(self):
        """Bridging a river city reconnects the two banks."""
        city = river_city(seed=2, bridges=0, blocks_x=5, blocks_y=5)
        aps = place_aps(city, rng=random.Random(2))
        g = APGraph(aps)
        before = g.components()
        assert len(before) >= 2
        plans, new_aps = bridge_all_islands(g, min_island_size=5)
        assert plans and new_aps
        bridged = apply_bridges(g, new_aps)
        comps_after = [c for c in bridged.components() if len(c) >= 5]
        assert len(comps_after) == 1

    def test_bridge_all_islands_noop_when_connected(self):
        g = APGraph(line_of_aps([0, 40, 80]), transmission_range=50)
        plans, new_aps = bridge_all_islands(g)
        assert plans == [] and new_aps == []


class TestWithAddedAps:
    """APGraph.with_added_aps must reproduce a fresh build byte-exactly.

    The columnar broadcast kernel aligns RNG draws with adjacency-list
    order, so these tests require *exact list equality* (including
    neighbour order), not just the same edge set.
    """

    @staticmethod
    def _world(preset="gridport", seed=0):
        city = make_city(preset, seed=seed)
        aps = place_aps(city, rng=random.Random(seed))
        return city, APGraph(aps)

    @staticmethod
    def _assert_identical(extended, fresh):
        assert len(extended) == len(fresh)
        assert extended.adjacency_lists() == fresh.adjacency_lists()
        for b in {ap.building_id for ap in fresh.aps}:
            assert extended.aps_in_building(b) == fresh.aps_in_building(b)

    def test_extension_matches_fresh_build(self):
        city, base = self._world()
        plans, new_aps = bridge_all_islands(base, min_island_size=2)
        if not new_aps:  # connected world: manufacture a deploy anyway
            n0 = len(base.aps)
            new_aps = [
                AccessPoint(n0 + i, Point(30.0 * i, -40.0), 1)
                for i in range(4)
            ]
        extended = base.with_added_aps(new_aps)
        fresh = APGraph(list(base.aps) + list(new_aps))
        self._assert_identical(extended, fresh)
        assert extended.version == base.version + 1
        assert fresh.version == 0
        # The base graph is untouched (immutability contract).
        assert len(base) == len(fresh) - len(new_aps)
        assert all(w < len(base) for lst in base.adjacency_lists() for w in lst)

    def test_chained_extensions_bump_version(self):
        _, base = self._world()
        n0 = len(base.aps)
        batch1 = [AccessPoint(n0, Point(5.0, -30.0), 1)]
        batch2 = [
            AccessPoint(n0 + 1, Point(25.0, -30.0), 1),
            AccessPoint(n0 + 2, Point(45.0, -30.0), 1),
        ]
        g1 = base.with_added_aps(batch1)
        g2 = g1.with_added_aps(batch2)
        assert (base.version, g1.version, g2.version) == (0, 1, 2)
        fresh = APGraph(list(base.aps) + batch1 + batch2)
        self._assert_identical(g2, fresh)

    def test_override_range_within_cell_is_incremental(self):
        _, base = self._world()
        n0 = len(base.aps)
        new_aps = [AccessPoint(n0, Point(10.0, -20.0), 1, range_m=45.0)]
        extended = base.with_added_aps(new_aps)
        assert extended.version == base.version + 1
        self._assert_identical(extended, APGraph(list(base.aps) + new_aps))

    def test_oversized_range_falls_back_to_full_rebuild(self):
        _, base = self._world()
        n0 = len(base.aps)
        new_aps = [AccessPoint(n0, Point(10.0, -20.0), 1, range_m=500.0)]
        extended = base.with_added_aps(new_aps)
        assert extended.version == 0  # fresh build, not an extension
        self._assert_identical(extended, APGraph(list(base.aps) + new_aps))

    def test_noncontiguous_ids_rejected(self):
        _, base = self._world()
        with pytest.raises(ValueError):
            base.with_added_aps(
                [AccessPoint(len(base.aps) + 5, Point(0.0, -20.0), 1)]
            )

    def test_empty_batch_returns_self(self):
        _, base = self._world()
        assert base.with_added_aps([]) is base
