"""Tests for the §5 scaling model."""

import pytest

from repro.experiments import control_load, format_scaling, run_scaling


class TestScalingModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            control_load(0)

    def test_citymesh_zero_control(self):
        for n in (100, 10_000, 1_000_000):
            assert control_load(n).citymesh_bytes_per_min == 0.0

    def test_dsdv_linear_growth(self):
        small = control_load(1_000)
        large = control_load(10_000)
        assert large.dsdv_bytes_per_min == pytest.approx(
            10 * small.dsdv_bytes_per_min
        )

    def test_aodv_grows_with_network(self):
        small = control_load(1_000)
        large = control_load(100_000)
        assert large.aodv_bytes_per_min > small.aodv_bytes_per_min * 50

    def test_olsr_dominated_by_tc_at_scale(self):
        huge = control_load(1_000_000)
        # At city scale the constant HELLO term is negligible.
        assert huge.olsr_bytes_per_min > 1e6

    def test_map_cache_modest_even_at_metro_scale(self):
        """The map a device must cache stays phone-sized (§2: 'today's
        devices can easily cache the data necessary')."""
        metro = control_load(1_000_000)
        assert metro.citymesh_map_cache_mb < 50

    def test_run_scaling_rows(self):
        rows = run_scaling(sizes=(1_000, 10_000))
        assert [r.nodes for r in rows] == [1_000, 10_000]

    def test_format(self):
        out = format_scaling(run_scaling(sizes=(1_000,)))
        assert "scaling" in out
        assert "DSDV" in out

    def test_citymesh_wins_everywhere(self):
        for row in run_scaling():
            assert row.citymesh_bytes_per_min < row.dsdv_bytes_per_min
            assert row.citymesh_bytes_per_min < row.olsr_bytes_per_min
            assert row.citymesh_bytes_per_min < row.aodv_bytes_per_min
