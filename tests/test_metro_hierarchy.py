"""Correctness tests for the metro hierarchy (repro.buildgraph.hierarchy).

The contract under test: a :class:`MetroRouter` planning through
region-contracted overlays returns routes **cost-identical** to the
flat planner (only float association order may differ), partitioning
is deterministic under a seed, and mutations rebuild only the touched
regions' overlays.
"""

import math
import random

import pytest

from repro.buildgraph import (
    BuildingGraph,
    MetroRouter,
    NoRouteError,
    attach_hierarchy,
    partition_regions,
)
from repro.city import Building
from repro.city.generators import metro_grid
from repro.core import BuildingRouter
from repro.geometry import Polygon
from repro.obs import REGISTRY

# ~5k buildings: large enough for a real multi-region partition,
# small enough to flat-plan a reference batch in seconds.
COLS = ROWS = 71
N = COLS * ROWS
REGION_SIZE = 600


def _route_cost(graph, route):
    """Sum of edge weights along a route (asserts every hop exists)."""
    total = 0.0
    for a, b in zip(route, route[1:]):
        total += graph.neighbors(a)[b]
    return total


def _regions_touched(router, route):
    return {router.partition.region_of[b] for b in route}


@pytest.fixture(scope="module")
def metro_city():
    return metro_grid(seed=3, cols=COLS, rows=ROWS, name="metro-5k")


@pytest.fixture(scope="module")
def metro_graph(metro_city):
    graph = BuildingGraph(metro_city)
    attach_hierarchy(graph, target_region_size=REGION_SIZE, seed=0)
    return graph


@pytest.fixture(scope="module")
def flat_graph(metro_city):
    """An independent flat-planner reference over the same city."""
    return BuildingGraph(metro_city)


def far_pairs(count, seed=11):
    """Corner-to-corner-ish pairs: the routes that cross many regions."""
    rng = random.Random(seed)
    low = range(1, COLS + 1)
    high = range(N - COLS + 1, N + 1)
    return [(rng.choice(low), rng.choice(high)) for _ in range(count)]


# ----------------------------------------------------------------------
# Partition
# ----------------------------------------------------------------------
def test_partition_covers_every_building(metro_graph):
    partition = metro_graph.hierarchy.partition
    seen = set()
    for region in partition.regions:
        assert not seen & set(region.members), "regions overlap"
        seen.update(region.members)
    assert seen == set(metro_graph)
    assert len(partition.regions) >= 4
    # region_of is the inverse mapping
    for region in partition.regions:
        assert all(partition.region_of[b] == region.index for b in region.members)


def test_partition_deterministic(metro_graph, flat_graph):
    a = partition_regions(flat_graph, target_region_size=REGION_SIZE, seed=0)
    b = partition_regions(flat_graph, target_region_size=REGION_SIZE, seed=0)
    assert [r.members for r in a.regions] == [r.members for r in b.regions]
    # ... and matches the partition the module fixture built.
    ours = metro_graph.hierarchy.partition
    assert [r.members for r in a.regions] == [r.members for r in ours.regions]


# ----------------------------------------------------------------------
# Cost equivalence with the flat planner
# ----------------------------------------------------------------------
def test_cross_region_routes_match_flat_cost(metro_graph, flat_graph):
    router = metro_graph.hierarchy
    pairs = far_pairs(40)
    multi_region = 0
    for src, dst in pairs:
        hier = router.plan(src, dst)
        flat = flat_graph.plan(src, dst)
        assert hier[0] == src and hier[-1] == dst
        h_cost = _route_cost(metro_graph, hier)  # validates every hop
        f_cost = _route_cost(flat_graph, flat)
        assert math.isclose(h_cost, f_cost, rel_tol=1e-9), (src, dst)
        if len(_regions_touched(router, hier)) >= 2:
            multi_region += 1
    # The far pairs exist to exercise the overlay: nearly all must
    # cross regions, and corner-to-corner ones span several.
    assert multi_region >= len(pairs) * 3 // 4
    assert any(
        len(_regions_touched(router, router.plan(s, d))) >= 3
        for s, d in pairs
    )


def test_random_pairs_match_flat_cost(metro_graph, flat_graph):
    router = metro_graph.hierarchy
    rng = random.Random(5)
    for _ in range(60):
        src, dst = rng.sample(range(1, N + 1), 2)
        h_cost = _route_cost(metro_graph, router.plan(src, dst))
        f_cost = _route_cost(flat_graph, flat_graph.plan(src, dst))
        assert math.isclose(h_cost, f_cost, rel_tol=1e-9), (src, dst)


def test_same_region_and_trivial_plans(metro_graph):
    router = metro_graph.hierarchy
    region = router.partition.regions[0]
    src, dst = region.members[0], region.members[-1]
    route = router.plan(src, dst)
    assert route[0] == src and route[-1] == dst
    assert router.plan(src, src) == [src]
    with pytest.raises(KeyError):
        router.plan(src, N + 999)


def test_batched_plan_routes_and_router_dispatch(metro_city, metro_graph):
    router = metro_graph.hierarchy
    pairs = far_pairs(6, seed=23) + [(1, N + 999)]
    results = router.plan_routes(pairs)
    assert results[-1] is None  # unknown id, flat-planner semantics
    assert all(r is not None for r in results[:-1])
    # BuildingRouter dispatches through the attached hierarchy.
    core = BuildingRouter(metro_city, graph=metro_graph)
    assert core._planner() is router
    plan = core.plan(*pairs[0])
    assert plan.route[0] == pairs[0][0] and plan.route[-1] == pairs[0][1]


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------
@pytest.fixture()
def small_pair():
    """A fresh, mutable ~1.6k-building world with hierarchy + flat ref."""
    city = metro_grid(seed=7, cols=40, rows=40, name="metro-1k6")
    graph = BuildingGraph(city)
    attach_hierarchy(graph, target_region_size=220, seed=0)
    graph.hierarchy.build_overlays()
    return graph, BuildingGraph(city)


def test_patch_rebuilds_only_touched_regions(small_pair):
    graph, flat = small_pair
    router = graph.hierarchy
    n_regions = len(router.partition)
    assert n_regions >= 4
    # Demolish a handful of buildings from one region's interior.
    region = router.partition.regions[0]
    doomed = list(region.members[8:12])
    graph.patch(remove=doomed)
    flat.patch(remove=doomed)
    dirty = set(router._dirty)
    assert region.index in dirty
    assert len(dirty) < n_regions  # not a metro-wide rebuild
    before = router.stats()["region_rebuilds"]
    router.build_overlays()
    rebuilt = router.stats()["region_rebuilds"] - before
    assert rebuilt == len(dirty)
    # Routes over the patched graph still match the flat planner.
    rng = random.Random(2)
    alive = sorted(set(graph))
    for _ in range(25):
        src, dst = rng.sample(alive, 2)
        h_cost = _route_cost(graph, router.plan(src, dst))
        f_cost = _route_cost(flat, flat.plan(src, dst))
        assert math.isclose(h_cost, f_cost, rel_tol=1e-9), (src, dst)


def test_add_link_and_building_invalidate(small_pair):
    graph, flat = small_pair
    router = graph.hierarchy
    # A long-range announced link (bridge infrastructure).
    a, b = 1, 1600
    graph.add_link(a, b, weight=5.0)
    flat.add_link(a, b, weight=5.0)
    assert router.partition.region_of[a] in router._dirty
    route = router.plan(a, b)
    assert route == [a, b]
    assert flat.plan(a, b) == [a, b]
    # A new building joins its nearest region and is routable.
    new = Building(9001, Polygon.rectangle(200.0, 200.0, 230.0, 230.0))
    graph.add_building(new)
    flat.add_building(new)
    assert router.partition.region_of[9001] is not None
    h_cost = _route_cost(graph, router.plan(9001, 800))
    f_cost = _route_cost(flat, flat.plan(9001, 800))
    assert math.isclose(h_cost, f_cost, rel_tol=1e-9)


def test_disconnected_islands_raise_no_route(small_pair):
    graph, flat = small_pair
    router = graph.hierarchy
    # Sever the grid down the middle: drop three full columns so no
    # predicted edge spans the cut (jittered pitch ~45 m, threshold
    # well below 3 * 45 m).
    cut_cols = (19, 20, 21)
    doomed = [j * 40 + i + 1 for j in range(40) for i in cut_cols]
    graph.patch(remove=doomed)
    flat.patch(remove=doomed)
    with pytest.raises(NoRouteError):
        router.plan(1, 40)
    # The negative result is cached per shard; a repeat still raises.
    with pytest.raises(NoRouteError):
        router.plan(1, 40)
    with pytest.raises(NoRouteError):
        flat.plan(1, 40)


# ----------------------------------------------------------------------
# Cache instrumentation
# ----------------------------------------------------------------------
def test_stats_and_cache_gauges(metro_graph):
    router = metro_graph.hierarchy
    src, dst = far_pairs(1, seed=41)[0]
    router.plan(src, dst)
    hits_before = router.stats()["route_cache_hits"]
    router.plan(src, dst)  # warm: must hit the route shard
    stats = router.stats()
    assert stats["route_cache_hits"] == hits_before + 1
    assert stats["route_cache_entries"] >= 1
    assert stats["route_cache_approx_bytes"] > 0
    assert stats["regions"] == len(router.partition)
    assert stats["borders"] > 0
    # stats() publishes the gauges to the shared registry.
    for family in ("route_cache", "expansion_cache", "terminal_cache"):
        gauge = REGISTRY.gauge(f"metro.{family}.entries")
        assert gauge.value == stats[f"{family}_entries"]
        bytes_gauge = REGISTRY.gauge(f"metro.{family}.approx_bytes")
        assert bytes_gauge.value == stats[f"{family}_approx_bytes"]


def test_shard_stats_rows(metro_graph):
    router = metro_graph.hierarchy
    rows = router.shard_stats()
    assert len(rows) == len(router.partition)
    assert sum(r["members"] for r in rows) == len(metro_graph)
    assert all(r["borders"] > 0 for r in rows)
    assert sum(r["route_entries"] for r in rows) >= 1


def test_attach_returns_router_and_sets_attribute():
    city = metro_grid(seed=9, cols=12, rows=12, name="tiny-metro")
    graph = BuildingGraph(city)
    router = attach_hierarchy(graph, target_region_size=40, seed=1)
    assert isinstance(router, MetroRouter)
    assert graph.hierarchy is router
    route = router.plan(1, 144)
    assert route[0] == 1 and route[-1] == 144
