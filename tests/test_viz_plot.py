"""Tests for the terminal plotting helpers."""

import pytest

from repro.viz import ascii_bar_chart, ascii_line_chart, cdf_chart


class TestLineChart:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})
        with pytest.raises(ValueError):
            ascii_line_chart({"a": []})

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [(0, 0)]}, width=5)

    def test_single_series(self):
        chart = ascii_line_chart({"cdf": [(0, 0), (5, 0.5), (10, 1.0)]})
        assert "* cdf" in chart
        body = "\n".join(chart.splitlines()[1:])
        assert body.count("*") == 3  # one marker per point

    def test_markers_distinct_per_series(self):
        chart = ascii_line_chart(
            {"a": [(0, 0), (10, 1)], "b": [(0, 1), (10, 0)]}
        )
        legend = chart.splitlines()[0]
        assert "* a" in legend and "o b" in legend
        body = "\n".join(chart.splitlines()[1:])
        assert "*" in body and "o" in body

    def test_axis_labels_present(self):
        chart = ascii_line_chart(
            {"s": [(0, 0), (100, 1)]}, x_label="metres", y_label="CDF"
        )
        assert "metres" in chart
        assert "(y: CDF)" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_line_chart({"flat": [(0, 1.0), (10, 1.0)]})
        assert "flat" in chart

    def test_cdf_chart_wrapper(self):
        chart = cdf_chart({"x": [(0, 0), (1, 1)]}, x_label="value")
        assert "(y: CDF)" in chart


class TestBarChart:
    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_bar_chart([], [])

    def test_bars_proportional(self):
        chart = ascii_bar_chart(["full", "half"], [1.0, 0.5], width=40, max_value=1.0)
        lines = chart.splitlines()
        assert lines[0].count("#") == 40
        assert lines[1].count("#") == 20

    def test_labels_aligned(self):
        chart = ascii_bar_chart(["a", "longer-label"], [1, 1])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_zero_values(self):
        chart = ascii_bar_chart(["z"], [0.0])
        assert "#" not in chart

    def test_value_format(self):
        chart = ascii_bar_chart(["x"], [0.123456], value_format="{:.4f}")
        assert "0.1235" in chart
