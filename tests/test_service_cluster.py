"""Multi-worker cluster tests: affinity, forwarding, wakes, drains.

Everything the single-process suite proves must survive the fan-out to
OS worker processes: requests landing on any worker reach the owner's
home worker, pushes wake streams wherever the kernel routed them, and
the exactly-once confirm audit holds when the producer, the stream,
and the checker all arrive over *different* TCP connections (and so,
usually, different workers).

The supervisor tests fork real processes and talk real TCP, so they
keep the workloads small; the forwarding window test drives the
:class:`~repro.service.ipc.PeerLink` protocol in-process.
"""

import asyncio
import base64
import contextlib
import os
import re
import signal
import socket
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.service import (
    ClusterConfig,
    ClusterSupervisor,
    DFNServer,
    ForwardOverloadedError,
    PushStreamClient,
    ServiceApp,
    ServiceClient,
    home_worker,
)
from repro.service.ipc import PeerLink

REPO = Path(__file__).resolve().parent.parent


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


@contextlib.contextmanager
def _cluster(n_workers: int, force_fdpass: bool = False, **config):
    supervisor = ClusterSupervisor(
        ClusterConfig(n_workers=n_workers, **config),
        port=0,
        force_fdpass=force_fdpass,
    )
    supervisor.start()
    clean_exit = None
    try:
        yield supervisor
        supervisor.stop()
        clean_exit = supervisor.wait(timeout=20)
    finally:
        if clean_exit is None:  # test body raised: don't mask its error
            supervisor.stop()
            supervisor.wait(timeout=20)
    assert clean_exit == 0


async def _wait_ready(port: int, attempts: int = 200) -> dict:
    last: Exception | None = None
    for _ in range(attempts):
        client = ServiceClient("127.0.0.1", port)
        try:
            status, out = await client.request("GET", "/v1/healthz")
            if status == 200 and out.get("started"):
                return out
        except OSError as exc:
            last = exc
        finally:
            await client.close()
        await asyncio.sleep(0.05)
    raise AssertionError(f"service never became ready: {last}")


# ---------------------------------------------------------------------------
# basic cluster routing


@pytest.mark.parametrize("force_fdpass", [False, True], ids=["reuseport", "fdpass"])
def test_cluster_roundtrip_and_replication(force_fdpass):
    """Owner-keyed requests work from any connection; geocast and
    directory publishes are visible from every worker."""

    async def body(port: int) -> None:
        health = await _wait_ready(port)
        assert health["workers"] == 2

        owner = "phone-00042"
        payload = _b64(b"cross-worker")
        # Three separate connections: the kernel (or the round-robin
        # parent) is free to land each on a different worker.
        send_client = ServiceClient("127.0.0.1", port)
        check_client = ServiceClient("127.0.0.1", port)
        status, out = await send_client.request(
            "POST",
            "/v1/postbox/send",
            {"owner": owner, "payload": payload, "now_s": 1.0},
        )
        assert status == 200 and out["msg_id"] == 1
        status, out = await check_client.request(
            "POST",
            "/v1/postbox/check",
            {"owner": owner, "x": 0.0, "y": 0.0, "now_s": 2.0},
        )
        assert status == 200
        assert [m["msg_id"] for m in out["messages"]] == [1]

        # Replication: one publish, then polls from many fresh
        # connections must all see it, whichever worker answers.
        status, out = await send_client.request(
            "POST",
            "/v1/geocast/publish",
            {
                "x": 50.0,
                "y": 50.0,
                "radius": 200.0,
                "payload": payload,
                "now_s": 1.0,
            },
        )
        assert status == 200
        geocast_id = out["geocast_id"]
        answered_by = set()
        for _ in range(6):
            poll_client = ServiceClient("127.0.0.1", port)
            status, out = await poll_client.request(
                "POST",
                "/v1/geocast/poll",
                {"x": 50.0, "y": 50.0, "now_s": 2.0},
            )
            assert status == 200
            assert [m["geocast_id"] for m in out["messages"]] == [geocast_id]
            _, health = await poll_client.request("GET", "/v1/healthz")
            answered_by.add(health["worker"])
            await poll_client.close()
        assert answered_by  # at least one worker answered; often both

        await send_client.close()
        await check_client.close()

    with _cluster(2, force_fdpass=force_fdpass) as supervisor:
        assert supervisor.fdpass is force_fdpass
        asyncio.run(body(supervisor.port))


def test_cluster_worker_affine_connect():
    """prefer_worker redials until the kernel lands the connection on
    the requested worker — the loadgen zero-hop affinity primitive."""

    async def body(port: int) -> None:
        await _wait_ready(port)
        for target in (0, 1):
            client = ServiceClient(
                "127.0.0.1", port, prefer_worker=target, connect_attempts=64
            )
            _, health = await client.request("GET", "/v1/healthz")
            assert health["worker"] == target
            await client.close()

    with _cluster(2) as supervisor:
        asyncio.run(body(supervisor.port))


# ---------------------------------------------------------------------------
# exactly-once under cross-worker confirms


def test_cluster_exactly_once_with_cross_worker_confirms():
    """The PR 4 audit, clustered: producer, pusher, and checker for
    each owner arrive over independent connections, so confirms and
    checks routinely execute on a non-home worker and take the
    forwarding path.  Every message must still be received exactly
    once, and every duplicate confirm refused."""

    n_workers = 4
    n_owners = 8
    n_msgs = 15
    receipts: Counter = Counter()
    duplicate_confirms: Counter = Counter()

    async def drive(port: int, owner: str) -> None:
        producer_c = ServiceClient("127.0.0.1", port)
        pusher_c = ServiceClient("127.0.0.1", port)
        checker_c = ServiceClient("127.0.0.1", port)
        try:
            # Cache a location so urgent deliveries create push records.
            await checker_c.request(
                "POST",
                "/v1/postbox/check",
                {"owner": owner, "x": 0.0, "y": 0.0, "now_s": 0.0},
            )
            produced = asyncio.Event()

            async def producer() -> None:
                for i in range(n_msgs):
                    status, _ = await producer_c.request(
                        "POST",
                        "/v1/postbox/send",
                        {
                            "owner": owner,
                            "payload": _b64(f"{owner}:{i}".encode()),
                            "urgent": True,
                            "now_s": float(i + 1),
                        },
                    )
                    assert status == 200
                produced.set()

            async def pusher() -> None:
                while True:
                    status, out = await pusher_c.request(
                        "POST", "/v1/postbox/pushes", {"owner": owner}
                    )
                    assert status == 200
                    for push in out["pushes"]:
                        msg_id = push["msg_id"]
                        _, first = await pusher_c.request(
                            "POST",
                            "/v1/postbox/confirm",
                            {"owner": owner, "msg_id": msg_id},
                        )
                        if first["confirmed"]:
                            receipts[(owner, msg_id)] += 1
                        _, second = await pusher_c.request(
                            "POST",
                            "/v1/postbox/confirm",
                            {"owner": owner, "msg_id": msg_id},
                        )
                        if second["confirmed"]:
                            duplicate_confirms[(owner, msg_id)] += 1
                    if produced.is_set() and not out["pushes"]:
                        return
                    await asyncio.sleep(0)

            async def checker() -> None:
                while not produced.is_set():
                    _, out = await checker_c.request(
                        "POST",
                        "/v1/postbox/check",
                        {
                            "owner": owner,
                            "x": 0.0,
                            "y": 0.0,
                            "now_s": float(n_msgs + 1),
                        },
                    )
                    for message in out["messages"]:
                        receipts[(owner, message["msg_id"])] += 1
                    await asyncio.sleep(0)

            await asyncio.gather(producer(), pusher(), checker())
            # Final drain of both paths.
            _, out = await pusher_c.request(
                "POST", "/v1/postbox/pushes", {"owner": owner}
            )
            for push in out["pushes"]:
                _, confirmed = await pusher_c.request(
                    "POST",
                    "/v1/postbox/confirm",
                    {"owner": owner, "msg_id": push["msg_id"]},
                )
                if confirmed["confirmed"]:
                    receipts[(owner, push["msg_id"])] += 1
            _, out = await checker_c.request(
                "POST",
                "/v1/postbox/check",
                {"owner": owner, "x": 0.0, "y": 0.0, "now_s": float(n_msgs + 2)},
            )
            for message in out["messages"]:
                receipts[(owner, message["msg_id"])] += 1
        finally:
            await producer_c.close()
            await pusher_c.close()
            await checker_c.close()

    async def body(port: int) -> None:
        await _wait_ready(port)
        owners = [f"phone-{i:03d}" for i in range(n_owners)]
        # The audit really does span home workers.
        assert len({home_worker(o, n_workers) for o in owners}) > 1
        await asyncio.gather(*(drive(port, o) for o in owners))

        for owner in owners:
            ids = sorted(i for (o, i) in receipts if o == owner)
            assert ids == list(range(1, n_msgs + 1)), owner
        assert all(count == 1 for count in receipts.values())
        assert not duplicate_confirms
        # Nothing left pending anywhere: every owner's final check is
        # empty (receipts above consumed the lot exactly once).
        for owner in owners:
            client = ServiceClient("127.0.0.1", port)
            _, out = await client.request(
                "POST",
                "/v1/postbox/check",
                {"owner": owner, "x": 0.0, "y": 0.0, "now_s": float(n_msgs + 3)},
            )
            assert out["messages"] == []
            await client.close()

    with _cluster(n_workers) as supervisor:
        asyncio.run(body(supervisor.port))


# ---------------------------------------------------------------------------
# wake-on-delivery


def test_wake_on_delivery_single_process():
    """With the safety-net poll set absurdly high, a push can only
    arrive promptly via the delivery wake — so prompt arrival proves
    the wake path, not the poll."""

    async def body() -> None:
        app = ServiceApp()
        server = DFNServer(app, port=0, push_poll_interval_s=30.0)
        await server.start()
        try:
            client = ServiceClient("127.0.0.1", server.port)
            await client.request(
                "POST",
                "/v1/postbox/check",
                {"owner": "bob", "x": 0.0, "y": 0.0, "now_s": 0.0},
            )
            stream = PushStreamClient("127.0.0.1", server.port, owner="bob")
            await stream.connect()
            t0 = time.perf_counter()
            await client.request(
                "POST",
                "/v1/postbox/send",
                {"owner": "bob", "payload": _b64(b"x"), "urgent": True, "now_s": 1.0},
            )
            push = await stream.next_push(timeout_s=5.0)
            elapsed = time.perf_counter() - t0
            assert push["msg_id"] == 1
            assert elapsed < 1.0, f"wake took {elapsed:.3f}s — poll fallback?"
            assert await stream.confirm(push["msg_id"]) is True
            await stream.close()
            await client.close()
        finally:
            await server.close()

    asyncio.run(body())


def test_cluster_wake_crosses_workers():
    """A stream parked on any worker is woken by a delivery accepted
    anywhere — the watch/wake frames carry it home and back."""

    async def body(port: int) -> None:
        await _wait_ready(port)
        owner = "phone-07777"
        client = ServiceClient("127.0.0.1", port)
        await client.request(
            "POST",
            "/v1/postbox/check",
            {"owner": owner, "x": 0.0, "y": 0.0, "now_s": 0.0},
        )
        # Several streams in sequence: fresh connections scatter over
        # workers, so some runs exercise the remote-watch path.
        for round_no in range(3):
            stream = PushStreamClient("127.0.0.1", port, owner=owner)
            await stream.connect()
            t0 = time.perf_counter()
            status, out = await client.request(
                "POST",
                "/v1/postbox/send",
                {
                    "owner": owner,
                    "payload": _b64(b"wake"),
                    "urgent": True,
                    "now_s": float(round_no + 1),
                },
            )
            assert status == 200
            push = await stream.next_push(timeout_s=5.0)
            elapsed = time.perf_counter() - t0
            assert push["msg_id"] == out["msg_id"]
            # Cluster fallback is 0.5 s; wake delivery is milliseconds.
            assert elapsed < 0.4, f"push took {elapsed:.3f}s — wake lost?"
            assert await stream.confirm(push["msg_id"]) is True
            await stream.close()
        await client.close()

    with _cluster(3) as supervisor:
        asyncio.run(body(supervisor.port))


# ---------------------------------------------------------------------------
# the forwarding window


def test_forward_window_overflow_is_typed():
    """A saturated peer link rejects with ForwardOverloadedError (the
    HTTP layer maps it to 503 forward_overloaded) instead of queueing."""

    async def body() -> None:
        end_a, end_b = socket.socketpair()
        release = asyncio.Event()

        async def slow_handler(frame: dict) -> dict:
            await release.wait()
            return {"ok": True}

        async def echo_handler(frame: dict) -> dict:
            return {}

        link_a = PeerLink(1, end_a, echo_handler, max_in_flight=1)
        link_b = PeerLink(0, end_b, slow_handler)
        await link_a.start()
        await link_b.start()
        try:
            first = asyncio.create_task(link_a.request({"t": "req"}))
            await asyncio.sleep(0.05)  # let the first frame occupy the window
            with pytest.raises(ForwardOverloadedError) as excinfo:
                await link_a.request({"t": "req"})
            assert excinfo.value.status == 503
            assert excinfo.value.code == "forward_overloaded"
            release.set()
            result = await first
            assert result["ok"] is True
        finally:
            await link_a.close()
            await link_b.close()

    asyncio.run(body())


# ---------------------------------------------------------------------------
# graceful drain


def test_cluster_graceful_drain_flushes_streams():
    """stop() mid-traffic: the open push stream gets its pending push
    and a clean ``bye`` line, and every worker exits 0 (asserted by the
    _cluster fixture)."""

    async def body(supervisor: ClusterSupervisor) -> None:
        port = supervisor.port
        await _wait_ready(port)
        owner = "phone-00123"
        client = ServiceClient("127.0.0.1", port)
        await client.request(
            "POST",
            "/v1/postbox/check",
            {"owner": owner, "x": 0.0, "y": 0.0, "now_s": 0.0},
        )
        stream = PushStreamClient("127.0.0.1", port, owner=owner)
        await stream.connect()
        status, out = await client.request(
            "POST",
            "/v1/postbox/send",
            {"owner": owner, "payload": _b64(b"last words"), "urgent": True,
             "now_s": 1.0},
        )
        assert status == 200
        push = await stream.next_push(timeout_s=5.0)
        assert await stream.confirm(push["msg_id"]) is True

        supervisor.stop()
        # The stream must end with a clean bye, not a reset.
        saw_bye = False
        with contextlib.suppress(ConnectionError):
            for _ in range(20):
                event = await asyncio.wait_for(stream._next_event(), timeout=10.0)
                if event.get("type") == "bye":
                    saw_bye = True
                    break
        assert saw_bye
        await stream.close()
        await client.close()

    with _cluster(2) as supervisor:
        asyncio.run(body(supervisor))


@pytest.mark.parametrize("workers", [1, 2], ids=["single", "cluster"])
def test_serve_sigterm_exits_zero_with_open_stream(workers, tmp_path):
    """``repro serve`` under SIGTERM with an open push stream and a
    keep-alive connection: confirmed pushes flush, the NDJSON stream
    ends with ``bye``, the process exits 0."""

    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            str(workers),
        ],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        ready = proc.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", ready)
        assert match, f"no ready line: {ready!r}"
        port = int(match.group(1))

        async def body() -> None:
            await _wait_ready(port)
            owner = "phone-00321"
            client = ServiceClient("127.0.0.1", port)
            await client.request(
                "POST",
                "/v1/postbox/check",
                {"owner": owner, "x": 0.0, "y": 0.0, "now_s": 0.0},
            )
            stream = PushStreamClient("127.0.0.1", port, owner=owner)
            await stream.connect()
            status, _ = await client.request(
                "POST",
                "/v1/postbox/send",
                {"owner": owner, "payload": _b64(b"x"), "urgent": True,
                 "now_s": 1.0},
            )
            assert status == 200
            push = await stream.next_push(timeout_s=5.0)
            assert await stream.confirm(push["msg_id"]) is True

            proc.send_signal(signal.SIGTERM)
            saw_bye = False
            with contextlib.suppress(ConnectionError):
                for _ in range(20):
                    event = await asyncio.wait_for(
                        stream._next_event(), timeout=10.0
                    )
                    if event.get("type") == "bye":
                        saw_bye = True
                        break
            assert saw_bye
            await stream.close()
            await client.close()

        asyncio.run(body())
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
