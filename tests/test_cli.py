"""Tests for the command-line interface (reduced scales)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_fig6_args(self):
        args = build_parser().parse_args(
            ["fig6", "--reach-pairs", "10", "--delivery-pairs", "2", "--cities", "gridport"]
        )
        assert args.reach_pairs == 10
        assert args.cities == ["gridport"]

    def test_seed_everywhere(self):
        args = build_parser().parse_args(["fig5", "--seed", "9"])
        assert args.seed == 9


class TestCommands:
    def test_fig5(self, capsys):
        assert main(["fig5", "--blocks", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "#" in out

    def test_fig6_small(self, capsys):
        code = main(
            ["fig6", "--reach-pairs", "20", "--delivery-pairs", "3",
             "--cities", "gridport"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "gridport" in out

    def test_fig7(self, capsys):
        assert main(["fig7", "--city", "gridport"]) == 0
        out = capsys.readouterr().out
        assert "delivered" in out

    def test_header(self, capsys):
        assert main(["header", "--pairs", "10"]) == 0
        assert "header sizes" in capsys.readouterr().out

    def test_bridging(self, capsys):
        assert main(["bridging", "--cities", "riverton"]) == 0
        out = capsys.readouterr().out
        assert "riverton" in out
        assert "bridging" in out

    def test_baselines(self, capsys):
        assert main(["baselines", "--pairs", "4"]) == 0
        out = capsys.readouterr().out
        assert "citymesh" in out
        assert "flood" in out
