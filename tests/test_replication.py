"""Tests for the multi-seed replication experiment."""

import pytest

from repro.experiments import format_replication, replicate_fig6


class TestReplication:
    def test_empty_seeds_raises(self):
        with pytest.raises(ValueError):
            replicate_fig6("gridport", seeds=())

    def test_single_seed_zero_std(self):
        result = replicate_fig6(
            "gridport", seeds=(0,), reach_pairs=30, delivery_pairs=3
        )
        assert result.seeds == 1
        assert result.reachability_std == 0.0
        assert result.deliverability_std == 0.0

    def test_multi_seed_aggregation(self):
        result = replicate_fig6(
            "gridport", seeds=(0, 1), reach_pairs=30, delivery_pairs=3
        )
        assert result.seeds == 2
        assert 0.9 <= result.reachability_mean <= 1.0
        assert result.reachability_std >= 0.0
        assert 0.0 <= result.deliverability_mean <= 1.0

    def test_fractured_city_replicates_fracture(self):
        """Riverton's fracture is structural, not a seed artifact."""
        result = replicate_fig6(
            "riverton", seeds=(0, 1, 2), reach_pairs=60, delivery_pairs=3
        )
        assert result.reachability_mean < 0.7
        assert result.reachability_std < 0.15

    def test_format(self):
        result = replicate_fig6("gridport", seeds=(0,), reach_pairs=20, delivery_pairs=2)
        out = format_replication([result])
        assert "replication" in out
        assert "gridport" in out
        assert "±" in out
