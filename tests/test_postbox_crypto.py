"""Tests for the from-scratch crypto substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.postbox import (
    KeyPair,
    PublicKey,
    encrypt_key,
    mac_tag,
    mac_verify,
    symmetric_decrypt,
    symmetric_encrypt,
    verify,
)
from repro.postbox.crypto import _is_probable_prime, _random_prime

RNG = random.Random(1234)
KEYS = KeyPair.generate(RNG, bits=512)  # shared across tests: keygen is the slow part


class TestPrimality:
    def test_small_primes(self):
        rng = random.Random(0)
        for p in [2, 3, 5, 7, 11, 97, 7919]:
            assert _is_probable_prime(p, rng)

    def test_small_composites(self):
        rng = random.Random(0)
        for c in [0, 1, 4, 9, 91, 561, 7917]:  # 561 is a Carmichael number
            assert not _is_probable_prime(c, rng)

    def test_random_prime_bit_length(self):
        rng = random.Random(5)
        p = _random_prime(64, rng)
        assert p.bit_length() == 64
        assert _is_probable_prime(p, rng)

    def test_random_prime_too_small(self):
        with pytest.raises(ValueError):
            _random_prime(4, random.Random(0))


class TestKeyGeneration:
    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            KeyPair.generate(random.Random(0), bits=64)

    def test_modulus_size(self):
        assert 500 <= KEYS.public.n.bit_length() <= 512

    def test_deterministic_given_rng(self):
        a = KeyPair.generate(random.Random(9), bits=256)
        b = KeyPair.generate(random.Random(9), bits=256)
        assert a.public == b.public


class TestPublicKeySerialisation:
    def test_roundtrip(self):
        data = KEYS.public.to_bytes()
        assert PublicKey.from_bytes(data) == KEYS.public

    def test_truncated(self):
        data = KEYS.public.to_bytes()
        with pytest.raises(ValueError):
            PublicKey.from_bytes(data[:3])
        with pytest.raises(ValueError):
            PublicKey.from_bytes(data[:-1])

    def test_empty(self):
        with pytest.raises(ValueError):
            PublicKey.from_bytes(b"")


class TestSignatures:
    def test_sign_verify(self):
        sig = KEYS.sign(b"hello world")
        assert verify(KEYS.public, b"hello world", sig)

    def test_wrong_message_fails(self):
        sig = KEYS.sign(b"hello")
        assert not verify(KEYS.public, b"goodbye", sig)

    def test_tampered_signature_fails(self):
        sig = bytearray(KEYS.sign(b"hello"))
        sig[0] ^= 1
        assert not verify(KEYS.public, b"hello", bytes(sig))

    def test_wrong_key_fails(self):
        other = KeyPair.generate(random.Random(77), bits=512)
        sig = KEYS.sign(b"hello")
        assert not verify(other.public, b"hello", sig)

    def test_wrong_length_fails(self):
        sig = KEYS.sign(b"hello")
        assert not verify(KEYS.public, b"hello", sig + b"\x00")


class TestKeyTransport:
    def test_roundtrip(self):
        rng = random.Random(3)
        session = bytes(range(32))
        wrapped = encrypt_key(KEYS.public, session, rng)
        assert KEYS.decrypt_key(wrapped) == session

    def test_wrong_size_session_key(self):
        with pytest.raises(ValueError):
            encrypt_key(KEYS.public, b"short", random.Random(0))

    def test_tampered_wrap_fails(self):
        rng = random.Random(3)
        wrapped = bytearray(encrypt_key(KEYS.public, bytes(32), rng))
        wrapped[-1] ^= 0xFF
        with pytest.raises(ValueError):
            KEYS.decrypt_key(bytes(wrapped))


class TestSymmetric:
    def test_roundtrip(self):
        key, nonce = b"k" * 32, b"n" * 16
        ct = symmetric_encrypt(key, nonce, b"attack at dawn")
        assert ct != b"attack at dawn"
        assert symmetric_decrypt(key, nonce, ct) == b"attack at dawn"

    def test_nonce_matters(self):
        key = b"k" * 32
        a = symmetric_encrypt(key, b"n1" * 8, b"message")
        b = symmetric_encrypt(key, b"n2" * 8, b"message")
        assert a != b

    def test_empty_plaintext(self):
        assert symmetric_encrypt(b"k" * 32, b"n" * 16, b"") == b""

    @given(st.binary(max_size=500))
    @settings(max_examples=30)
    def test_roundtrip_property(self, plaintext):
        key, nonce = b"K" * 32, b"N" * 16
        assert symmetric_decrypt(key, nonce, symmetric_encrypt(key, nonce, plaintext)) == plaintext


class TestMac:
    def test_verify(self):
        tag = mac_tag(b"key", b"data")
        assert mac_verify(b"key", b"data", tag)

    def test_reject_tamper(self):
        tag = mac_tag(b"key", b"data")
        assert not mac_verify(b"key", b"datax", tag)
        assert not mac_verify(b"keyx", b"data", tag)
