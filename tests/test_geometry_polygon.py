"""Unit and property tests for repro.geometry.polygon."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Polygon, Segment

UNIT_SQUARE = Polygon.rectangle(0, 0, 1, 1)


def random_convex_polygon(draw_radius: float, sides: int, cx: float, cy: float) -> Polygon:
    return Polygon.regular(Point(cx, cy), draw_radius, sides)


class TestConstruction:
    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_closing_vertex_dropped(self):
        p = Polygon([Point(0, 0), Point(1, 0), Point(0, 1), Point(0, 0)])
        assert len(p.vertices) == 3

    def test_rectangle_validation(self):
        with pytest.raises(ValueError):
            Polygon.rectangle(0, 0, 0, 1)

    def test_regular_validation(self):
        with pytest.raises(ValueError):
            Polygon.regular(Point(0, 0), 1, 2)
        with pytest.raises(ValueError):
            Polygon.regular(Point(0, 0), -1, 4)

    def test_bbox(self):
        p = Polygon([Point(1, 2), Point(5, 2), Point(3, 9)])
        assert p.bbox == (1, 2, 5, 9)


class TestMeasures:
    def test_square_area(self):
        assert UNIT_SQUARE.area() == 1

    def test_triangle_area(self):
        t = Polygon([Point(0, 0), Point(4, 0), Point(0, 3)])
        assert t.area() == 6

    def test_signed_area_ccw_positive(self):
        assert UNIT_SQUARE.signed_area() > 0

    def test_signed_area_cw_negative(self):
        cw = Polygon(list(reversed(UNIT_SQUARE.vertices)))
        assert cw.signed_area() < 0

    def test_perimeter(self):
        assert UNIT_SQUARE.perimeter() == 4

    def test_centroid_square(self):
        c = UNIT_SQUARE.centroid()
        assert c.x == pytest.approx(0.5)
        assert c.y == pytest.approx(0.5)

    def test_centroid_orientation_invariant(self):
        cw = Polygon(list(reversed(UNIT_SQUARE.vertices)))
        assert cw.centroid().distance_to(UNIT_SQUARE.centroid()) < 1e-9

    def test_regular_polygon_area_formula(self):
        hexagon = Polygon.regular(Point(0, 0), 2.0, 6)
        expected = 0.5 * 6 * 2.0**2 * math.sin(2 * math.pi / 6)
        assert hexagon.area() == pytest.approx(expected)


class TestContains:
    def test_inside(self):
        assert UNIT_SQUARE.contains(Point(0.5, 0.5))

    def test_outside(self):
        assert not UNIT_SQUARE.contains(Point(1.5, 0.5))

    def test_outside_bbox_shortcut(self):
        assert not UNIT_SQUARE.contains(Point(100, 100))

    def test_boundary_counts_as_inside(self):
        assert UNIT_SQUARE.contains(Point(0, 0.5))
        assert UNIT_SQUARE.contains(Point(1, 1))

    def test_concave_polygon(self):
        # L-shape: the notch must be outside.
        l_shape = Polygon(
            [
                Point(0, 0),
                Point(2, 0),
                Point(2, 1),
                Point(1, 1),
                Point(1, 2),
                Point(0, 2),
            ]
        )
        assert l_shape.contains(Point(0.5, 1.5))
        assert l_shape.contains(Point(1.5, 0.5))
        assert not l_shape.contains(Point(1.5, 1.5))


class TestDistances:
    def test_point_inside_distance_zero(self):
        assert UNIT_SQUARE.distance_to_point(Point(0.5, 0.5)) == 0

    def test_point_outside_distance(self):
        assert UNIT_SQUARE.distance_to_point(Point(3, 0.5)) == 2

    def test_polygon_distance_disjoint(self):
        other = Polygon.rectangle(3, 0, 4, 1)
        assert UNIT_SQUARE.distance_to_polygon(other) == 2

    def test_polygon_distance_overlapping_zero(self):
        other = Polygon.rectangle(0.5, 0.5, 2, 2)
        assert UNIT_SQUARE.distance_to_polygon(other) == 0

    def test_polygon_distance_contained_zero(self):
        inner = Polygon.rectangle(0.25, 0.25, 0.75, 0.75)
        assert UNIT_SQUARE.distance_to_polygon(inner) == 0
        assert inner.distance_to_polygon(UNIT_SQUARE) == 0

    def test_polygon_distance_symmetric(self):
        a = Polygon.rectangle(0, 0, 1, 1)
        b = Polygon.regular(Point(5, 5), 1, 6)
        assert a.distance_to_polygon(b) == pytest.approx(b.distance_to_polygon(a))


class TestSegmentIntersection:
    def test_crossing_segment(self):
        seg = Segment(Point(-1, 0.5), Point(2, 0.5))
        assert UNIT_SQUARE.intersects_segment(seg)

    def test_contained_segment(self):
        seg = Segment(Point(0.2, 0.2), Point(0.8, 0.8))
        assert UNIT_SQUARE.intersects_segment(seg)

    def test_disjoint_segment(self):
        seg = Segment(Point(2, 2), Point(3, 3))
        assert not UNIT_SQUARE.intersects_segment(seg)


class TestSamplingAndTransforms:
    def test_random_point_inside(self):
        rng = random.Random(42)
        for _ in range(50):
            p = UNIT_SQUARE.random_point_inside(rng)
            assert UNIT_SQUARE.contains(p)

    def test_translated(self):
        moved = UNIT_SQUARE.translated(10, 20)
        assert moved.centroid().distance_to(Point(10.5, 20.5)) < 1e-9
        assert moved.area() == pytest.approx(1)

    def test_scaled_area(self):
        big = UNIT_SQUARE.scaled(2)
        assert big.area() == pytest.approx(4)
        # Scaling about the centroid keeps the centroid fixed.
        assert big.centroid().distance_to(UNIT_SQUARE.centroid()) < 1e-9


class TestPolygonProperties:
    @given(
        st.integers(min_value=3, max_value=12),
        st.floats(min_value=0.5, max_value=100, allow_nan=False),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=40)
    def test_regular_centroid_is_center(self, sides, radius, cx, cy):
        poly = Polygon.regular(Point(cx, cy), radius, sides)
        assert poly.centroid().distance_to(Point(cx, cy)) < 1e-6 * max(1.0, radius)

    @given(
        st.integers(min_value=3, max_value=10),
        st.floats(min_value=1, max_value=50, allow_nan=False),
    )
    @settings(max_examples=30)
    def test_sampled_points_inside(self, sides, radius):
        poly = Polygon.regular(Point(0, 0), radius, sides)
        rng = random.Random(sides)
        for _ in range(10):
            assert poly.contains(poly.random_point_inside(rng))

    @given(st.floats(min_value=0.1, max_value=10, allow_nan=False))
    @settings(max_examples=30)
    def test_scaling_scales_area_quadratically(self, factor):
        scaled = UNIT_SQUARE.scaled(factor)
        assert scaled.area() == pytest.approx(factor**2, rel=1e-6)
