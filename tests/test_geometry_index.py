"""Unit and property tests for the GridIndex spatial hash."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import GridIndex, Point

coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


def brute_force_radius(items, center, radius):
    return sorted(k for k, p in items if p.distance_to(center) <= radius)


class TestGridIndexBasics:
    def test_cell_size_validation(self):
        with pytest.raises(ValueError):
            GridIndex(0)
        with pytest.raises(ValueError):
            GridIndex(-1)

    def test_insert_and_len(self):
        idx = GridIndex(10)
        idx.insert("a", Point(0, 0))
        idx.insert("b", Point(5, 5))
        assert len(idx) == 2
        assert "a" in idx
        assert "c" not in idx

    def test_position_of(self):
        idx = GridIndex(10)
        idx.insert("a", Point(3, 4))
        assert idx.position_of("a") == Point(3, 4)

    def test_reinsert_moves(self):
        idx = GridIndex(10)
        idx.insert("a", Point(0, 0))
        idx.insert("a", Point(100, 100))
        assert len(idx) == 1
        assert idx.position_of("a") == Point(100, 100)
        assert idx.query_radius(Point(0, 0), 1) == []

    def test_remove(self):
        idx = GridIndex(10)
        idx.insert("a", Point(0, 0))
        idx.remove("a")
        assert len(idx) == 0
        assert idx.query_radius(Point(0, 0), 10) == []

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            GridIndex(10).remove("ghost")

    def test_extend(self):
        idx = GridIndex(10)
        idx.extend([("a", Point(0, 0)), ("b", Point(1, 1))])
        assert len(idx) == 2

    def test_items(self):
        idx = GridIndex(10)
        idx.insert("a", Point(0, 0))
        assert list(idx.items()) == [("a", Point(0, 0))]


class TestRadiusQuery:
    def test_inclusive_boundary(self):
        idx = GridIndex(10)
        idx.insert("edge", Point(10, 0))
        assert idx.query_radius(Point(0, 0), 10) == ["edge"]

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            GridIndex(10).query_radius(Point(0, 0), -1)

    def test_query_crosses_cells(self):
        idx = GridIndex(10)
        idx.insert("a", Point(9, 9))
        idx.insert("b", Point(11, 11))
        found = set(idx.query_radius(Point(10, 10), 3))
        assert found == {"a", "b"}

    def test_negative_coordinates(self):
        idx = GridIndex(10)
        idx.insert("neg", Point(-25, -25))
        assert idx.query_radius(Point(-24, -24), 5) == ["neg"]

    def test_matches_brute_force_random(self):
        rng = random.Random(7)
        idx = GridIndex(25)
        items = []
        for i in range(300):
            p = Point(rng.uniform(-500, 500), rng.uniform(-500, 500))
            idx.insert(i, p)
            items.append((i, p))
        for _ in range(20):
            center = Point(rng.uniform(-500, 500), rng.uniform(-500, 500))
            radius = rng.uniform(0, 200)
            assert sorted(idx.query_radius(center, radius)) == brute_force_radius(
                items, center, radius
            )


class TestRectQuery:
    def test_basic(self):
        idx = GridIndex(10)
        idx.insert("in", Point(5, 5))
        idx.insert("out", Point(50, 50))
        assert idx.query_rect(0, 0, 10, 10) == ["in"]

    def test_inclusive_edges(self):
        idx = GridIndex(10)
        idx.insert("corner", Point(10, 10))
        assert idx.query_rect(0, 0, 10, 10) == ["corner"]


class TestNearest:
    def test_empty_returns_none(self):
        assert GridIndex(10).nearest(Point(0, 0)) is None

    def test_single(self):
        idx = GridIndex(10)
        idx.insert("a", Point(100, 100))
        assert idx.nearest(Point(0, 0)) == "a"

    def test_respects_max_radius(self):
        idx = GridIndex(10)
        idx.insert("far", Point(100, 0))
        assert idx.nearest(Point(0, 0), max_radius=50) is None
        assert idx.nearest(Point(0, 0), max_radius=150) == "far"

    def test_matches_brute_force(self):
        rng = random.Random(13)
        idx = GridIndex(20)
        items = []
        for i in range(200):
            p = Point(rng.uniform(-300, 300), rng.uniform(-300, 300))
            idx.insert(i, p)
            items.append((i, p))
        for _ in range(25):
            center = Point(rng.uniform(-300, 300), rng.uniform(-300, 300))
            expect_key = min(items, key=lambda kp: kp[1].distance_to(center))[0]
            got = idx.nearest(center)
            got_d = idx.position_of(got).distance_to(center)
            best_d = min(p.distance_to(center) for _, p in items)
            assert got_d == pytest.approx(best_d)


class TestGridIndexProperties:
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=50),
        st.tuples(coord, coord),
        st.floats(min_value=0, max_value=1e3, allow_nan=False),
        st.floats(min_value=0.5, max_value=200, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_radius_query_matches_brute_force(self, pts, center_xy, radius, cell):
        idx = GridIndex(cell)
        items = []
        for i, (x, y) in enumerate(pts):
            p = Point(x, y)
            idx.insert(i, p)
            items.append((i, p))
        center = Point(*center_xy)
        assert sorted(idx.query_radius(center, radius)) == brute_force_radius(
            items, center, radius
        )
