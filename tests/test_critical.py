"""Tests for articulation/bridge analysis and the attack comparison."""

import random

import pytest

from repro.city import make_city
from repro.experiments import (
    build_world,
    format_attacks,
    run_attack_comparison,
)
from repro.geometry import Point
from repro.mesh import (
    APGraph,
    AccessPoint,
    articulation_points,
    bridge_links,
    criticality_report,
    place_aps,
)


def chain(n=5, spacing=40.0):
    return APGraph(
        [AccessPoint(i, Point(i * spacing, 0.0), i + 1) for i in range(n)],
        transmission_range=50,
    )


def cycle(n=6, radius=60.0):
    import math

    aps = []
    for i in range(n):
        angle = 2 * math.pi * i / n
        aps.append(
            AccessPoint(i, Point(radius * math.cos(angle), radius * math.sin(angle)), i + 1)
        )
    return APGraph(aps, transmission_range=radius * 2 * math.sin(math.pi / n) + 1)


class TestArticulation:
    def test_chain_interior_nodes(self):
        g = chain(5)
        assert articulation_points(g) == {1, 2, 3}

    def test_cycle_has_none(self):
        g = cycle(6)
        # Every node has exactly its two ring neighbours.
        assert all(g.degree(i) == 2 for i in range(6))
        assert articulation_points(g) == set()

    def test_single_node(self):
        g = APGraph([AccessPoint(0, Point(0, 0), 1)])
        assert articulation_points(g) == set()

    def test_two_components(self):
        aps = [
            AccessPoint(0, Point(0, 0), 1),
            AccessPoint(1, Point(40, 0), 2),
            AccessPoint(2, Point(80, 0), 3),
            AccessPoint(3, Point(500, 0), 4),
            AccessPoint(4, Point(540, 0), 5),
        ]
        g = APGraph(aps, transmission_range=50)
        assert articulation_points(g) == {1}

    def test_star_center(self):
        aps = [AccessPoint(0, Point(0, 0), 1)]
        for i, (dx, dy) in enumerate([(45, 0), (-45, 0), (0, 45), (0, -45)], start=1):
            aps.append(AccessPoint(i, Point(dx, dy), i + 1))
        g = APGraph(aps, transmission_range=50)
        assert articulation_points(g) == {0}

    def test_matches_removal_semantics(self):
        """Brute-force check: removing an articulation point increases
        the component count; removing a non-articulation point does not."""
        city = make_city("suburbia", seed=2)
        g = APGraph(place_aps(city, rng=random.Random(2))[:200], transmission_range=50)
        points = articulation_points(g)
        base_components = len(g.components())

        def components_without(skip):
            seen = set()
            count = 0
            for ap in g.aps:
                if ap.id == skip or ap.id in seen:
                    continue
                count += 1
                stack = [ap.id]
                seen.add(ap.id)
                while stack:
                    u = stack.pop()
                    for v in g.neighbors(u):
                        if v != skip and v not in seen:
                            seen.add(v)
                            stack.append(v)
            return count

        sample = list(points)[:5] + [
            i for i in range(len(g.aps)) if i not in points
        ][:5]
        for ap_id in sample:
            grew = components_without(ap_id) > base_components
            assert grew == (ap_id in points), ap_id


class TestBridges:
    def test_chain_all_edges(self):
        g = chain(4)
        assert bridge_links(g) == {(0, 1), (1, 2), (2, 3)}

    def test_cycle_none(self):
        assert bridge_links(cycle(6)) == set()

    def test_report_keys(self):
        report = criticality_report(chain(4))
        assert report["articulation_count"] == 2
        assert report["bridge_count"] == 3
        assert report["largest_component_fraction"] == 1.0

    def test_dense_downtown_is_robust(self):
        """The paper's dense-downtown case has (almost) no cut APs."""
        city = make_city("gridport", seed=1)
        g = APGraph(place_aps(city, rng=random.Random(1)))
        report = criticality_report(g)
        assert report["articulation_fraction"] < 0.02


class TestAttackComparison:
    @pytest.fixture(scope="class")
    def outcomes(self):
        world = build_world("suburbia", seed=0)
        return run_attack_comparison(world=world, budget=20, pairs=20, seed=0)

    def test_three_strategies(self, outcomes):
        assert {o.strategy for o in outcomes} == {"random", "targeted", "articulation"}
        assert all(o.budget == 20 for o in outcomes)

    def test_rates_valid(self, outcomes):
        for o in outcomes:
            assert 0.0 <= o.rate <= 1.0
            assert o.attempted > 5

    def test_format(self, outcomes):
        out = format_attacks(outcomes)
        assert "strategy" in out
        assert "targeted" in out
