"""Tests for the inter-region DFN federation."""

import random

import pytest

from repro.city import make_city
from repro.federation import (
    Federation,
    InterRegionLink,
    make_region,
    send_interregion,
)
from repro.mesh import APGraph, place_aps


def build_region(name: str, city_name: str, seed: int):
    city = make_city(city_name, seed=seed)
    aps = place_aps(city, rng=random.Random(seed))
    graph = APGraph(aps)
    # Gateways: the first and last AP-bearing buildings.
    gateways = [b.id for b in city.buildings if graph.aps_in_building(b.id)]
    return make_region(name, city, graph, [gateways[0], gateways[-1]])


@pytest.fixture(scope="module")
def federation():
    fed = Federation()
    north = build_region("north", "gridport", seed=1)
    south = build_region("south", "parkside", seed=2)
    west = build_region("west", "oldtown", seed=3)
    for region in (north, south, west):
        fed.add_region(region)
    fed.add_link(
        InterRegionLink(
            "north", north.gateway_buildings[0],
            "south", south.gateway_buildings[0],
            latency_s=0.6,
        )
    )
    fed.add_link(
        InterRegionLink(
            "south", south.gateway_buildings[1],
            "west", west.gateway_buildings[0],
            latency_s=0.6,
        )
    )
    return fed


class TestModel:
    def test_duplicate_region_rejected(self, federation):
        with pytest.raises(ValueError):
            federation.add_region(build_region("north", "gridport", seed=1))

    def test_link_requires_registered_gateway(self, federation):
        north = federation.regions["north"]
        with pytest.raises(ValueError):
            federation.add_link(
                InterRegionLink("north", 99999, "south",
                                federation.regions["south"].gateway_buildings[0])
            )

    def test_link_validation(self):
        with pytest.raises(ValueError):
            InterRegionLink("a", 1, "a", 2)
        with pytest.raises(ValueError):
            InterRegionLink("a", 1, "b", 2, latency_s=-1)

    def test_gateway_validation(self):
        with pytest.raises(ValueError):
            build = build_region("x", "gridport", seed=1)
            build.gateway_buildings.append(424242)
            from repro.federation import Region

            Region(
                name="bad",
                city=build.city,
                graph=build.graph,
                router=build.router,
                gateway_buildings=[424242],
            )

    def test_region_path_direct(self, federation):
        path = federation.region_path("north", "south")
        assert path is not None and len(path) == 1

    def test_region_path_two_hops(self, federation):
        path = federation.region_path("north", "west")
        assert path is not None and len(path) == 2

    def test_region_path_same_region(self, federation):
        assert federation.region_path("north", "north") == []

    def test_region_path_unknown(self, federation):
        with pytest.raises(KeyError):
            federation.region_path("north", "atlantis")

    def test_region_path_disconnected(self):
        fed = Federation()
        fed.add_region(build_region("a", "gridport", seed=1))
        fed.add_region(build_region("b", "oldtown", seed=2))
        assert fed.region_path("a", "b") is None


class TestTransit:
    def test_intra_region_delivery(self, federation):
        north = federation.regions["north"]
        buildings = [b.id for b in north.city.buildings if north.graph.aps_in_building(b.id)]
        report = send_interregion(
            federation, "north", buildings[5], "north", buildings[-5], random.Random(0)
        )
        assert report.delivered
        assert all(leg.kind == "mesh" for leg in report.legs)

    def test_cross_region_delivery(self, federation):
        north = federation.regions["north"]
        south = federation.regions["south"]
        src = [b.id for b in north.city.buildings if north.graph.aps_in_building(b.id)][10]
        dst = [b.id for b in south.city.buildings if south.graph.aps_in_building(b.id)][-10]
        report = send_interregion(federation, "north", src, "south", dst, random.Random(1))
        assert report.delivered
        kinds = [leg.kind for leg in report.legs]
        assert kinds.count("long-haul") == 1
        assert kinds[0] == "mesh" and kinds[-1] == "mesh"
        # Satellite latency dominates the total.
        assert report.total_latency_s >= 0.6
        assert report.mesh_transmissions > 0

    def test_two_hop_delivery(self, federation):
        north = federation.regions["north"]
        west = federation.regions["west"]
        src = [b.id for b in north.city.buildings if north.graph.aps_in_building(b.id)][3]
        dst = [b.id for b in west.city.buildings if west.graph.aps_in_building(b.id)][-3]
        report = send_interregion(federation, "north", src, "west", dst, random.Random(2))
        assert report.delivered
        assert sum(1 for leg in report.legs if leg.kind == "long-haul") == 2
        assert report.total_latency_s >= 1.2

    def test_disconnected_regions_fail_cleanly(self):
        fed = Federation()
        fed.add_region(build_region("a", "gridport", seed=1))
        fed.add_region(build_region("b", "oldtown", seed=2))
        a = fed.regions["a"]
        b = fed.regions["b"]
        src = a.gateway_buildings[0]
        dst = b.gateway_buildings[0]
        report = send_interregion(fed, "a", src, "b", dst, random.Random(0))
        assert not report.delivered
        assert report.legs == []
