"""The columnar conduit-overlap kernel must agree with the scalar
predicate bit for bit — verdict by verdict — on every polygon."""

import math
import random

import numpy as np
import pytest

from repro.geometry import (
    ConduitPath,
    ConduitRect,
    Point,
    Polygon,
    PolygonColumns,
    path_overlap_mask,
    rect_overlap_mask,
)


def random_polygon(rng: random.Random) -> Polygon:
    """Random convex-ish footprint: a jittered rectangle or a regular
    polygon, placed anywhere in a 400 m square."""
    cx = rng.uniform(-50, 350)
    cy = rng.uniform(-50, 350)
    if rng.random() < 0.6:
        w = rng.uniform(4, 40)
        h = rng.uniform(4, 40)
        return Polygon.rectangle(cx, cy, cx + w, cy + h)
    return Polygon.regular(
        Point(cx, cy),
        radius=rng.uniform(3, 25),
        sides=rng.randint(3, 8),
        rotation=rng.uniform(0, math.pi),
    )


def random_rect(rng: random.Random) -> ConduitRect:
    a = Point(rng.uniform(0, 300), rng.uniform(0, 300))
    b = Point(rng.uniform(0, 300), rng.uniform(0, 300))
    if a == b:
        b = Point(a.x + 50.0, a.y)
    return ConduitRect(a, b, width=rng.uniform(5, 80))


def assert_mask_matches(polygons, path):
    cols = PolygonColumns([p for p in polygons])
    mask = path_overlap_mask(cols, path, polygons=polygons)
    expected = [path.intersects_polygon(p) for p in polygons]
    assert mask.tolist() == expected


class TestRandomized:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_rects_match_scalar(self, seed):
        rng = random.Random(seed)
        polygons = [random_polygon(rng) for _ in range(120)]
        cols = PolygonColumns(polygons)
        for _ in range(6):
            rect = random_rect(rng)
            mask = rect_overlap_mask(cols, rect)
            expected = [rect.intersects_polygon(p) for p in polygons]
            assert mask.tolist() == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_random_paths_match_scalar(self, seed):
        rng = random.Random(100 + seed)
        polygons = [random_polygon(rng) for _ in range(100)]
        waypoints = [
            Point(rng.uniform(0, 300), rng.uniform(0, 300))
            for _ in range(rng.randint(2, 5))
        ]
        path = ConduitPath.from_waypoints(waypoints, width=rng.uniform(10, 60))
        assert_mask_matches(polygons, path)


class TestAdversarial:
    """Touching, collinear, shared-vertex, and containment edge cases —
    exactly where epsilon slop in the scalar clauses lives."""

    def test_polygon_touching_rect_corner(self):
        rect = ConduitRect(Point(0, 0), Point(100, 0), width=20)
        # Rect corners at (0, ±10) and (100, ±10).
        touching = Polygon.rectangle(100, 10, 120, 30)  # shares corner (100,10)
        separate = Polygon.rectangle(100.001, 10.001, 120, 30)
        inside = Polygon.rectangle(40, -5, 60, 5)
        containing = Polygon.rectangle(-50, -50, 150, 50)  # rect fully inside
        polys = [touching, separate, inside, containing]
        cols = PolygonColumns(polys)
        mask = rect_overlap_mask(cols, rect)
        assert mask.tolist() == [rect.intersects_polygon(p) for p in polys]
        assert mask.tolist() == [True, False, True, True]

    def test_collinear_edge_overlap(self):
        rect = ConduitRect(Point(0, 0), Point(100, 0), width=20)
        # Polygon edge collinear with the rect's top edge y=10.
        sharing_edge = Polygon.rectangle(20, 10, 60, 40)
        just_above = Polygon.rectangle(20, 10 + 5e-13, 60, 40)  # inside 1e-12 slop
        clearly_above = Polygon.rectangle(20, 10.1, 60, 40)
        polys = [sharing_edge, just_above, clearly_above]
        cols = PolygonColumns(polys)
        mask = rect_overlap_mask(cols, rect)
        assert mask.tolist() == [rect.intersects_polygon(p) for p in polys]

    def test_vertex_exactly_on_rect_boundary(self):
        rect = ConduitRect(Point(0, 0), Point(100, 0), width=20)
        polys = [
            Polygon((Point(50, 10), Point(70, 30), Point(30, 30))),  # apex on edge
            Polygon((Point(50, 10.0000001), Point(70, 30), Point(30, 30))),
            Polygon((Point(0, 10), Point(20, 30), Point(-20, 30))),  # apex on corner
        ]
        cols = PolygonColumns(polys)
        mask = rect_overlap_mask(cols, rect)
        assert mask.tolist() == [rect.intersects_polygon(p) for p in polys]

    def test_degenerate_disc_conduit(self):
        path = ConduitPath.from_waypoints([Point(50, 50)], width=30)
        polys = [
            Polygon.rectangle(40, 40, 60, 60),  # around the disc centre
            Polygon.rectangle(63, 50, 80, 60),  # near the rim
            Polygon.rectangle(80, 80, 90, 90),  # far away
            Polygon.rectangle(64.9, 49, 80, 51),  # just inside r=15 laterally
        ]
        cols = PolygonColumns(polys)
        mask = path_overlap_mask(cols, path, polygons=polys)
        assert mask.tolist() == [path.intersects_polygon(p) for p in polys]

    def test_degenerate_rect_direct_call_raises(self):
        cols = PolygonColumns([Polygon.rectangle(0, 0, 1, 1)])
        with pytest.raises(ValueError):
            rect_overlap_mask(cols, ConduitRect(Point(5, 5), Point(5, 5), 10))

    def test_skip_mask_only_skips(self):
        rng = random.Random(7)
        polys = [random_polygon(rng) for _ in range(50)]
        rect = random_rect(rng)
        cols = PolygonColumns(polys)
        full = rect_overlap_mask(cols, rect)
        skip = np.zeros(len(polys), dtype=bool)
        skip[::3] = True
        partial = rect_overlap_mask(cols, rect, skip=skip)
        assert not partial[skip].any()
        assert (partial[~skip] == full[~skip]).all()

    def test_empty_columns(self):
        cols = PolygonColumns([])
        rect = ConduitRect(Point(0, 0), Point(10, 0), width=5)
        assert rect_overlap_mask(cols, rect).shape == (0,)


class TestAgainstRealCity:
    def test_gridport_conduits_match(self):
        from repro.city import make_city
        from repro.core import BuildingRouter

        city = make_city("gridport", seed=0)
        router = BuildingRouter(city)
        polys = [b.polygon for b in city.buildings]
        cols = PolygonColumns(polys)
        pairs = [
            (city.buildings[0].id, city.buildings[-1].id),
            (city.buildings[3].id, city.buildings[len(city.buildings) // 2].id),
        ]
        for src, dst in pairs:
            plan = router.plan(src, dst)
            mask = path_overlap_mask(cols, plan.conduits, polygons=polys)
            expected = [
                plan.conduits.intersects_polygon(p) for p in polys
            ]
            assert mask.tolist() == expected
            assert mask.any()  # the route region is non-trivial
